"""Process-local metrics: lock-striped counters, gauges, fixed-bucket histograms.

The serving hot path runs at ~8 us per cached ask, so the primitives here
are built backwards from a per-record budget of a few hundred nanoseconds:

* Every instrument owns its *own* lock, and the registry's get-or-create
  path stripes creation locks by key hash — recording never contends on a
  registry-wide mutex, and two threads recording into different
  instruments never touch the same lock at all.
* :class:`Histogram` keeps its bucket counts in a C-contiguous int64
  buffer (``array('q')``) and exposes them as a **zero-copy numpy view**
  (:attr:`Histogram.counts` is ``np.frombuffer`` over the same memory).
  A record is one :func:`bisect.bisect_left` over a fixed bound tuple and
  three in-place scalar updates under the instrument lock — O(1), no
  allocation.  Snapshot-side consumers (export, diff, bucket merges) get
  real numpy arrays without the hot path ever paying numpy scalar-boxing
  cost.
* Callback instruments (:meth:`MetricsRegistry.counter_fn` /
  :meth:`MetricsRegistry.gauge_fn`) invert the cost model entirely: the
  instrumented component keeps updating the plain attribute it already
  maintains (cache hit counts, queue depth, epsilon spent) and the
  registry reads it at *snapshot* time — zero hot-path cost.

Instruments are keyed by ``(name, sorted label items)``; the conventional
label set across the serve stack is ``(shard, stage, mechanism,
analyst_digest_prefix)``.  Label values are stringified once at
get-or-create, never per record.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left
from typing import Callable, Iterable

import numpy as np

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram bounds for latency-in-seconds metrics: 1 us to 10 s,
#: roughly logarithmic, chosen so the ~8 us cached-ask fast path and the
#: ~1 s LP audit passes both land mid-range rather than in an edge bucket.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelItems = tuple[tuple[str, str], ...]


def canonical_labels(labels: dict[str, object]) -> LabelItems:
    """Sorted, stringified label items — the canonical instrument key."""
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing count; own lock, float-valued."""

    __slots__ = ("name", "labels", "_lock", "_value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative; counters never decrease)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "labels", "_lock", "_value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution; O(1) record, zero-allocation hot path.

    ``bounds`` are the inclusive upper bucket edges; one overflow bucket
    catches everything above the last bound.  Counts live in an
    ``array('q')`` buffer — :attr:`counts` is a zero-copy numpy int64
    view over the same memory, so exporters operate on numpy arrays while
    :meth:`observe` pays list-like scalar increment cost, not numpy
    scalar boxing.
    """

    __slots__ = (
        "name",
        "labels",
        "bounds",
        "_cells",
        "_sum",
        "_count",
        "_lock",
        "_acquire",
        "_release",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        bounds: Iterable[float] | None = None,
    ):
        self.name = name
        self.labels = labels
        resolved = tuple(
            float(b) for b in (DEFAULT_LATENCY_BUCKETS if bounds is None else bounds)
        )
        if not resolved:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(resolved) != sorted(resolved):
            raise ValueError(f"bucket bounds must be sorted, got {resolved}")
        self.bounds = resolved
        self._cells = array("q", bytes(8 * (len(resolved) + 1)))
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()
        # Pre-bound lock methods: ``observe`` sits inside the serve fast
        # path's microsecond budget, and the ``with`` statement's context-
        # manager protocol costs ~25% of the whole record on top of a bare
        # acquire/release pair.
        self._acquire = self._lock.acquire
        self._release = self._lock.release

    def observe(self, value: float) -> None:
        """Record one sample."""
        index = bisect_left(self.bounds, value)
        self._acquire()
        self._cells[index] += 1
        self._sum += value
        self._count += 1
        self._release()

    @property
    def counts(self) -> np.ndarray:
        """Per-bucket counts as a zero-copy numpy int64 view (live)."""
        return np.frombuffer(self._cells, dtype=np.int64)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def read(self) -> tuple[tuple[int, ...], float, int]:
        """A consistent ``(counts, sum, count)`` triple under the lock."""
        with self._lock:
            return tuple(self._cells), self._sum, self._count


class CallbackCounter:
    """A counter whose value is *read* from a callable at snapshot time.

    The instrumented component keeps maintaining whatever plain attribute
    it already has (a cache's ``hits`` int, a pool's error list length);
    the callback samples it when a snapshot is taken — the hot path pays
    nothing.  The callable must be monotone for the counter semantics to
    hold; a failing callback repeats the last good sample rather than
    poisoning the snapshot.
    """

    __slots__ = ("name", "labels", "fn", "_last")

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems, fn: Callable[[], float]):
        self.name = name
        self.labels = labels
        self.fn = fn
        self._last = 0.0

    @property
    def value(self) -> float:
        try:
            self._last = float(self.fn())
        except Exception:
            pass
        return self._last


class CallbackGauge:
    """A gauge sampled from a callable at snapshot time (see above)."""

    __slots__ = ("name", "labels", "fn", "_last")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems, fn: Callable[[], float]):
        self.name = name
        self.labels = labels
        self.fn = fn
        self._last = 0.0

    @property
    def value(self) -> float:
        try:
            self._last = float(self.fn())
        except Exception:
            pass
        return self._last


class MetricsRegistry:
    """All instruments of one process (or one test), keyed by name+labels.

    Get-or-create is lock-striped: the first lookup of a key takes only
    the stripe lock its hash selects, and every subsequent lookup is a
    lock-free dict read (instruments are never removed, the same
    invariant the analyst registry relies on).  Hot paths should still
    resolve their instruments once and hold the reference — the registry
    read is cheap, not free.
    """

    def __init__(self, stripes: int = 16):
        if stripes < 1:
            raise ValueError(f"stripes must be positive, got {stripes}")
        self._creation_locks = tuple(threading.Lock() for _ in range(stripes))
        self._instruments: dict[tuple[str, LabelItems], object] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get_or_create(self, name: str, labels: LabelItems, factory, kind: str):
        key = (name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            lock = self._creation_locks[hash(key) % len(self._creation_locks)]
            with lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = factory()
                    self._instruments[key] = instrument
        if instrument.kind != kind:
            raise TypeError(
                f"metric {name!r}{dict(labels)} is a {instrument.kind}, "
                f"requested as a {kind}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        """Get or create the named counter."""
        items = canonical_labels(labels)
        return self._get_or_create(
            name, items, lambda: Counter(name, items), "counter"
        )

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create the named gauge."""
        items = canonical_labels(labels)
        return self._get_or_create(name, items, lambda: Gauge(name, items), "gauge")

    def histogram(
        self, name: str, bounds: Iterable[float] | None = None, **labels
    ) -> Histogram:
        """Get or create the named histogram (``bounds`` fixed at creation)."""
        items = canonical_labels(labels)
        return self._get_or_create(
            name, items, lambda: Histogram(name, items, bounds), "histogram"
        )

    def counter_fn(self, name: str, fn: Callable[[], float], **labels) -> None:
        """Register a snapshot-time counter read from ``fn`` (monotone).

        Re-registering the same key rebinds the callback — a re-created
        component (a fresh cache behind the same shard label) simply
        takes the slot over.
        """
        items = canonical_labels(labels)
        instrument = self._get_or_create(
            name, items, lambda: CallbackCounter(name, items, fn), "counter"
        )
        if isinstance(instrument, CallbackCounter):
            instrument.fn = fn
        else:
            raise TypeError(
                f"metric {name!r}{dict(items)} is a stored counter, "
                "cannot rebind it to a callback"
            )

    def gauge_fn(self, name: str, fn: Callable[[], float], **labels) -> None:
        """Register a snapshot-time gauge read from ``fn``."""
        items = canonical_labels(labels)
        instrument = self._get_or_create(
            name, items, lambda: CallbackGauge(name, items, fn), "gauge"
        )
        if isinstance(instrument, CallbackGauge):
            instrument.fn = fn
        else:
            raise TypeError(
                f"metric {name!r}{dict(items)} is a stored gauge, "
                "cannot rebind it to a callback"
            )

    def instruments(self) -> list:
        """A point-in-time list of every registered instrument."""
        return list(self._instruments.values())

    def snapshot(self):
        """A frozen :class:`~repro.telemetry.export.MetricsSnapshot`."""
        from repro.telemetry.export import snapshot

        return snapshot(self)

    def __repr__(self) -> str:
        return f"MetricsRegistry(instruments={len(self._instruments)})"
