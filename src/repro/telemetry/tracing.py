"""Lightweight span trees: where a request's time actually went.

Metrics aggregate; traces explain.  A :class:`SpanRecorder` hands out
context-managed spans that nest per thread (child spans inherit their
parent's ``trace_id``), stamps them with durations from an injectable
monotonic clock, and keeps the most recent completed spans in a fixed
ring buffer.

Two disciplines matter more here than features:

* **No RNG, ever.**  Trace and span ids come from a process-local
  monotone counter, and the sampling knob is deterministic (every
  ``sample_every``-th root trace is kept).  Served answers are a pure
  function of (construction path, RNG stream position); a tracer that
  consumed randomness — or perturbed iteration order — would break the
  repo-wide bit-identity contract.  This one touches neither.
* **Explicit clock injection.**  Tests drive a fake clock and assert
  exact durations; production uses ``time.monotonic``.  Durations never
  come from wall-clock time.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = ["Span", "SpanRecorder"]


@dataclass(frozen=True)
class Span:
    """One completed span: identity, tree position, and duration."""

    trace_id: int
    span_id: int
    parent_id: int | None
    name: str
    start: float
    duration: float
    annotations: tuple[tuple[str, str], ...] = ()

    @property
    def root(self) -> bool:
        return self.parent_id is None


@dataclass
class _ActiveSpan:
    """A span still open; becomes a frozen :class:`Span` on exit."""

    trace_id: int
    span_id: int
    parent_id: int | None
    name: str
    start: float
    annotations: list[tuple[str, str]] = field(default_factory=list)

    def annotate(self, key: str, value: object) -> None:
        """Attach a key/value note (stringified) to this span."""
        self.annotations.append((key, str(value)))


class _Unsampled:
    """Sentinel marking the current thread inside a dropped trace."""

    __slots__ = ()


_UNSAMPLED = _Unsampled()


class SpanRecorder:
    """Ring buffer of completed spans with deterministic sampling.

    Args:
        capacity: how many completed spans the ring retains (oldest are
            overwritten).
        sample_every: keep every k-th *root* trace (1 = keep all).  A
            dropped root drops its whole subtree at near-zero cost: the
            thread is marked unsampled and child spans return ``None``
            without touching the clock or the ring.
        clock: the monotonic time source durations are measured on.
    """

    def __init__(
        self,
        capacity: int = 2048,
        sample_every: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        self.capacity = int(capacity)
        self.sample_every = int(sample_every)
        self._clock = clock
        self._ring: list[Span | None] = [None] * self.capacity
        self._total = 0
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._roots = itertools.count()
        self._local = threading.local()

    @property
    def total_recorded(self) -> int:
        """Completed spans ever recorded (including ones overwritten)."""
        with self._lock:
            return self._total

    @contextmanager
    def span(self, name: str, **annotations) -> Iterator[_ActiveSpan | None]:
        """Open a span; yields the active span (or ``None`` if unsampled)."""
        parent = getattr(self._local, "current", None)
        if parent is None:
            if next(self._roots) % self.sample_every != 0:
                self._local.current = _UNSAMPLED
                try:
                    yield None
                finally:
                    self._local.current = None
                return
            identity = next(self._ids)
            active = _ActiveSpan(identity, identity, None, name, self._clock())
        elif parent is _UNSAMPLED:
            yield None
            return
        else:
            active = _ActiveSpan(
                parent.trace_id,
                next(self._ids),
                parent.span_id,
                name,
                self._clock(),
            )
        for key, value in annotations.items():
            active.annotate(key, value)
        self._local.current = active
        try:
            yield active
        finally:
            end = self._clock()
            self._local.current = parent
            self._record(
                Span(
                    trace_id=active.trace_id,
                    span_id=active.span_id,
                    parent_id=active.parent_id,
                    name=active.name,
                    start=active.start,
                    duration=end - active.start,
                    annotations=tuple(active.annotations),
                )
            )

    def _record(self, span: Span) -> None:
        with self._lock:
            self._ring[self._total % self.capacity] = span
            self._total += 1

    def spans(self) -> tuple[Span, ...]:
        """Retained completed spans, oldest first."""
        with self._lock:
            if self._total <= self.capacity:
                return tuple(s for s in self._ring[: self._total])
            head = self._total % self.capacity
            return tuple(self._ring[head:] + self._ring[:head])

    def traces(self) -> tuple[int, ...]:
        """Distinct trace ids among retained spans, in completion order."""
        seen: dict[int, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return tuple(seen)

    def trace(self, trace_id: int) -> tuple[Span, ...]:
        """Retained spans of one trace, oldest first."""
        return tuple(s for s in self.spans() if s.trace_id == trace_id)

    def render(self, trace_id: int) -> str:
        """An indented text tree of one trace (children under parents).

        Spans whose parents were overwritten by the ring render at the
        top level — the tree degrades, it never raises.
        """
        spans = self.trace(trace_id)
        by_parent: dict[int | None, list[Span]] = {}
        present = {span.span_id for span in spans}
        for span in spans:
            parent = span.parent_id if span.parent_id in present else None
            by_parent.setdefault(parent, []).append(span)
        lines: list[str] = []

        def walk(parent: int | None, depth: int) -> None:
            for span in sorted(by_parent.get(parent, []), key=lambda s: s.start):
                note = "".join(
                    f" {key}={value}" for key, value in span.annotations
                )
                lines.append(
                    f"{'  ' * depth}{span.name}  {span.duration * 1e3:.3f} ms{note}"
                )
                walk(span.span_id, depth + 1)

        walk(None, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SpanRecorder(capacity={self.capacity}, "
            f"sample_every={self.sample_every}, recorded={self.total_recorded})"
        )
