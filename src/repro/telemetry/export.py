"""Snapshots and renderers: frozen metric points, Prometheus text, JSON, diff.

A :func:`snapshot` is the *only* way telemetry leaves the process: it
walks the registry once, reads every instrument under its own lock (and
samples callback instruments), and freezes the result into hashable
dataclasses.  Everything downstream — the Prometheus text exposition the
CI smoke scrapes, the JSON dump, the :func:`diff` the benchmarks use to
isolate one measurement window — operates on snapshots, never on live
instruments, so exporters can be as slow as they like without touching
the serving hot path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CounterPoint",
    "GaugePoint",
    "HistogramPoint",
    "MetricsSnapshot",
    "diff",
    "snapshot",
    "to_json",
    "to_prometheus",
]

LabelItems = tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class CounterPoint:
    name: str
    labels: LabelItems
    value: float


@dataclass(frozen=True)
class GaugePoint:
    name: str
    labels: LabelItems
    value: float


@dataclass(frozen=True)
class HistogramPoint:
    name: str
    labels: LabelItems
    bounds: tuple[float, ...]
    counts: tuple[int, ...]  # len(bounds) + 1: per-bucket, then overflow
    sum: float
    count: int


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen point-in-time view of one registry."""

    counters: tuple[CounterPoint, ...]
    gauges: tuple[GaugePoint, ...]
    histograms: tuple[HistogramPoint, ...]

    def counter_value(self, name: str, **labels) -> float | None:
        """The named counter's value, or ``None`` if absent."""
        key = _canonical(labels)
        for point in self.counters:
            if point.name == name and point.labels == key:
                return point.value
        return None

    def gauge_value(self, name: str, **labels) -> float | None:
        key = _canonical(labels)
        for point in self.gauges:
            if point.name == name and point.labels == key:
                return point.value
        return None

    def histogram_point(self, name: str, **labels) -> HistogramPoint | None:
        key = _canonical(labels)
        for point in self.histograms:
            if point.name == name and point.labels == key:
                return point
        return None

    def families(self) -> tuple[str, ...]:
        """Distinct metric names present, sorted."""
        names = {p.name for p in self.counters}
        names.update(p.name for p in self.gauges)
        names.update(p.name for p in self.histograms)
        return tuple(sorted(names))


def _canonical(labels: dict[str, object]) -> LabelItems:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def snapshot(source) -> MetricsSnapshot:
    """Freeze ``source`` — a registry, or anything carrying ``.registry``.

    Accepts a :class:`~repro.telemetry.metrics.MetricsRegistry` or a
    :class:`~repro.telemetry.Telemetry` facade.  Callback instruments are
    sampled here (this is their one read point); stored instruments are
    read under their own locks.  Points come back sorted by
    ``(name, labels)`` so snapshots of equal state compare equal.
    """
    registry = getattr(source, "registry", source)
    if registry is None or not hasattr(registry, "instruments"):
        raise TypeError(
            f"snapshot() needs a MetricsRegistry or a Telemetry, got {source!r}"
        )
    counters: list[CounterPoint] = []
    gauges: list[GaugePoint] = []
    histograms: list[HistogramPoint] = []
    for instrument in registry.instruments():
        kind = instrument.kind
        if kind == "counter":
            counters.append(
                CounterPoint(instrument.name, instrument.labels, instrument.value)
            )
        elif kind == "gauge":
            gauges.append(
                GaugePoint(instrument.name, instrument.labels, instrument.value)
            )
        else:
            counts, total, count = instrument.read()
            histograms.append(
                HistogramPoint(
                    instrument.name,
                    instrument.labels,
                    instrument.bounds,
                    counts,
                    total,
                    count,
                )
            )
    key = lambda point: (point.name, point.labels)  # noqa: E731
    return MetricsSnapshot(
        counters=tuple(sorted(counters, key=key)),
        gauges=tuple(sorted(gauges, key=key)),
        histograms=tuple(sorted(histograms, key=key)),
    )


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------


def _format_labels(labels: LabelItems, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = labels + extra
    if not items:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"' for key, value in items)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return _format_value(bound) if bound != int(bound) else str(int(bound))


def to_prometheus(snap: MetricsSnapshot) -> str:
    """The Prometheus text exposition format (v0.0.4) of one snapshot.

    Histograms render cumulatively with the ``+Inf`` bucket plus
    ``_sum``/``_count`` series, counters and gauges as single samples;
    families are announced once with a ``# TYPE`` line.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def announce(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for point in snap.counters:
        announce(point.name, "counter")
        lines.append(
            f"{point.name}{_format_labels(point.labels)} "
            f"{_format_value(point.value)}"
        )
    for point in snap.gauges:
        announce(point.name, "gauge")
        lines.append(
            f"{point.name}{_format_labels(point.labels)} "
            f"{_format_value(point.value)}"
        )
    for point in snap.histograms:
        announce(point.name, "histogram")
        cumulative = 0
        for bound, count in zip(point.bounds, point.counts):
            cumulative += count
            lines.append(
                f"{point.name}_bucket"
                f"{_format_labels(point.labels, (('le', _format_bound(bound)),))} "
                f"{cumulative}"
            )
        lines.append(
            f"{point.name}_bucket"
            f"{_format_labels(point.labels, (('le', '+Inf'),))} {point.count}"
        )
        lines.append(
            f"{point.name}_sum{_format_labels(point.labels)} "
            f"{_format_value(point.sum)}"
        )
        lines.append(
            f"{point.name}_count{_format_labels(point.labels)} {point.count}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(snap: MetricsSnapshot, indent: int | None = None) -> str:
    """A JSON rendering (stable key order) of one snapshot."""
    payload = {
        "counters": [
            {"name": p.name, "labels": dict(p.labels), "value": p.value}
            for p in snap.counters
        ],
        "gauges": [
            {"name": p.name, "labels": dict(p.labels), "value": p.value}
            for p in snap.gauges
        ],
        "histograms": [
            {
                "name": p.name,
                "labels": dict(p.labels),
                "bounds": list(p.bounds),
                "counts": list(p.counts),
                "sum": p.sum,
                "count": p.count,
            }
            for p in snap.histograms
        ],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# Snapshot arithmetic
# ---------------------------------------------------------------------------


def diff(new: MetricsSnapshot, old: MetricsSnapshot) -> MetricsSnapshot:
    """``new - old``: the activity between two snapshots.

    Counters and histograms subtract point-wise (series absent from
    ``old`` keep their ``new`` values — they started at zero); gauges are
    point-in-time, so the diff simply carries the ``new`` gauges.  The
    benchmarks use this to isolate one measurement window from whatever
    warmup traffic preceded it, and the CI smoke uses it to assert
    monotonicity (every diffed counter must be >= 0).
    """
    old_counters = {(p.name, p.labels): p for p in old.counters}
    counters = []
    for point in new.counters:
        before = old_counters.get((point.name, point.labels))
        value = point.value - before.value if before is not None else point.value
        counters.append(CounterPoint(point.name, point.labels, value))
    old_hists = {(p.name, p.labels): p for p in old.histograms}
    histograms = []
    for point in new.histograms:
        before = old_hists.get((point.name, point.labels))
        if before is not None and before.bounds == point.bounds:
            counts = tuple(
                (np.asarray(point.counts) - np.asarray(before.counts)).tolist()
            )
            histograms.append(
                HistogramPoint(
                    point.name,
                    point.labels,
                    point.bounds,
                    counts,
                    point.sum - before.sum,
                    point.count - before.count,
                )
            )
        else:
            histograms.append(point)
    return MetricsSnapshot(
        counters=tuple(counters),
        gauges=new.gauges,
        histograms=tuple(histograms),
    )
