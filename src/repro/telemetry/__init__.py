"""repro.telemetry — metrics, tracing, and profiling for the serve stack.

The observability layer the production-scale story needs: per-stage
serving latency, admission rejects by reason, cache hit/miss/eviction
counts per stripe, audit-pass backlog and latency, compliance denials,
and global epsilon remaining — all recorded by the components themselves
through the seams they already have, and exported as Prometheus text or
JSON from a frozen :func:`~repro.telemetry.export.snapshot`.

Three layers:

:mod:`~repro.telemetry.metrics`
    Lock-striped :class:`Counter` / :class:`Gauge` / fixed-bucket
    :class:`Histogram` primitives in a :class:`MetricsRegistry`; O(1)
    record, no allocation on the hot path.
:mod:`~repro.telemetry.tracing`
    Span trees with monotonic-clock durations and a ring-buffer
    :class:`SpanRecorder`; ids from a counter, never from RNG.
:mod:`~repro.telemetry.export`
    Frozen snapshots, Prometheus/JSON renderers, and snapshot
    :func:`diff` for benchmarks.

**Enabling.**  Telemetry is *off* by default: every instrumented
component holds the :data:`NULL_TELEMETRY` singleton and pays exactly
one attribute check per request.  Set ``REPRO_TELEMETRY=1`` to route
every default-constructed component into one process-wide
:class:`Telemetry` (shared registry, shared span recorder), or pass an
explicit :class:`Telemetry` instance for isolated registries in tests
and benchmarks.  Telemetry never touches RNG streams, lock ordering, or
served values: every answer is bit-identical with telemetry on or off,
and the tier-1 suite runs under ``REPRO_TELEMETRY=1`` in CI to pin that.
"""

from __future__ import annotations

import os
import threading
import time

from repro.telemetry.export import (
    CounterPoint,
    GaugePoint,
    HistogramPoint,
    MetricsSnapshot,
    diff,
    snapshot,
    to_json,
    to_prometheus,
)
from repro.telemetry.instrument import (
    TelemetryAdmission,
    TelemetryStage,
    analyst_digest_prefix,
)
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracing import Span, SpanRecorder

__all__ = [
    "Counter",
    "CounterPoint",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "GaugePoint",
    "Histogram",
    "HistogramPoint",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Span",
    "SpanRecorder",
    "TELEMETRY_ENV",
    "Telemetry",
    "TelemetryAdmission",
    "TelemetryStage",
    "analyst_digest_prefix",
    "default_telemetry",
    "diff",
    "resolve_telemetry",
    "snapshot",
    "to_json",
    "to_prometheus",
]

#: Environment variable enabling default-on telemetry ("1"/"true"/"on").
TELEMETRY_ENV = "REPRO_TELEMETRY"

_TRUTHY = {"1", "true", "yes", "on"}


class Telemetry:
    """The enabled facade: one registry, one span recorder, one clock.

    ``clock`` is the duration source the stage wrappers and gate timers
    use (``time.perf_counter`` by default; injectable so tests assert
    exact latencies).  Instrumented components check :attr:`enabled`
    once and pre-resolve their instruments — the facade itself is never
    on a hot path.
    """

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        spans: SpanRecorder | None = None,
        clock=time.perf_counter,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.spans = spans if spans is not None else SpanRecorder()
        self.clock = clock

    def snapshot(self) -> MetricsSnapshot:
        """Freeze this telemetry's registry."""
        return snapshot(self.registry)

    def __repr__(self) -> str:
        return f"Telemetry(registry={self.registry!r})"


class NullTelemetry:
    """The disabled facade: one attribute check, nothing else.

    Components branch on ``telemetry.enabled`` exactly once per request
    (or once at construction); with the null facade that check is the
    entire cost of the subsystem.
    """

    enabled = False
    registry = None
    spans = None
    clock = time.perf_counter

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(counters=(), gauges=(), histograms=())

    def __repr__(self) -> str:
        return "NullTelemetry()"


#: The process-wide disabled singleton.
NULL_TELEMETRY = NullTelemetry()

_default_lock = threading.Lock()
_default: Telemetry | None = None


def default_telemetry() -> Telemetry:
    """The process-wide shared :class:`Telemetry` (created on first use).

    Everything enabled via ``REPRO_TELEMETRY=1`` lands here, so one
    snapshot sees the whole process — every shard, pool, and gate.
    """
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = Telemetry()
    return _default


def resolve_telemetry(telemetry=None) -> Telemetry | NullTelemetry:
    """Normalize a ``telemetry`` argument into a facade instance.

    An explicit :class:`Telemetry`/:class:`NullTelemetry` passes through;
    ``True``/``False`` force the shared default on/off; ``None``
    (the universal default) consults ``REPRO_TELEMETRY`` — which is how
    CI runs the whole tier-1 suite and the loadgen smoke instrumented
    without touching a single call site.
    """
    if isinstance(telemetry, (Telemetry, NullTelemetry)):
        return telemetry
    if telemetry is True:
        return default_telemetry()
    if telemetry is False:
        return NULL_TELEMETRY
    if telemetry is None:
        flag = os.environ.get(TELEMETRY_ENV, "").strip().lower()
        if flag in _TRUTHY:
            return default_telemetry()
        return NULL_TELEMETRY
    raise TypeError(
        f"telemetry must be a Telemetry, NullTelemetry, bool, or None; "
        f"got {telemetry!r}"
    )
