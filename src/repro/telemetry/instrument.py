"""Metric names and the stage wrappers the serve stack instruments with.

One module owns the metric-family vocabulary so the pipeline, the
sharded front end, the audit workers, the compliance gate, the
accountant, the benchmarks, and the CI smoke all agree on names — the
smoke asserts these exact families appear in the Prometheus export.

The wrappers follow one rule: **wrap the seam, not the call sites**.
:class:`TelemetryStage` decorates any pipeline stage (it preserves
``name`` and delegates ``single``/``batch``), and
:class:`TelemetryAdmission` decorates an
:class:`~repro.service.pipeline.AdmissionControl` (preserving
``enter``/``exit``), so the pipeline's stage list stays the single place
instrumentation attaches.  Nothing here imports the service layer —
rejects are classified by the duck-typed ``reason`` attribute — so
``repro.telemetry`` stays a leaf package the whole stack can depend on.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

__all__ = [
    "ADMISSION_REJECTS",
    "AUDIT_ERRORS",
    "AUDIT_ESCALATIONS",
    "AUDIT_PASS_SECONDS",
    "AUDIT_QUEUE_DEPTH",
    "AUDIT_QUEUE_DEPTH_PEAK",
    "BREAKER_TRIPS",
    "BUDGET_EPSILON_REMAINING",
    "BUDGET_EPSILON_SPENT",
    "CACHE_ENTRIES",
    "CACHE_EVICTIONS",
    "CACHE_HITS",
    "CACHE_MISSES",
    "COMPLIANCE_DENIALS",
    "COMPLIANCE_REQUIRE_SECONDS",
    "LEASE_RECONCILIATIONS",
    "REQUESTS_TOTAL",
    "STAGE_SECONDS",
    "TelemetryAdmission",
    "TelemetryStage",
    "analyst_digest_prefix",
]

# -- serve pipeline ---------------------------------------------------------
#: Per-stage serving latency, labeled (stage, shard, mechanism).  The fused
#: cached-replay path reports under stage="cache_hit_fastpath".
STAGE_SECONDS = "repro_serve_stage_seconds"
#: Requests served, labeled (shard, mechanism, analyst=digest prefix).
REQUESTS_TOTAL = "repro_requests_total"
#: Admission refusals, labeled (reason, shard); pre-created at zero.
ADMISSION_REJECTS = "repro_admission_rejects_total"

# -- caches -----------------------------------------------------------------
CACHE_HITS = "repro_cache_hits_total"
CACHE_MISSES = "repro_cache_misses_total"
CACHE_EVICTIONS = "repro_cache_evictions_total"
CACHE_ENTRIES = "repro_cache_entries"

# -- audit workers ----------------------------------------------------------
AUDIT_QUEUE_DEPTH = "repro_audit_queue_depth"
AUDIT_QUEUE_DEPTH_PEAK = "repro_audit_queue_depth_peak"
AUDIT_PASS_SECONDS = "repro_audit_pass_seconds"
AUDIT_ESCALATIONS = "repro_audit_escalations_total"
AUDIT_ERRORS = "repro_audit_errors_total"
BREAKER_TRIPS = "repro_breaker_trips_total"

# -- compliance gate --------------------------------------------------------
COMPLIANCE_REQUIRE_SECONDS = "repro_compliance_require_seconds"
COMPLIANCE_DENIALS = "repro_compliance_denials_total"

# -- budget accounting ------------------------------------------------------
BUDGET_EPSILON_SPENT = "repro_budget_epsilon_spent"
BUDGET_EPSILON_REMAINING = "repro_budget_epsilon_remaining"
LEASE_RECONCILIATIONS = "repro_lease_reconciliations_total"


@lru_cache(maxsize=4096)
def analyst_digest_prefix(analyst: str) -> str:
    """A short, stable, non-identifying label for one analyst.

    Four hex characters of a BLAKE2b digest: enough to tell sessions
    apart on a dashboard without writing raw analyst names into metric
    labels (which outlive the session and leave the process via
    exporters).
    """
    return hashlib.blake2b(analyst.encode("utf-8"), digest_size=2).hexdigest()


class TelemetryStage:
    """A pipeline stage wrapper timing ``single``/``batch`` into a histogram.

    Exposes the wrapped stage's ``name`` (the pipeline repr and the stage
    -sequence tests see the same names with telemetry on or off) and the
    raw stage as ``inner`` (identity-sensitive consumers unwrap).
    """

    __slots__ = ("inner", "name", "_hist", "_clock")

    def __init__(self, inner, hist, clock):
        self.inner = inner
        self.name = inner.name
        self._hist = hist
        self._clock = clock

    def single(self, x) -> None:
        start = self._clock()
        try:
            self.inner.single(x)
        finally:
            self._hist.observe(self._clock() - start)

    def batch(self, x) -> None:
        start = self._clock()
        try:
            self.inner.batch(x)
        finally:
            self._hist.observe(self._clock() - start)

    def __repr__(self) -> str:
        return f"TelemetryStage({self.inner!r})"


class TelemetryAdmission:
    """An admission wrapper counting refusals by reason and timing entry.

    ``reject_counters`` maps refusal reasons (the exception's duck-typed
    ``reason`` attribute, e.g. ``"rate_limit"``/``"overload"``) to
    pre-created counters; unknown reasons fall into the ``"other"`` slot
    when one is provided, else go uncounted rather than raising.
    """

    __slots__ = ("inner", "_hist", "_rejects", "_clock")

    name = "admission"

    def __init__(self, inner, hist, reject_counters, clock):
        self.inner = inner
        self._hist = hist
        self._rejects = reject_counters
        self._clock = clock

    @property
    def bucket(self):
        return self.inner.bucket

    @property
    def gate(self):
        return self.inner.gate

    def enter(self, analyst: str) -> None:
        start = self._clock()
        try:
            self.inner.enter(analyst)
        except BaseException as refusal:
            reason = getattr(refusal, "reason", None)
            counter = self._rejects.get(reason) or self._rejects.get("other")
            if counter is not None:
                counter.inc()
            raise
        finally:
            self._hist.observe(self._clock() - start)

    def exit(self, analyst: str) -> None:
        self.inner.exit(analyst)

    def __repr__(self) -> str:
        return f"TelemetryAdmission({self.inner!r})"
