"""Datafly-style greedy full-domain generalization (Sweeney's algorithm).

Full-domain generalization assigns one hierarchy level per quasi-identifier
and applies it to *every* record — the scheme of the paper's toy example,
where the whole ZIP column is masked to ``1234*`` and the whole Age column
to decades.  The Datafly heuristic repeatedly raises the level of the QI
with the most distinct values until the release is k-anonymous, optionally
suppressing up to a budget of outlier records instead of over-generalizing
for their sake.

Optimal full-domain generalization is NP-hard (paper cites [30]); Datafly
is the standard greedy approximation and, like Mondrian, it tries to retain
information — feeding Theorem 2.10.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Sequence

from repro.data.dataset import Dataset
from repro.data.generalized import GeneralizedDataset, GeneralizedRecord
from repro.data.hierarchy import (
    GeneralizationHierarchy,
    GeneralizedValue,
    default_hierarchy,
)


class DataflyAnonymizer:
    """Greedy full-domain k-anonymizer over generalization hierarchies.

    Args:
        k: the anonymity parameter.
        hierarchies: per-QI generalization hierarchies; QIs without an
            entry get :func:`~repro.data.hierarchy.default_hierarchy`.
        quasi_identifiers: names to generalize; defaults to the schema's
            annotated quasi-identifiers.
        max_suppression: largest *fraction* of records that may be
            suppressed instead of forcing another generalization round.
    """

    def __init__(
        self,
        k: int,
        hierarchies: Mapping[str, GeneralizationHierarchy] | None = None,
        quasi_identifiers: Sequence[str] | None = None,
        max_suppression: float = 0.02,
    ):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if not 0.0 <= max_suppression < 1.0:
            raise ValueError("max_suppression must lie in [0, 1)")
        self.k = int(k)
        self.hierarchies = dict(hierarchies) if hierarchies else {}
        self.quasi_identifiers = tuple(quasi_identifiers) if quasi_identifiers else None
        self.max_suppression = float(max_suppression)

    def anonymize(self, dataset: Dataset) -> GeneralizedDataset:
        """Anonymize ``dataset``; may suppress up to the configured budget.

        Returns a release whose generalization levels are recorded in
        :attr:`last_levels` (useful for utility reporting and tests).
        """
        if len(dataset) == 0:
            return GeneralizedDataset(dataset.schema, [])
        qi_names = list(self.quasi_identifiers or dataset.schema.quasi_identifiers)
        if not qi_names:
            raise ValueError(
                "no quasi-identifiers: annotate the schema or pass them explicitly"
            )
        if len(dataset) < self.k:
            raise ValueError(f"cannot {self.k}-anonymize {len(dataset)} records")

        hierarchies = {
            name: self.hierarchies.get(
                name, default_hierarchy(dataset.schema.attribute(name).domain)
            )
            for name in qi_names
        }
        levels = {name: 0 for name in qi_names}
        budget = int(self.max_suppression * len(dataset))

        while True:
            keys = self._qi_keys(dataset, qi_names, hierarchies, levels)
            frequencies = Counter(keys)
            small = sum(
                count for count in frequencies.values() if count < self.k
            )
            if small <= budget:
                break
            raisable = [
                name for name in qi_names if levels[name] < hierarchies[name].levels - 1
            ]
            if not raisable:
                # Everything is fully suppressed and classes are still small:
                # only possible when n < k, which was rejected above — but
                # guard anyway rather than loop forever.
                break
            # Datafly heuristic: generalize the attribute with the most
            # distinct values at its current level.
            def distinct_values(name: str) -> int:
                position = qi_names.index(name)
                return len({key[position] for key in keys})

            target = max(raisable, key=lambda name: (distinct_values(name), name))
            levels[target] += 1

        # Build the release, suppressing residual small classes.
        keys = self._qi_keys(dataset, qi_names, hierarchies, levels)
        frequencies = Counter(keys)
        records = []
        suppressed = 0
        for row_index, record in enumerate(dataset):
            if frequencies[keys[row_index]] < self.k:
                suppressed += 1
                continue
            values = []
            for name in dataset.schema.names:
                if name in levels:
                    values.append(
                        hierarchies[name].generalize(record[name], levels[name])
                    )
                else:
                    values.append(GeneralizedValue.raw(record[name]))
            records.append(GeneralizedRecord(dataset.schema, values))
        self.last_levels = dict(levels)
        return GeneralizedDataset(dataset.schema, records, suppressed_count=suppressed)

    @staticmethod
    def _qi_keys(
        dataset: Dataset,
        qi_names: Sequence[str],
        hierarchies: Mapping[str, GeneralizationHierarchy],
        levels: Mapping[str, int],
    ) -> list[tuple[GeneralizedValue, ...]]:
        """Each record's generalized QI tuple at the current levels."""
        return [
            tuple(
                hierarchies[name].generalize(record[name], levels[name])
                for name in qi_names
            )
            for record in dataset
        ]
