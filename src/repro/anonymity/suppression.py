"""Record-suppression baseline anonymizer.

The crudest route to k-anonymity: keep quasi-identifiers raw and simply
drop every record whose QI combination appears fewer than ``k`` times.
Useless for sparse data (it deletes nearly everything — which the utility
metrics make visible) but valuable as the baseline against which Mondrian
and Datafly demonstrate why real anonymizers generalize instead.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.data.dataset import Dataset
from repro.data.generalized import GeneralizedDataset, GeneralizedRecord


def suppress_small_classes(
    dataset: Dataset,
    k: int,
    quasi_identifiers: Sequence[str] | None = None,
) -> GeneralizedDataset:
    """Drop records whose raw QI combination has multiplicity < ``k``.

    Returns a release whose surviving records are entirely raw (singleton
    generalized values); the suppression count is recorded on the release.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    qi_names = tuple(quasi_identifiers or dataset.schema.quasi_identifiers)
    if not qi_names:
        raise ValueError(
            "no quasi-identifiers: annotate the schema or pass them explicitly"
        )
    for name in qi_names:
        if name not in dataset.schema:
            raise KeyError(f"unknown quasi-identifier: {name!r}")

    keys = [tuple(record[name] for name in qi_names) for record in dataset]
    frequencies = Counter(keys)
    records = []
    suppressed = 0
    for row_index, record in enumerate(dataset):
        if frequencies[keys[row_index]] < k:
            suppressed += 1
            continue
        records.append(GeneralizedRecord.from_raw(record))
    return GeneralizedDataset(dataset.schema, records, suppressed_count=suppressed)
