"""k-anonymity substrate: checkers, anonymizers, and utility metrics.

Implements the framework of Samarati-Sweeney as the paper describes it
(Section 1.1): suppression and generalization of quasi-identifiers until
every record is identical to at least ``k - 1`` others, with anonymizers
that *optimize information content* — the very property Theorem 2.10 turns
against them.

* :mod:`repro.anonymity.checks` — k-anonymity, l-diversity and t-closeness
  verification on released data.
* :mod:`repro.anonymity.mondrian` — the Mondrian multidimensional
  partitioning anonymizer (greedy median cuts).
* :mod:`repro.anonymity.datafly` — Datafly-style greedy full-domain
  generalization over hierarchies, with outlier suppression.
* :mod:`repro.anonymity.suppression` — record-suppression baseline.
* :mod:`repro.anonymity.metrics` — discernibility / average-class-size /
  precision utility metrics ("maximizing some measure of information
  content", as the paper puts it).
"""

from repro.anonymity.agreement import AgreementAnonymizer
from repro.anonymity.checks import (
    distinct_l_diversity,
    equivalence_classes_on,
    is_k_anonymous,
    is_l_diverse,
    is_t_close,
    t_closeness,
)
from repro.anonymity.datafly import DataflyAnonymizer
from repro.anonymity.incognito import IncognitoAnonymizer
from repro.anonymity.metrics import (
    average_class_size_ratio,
    discernibility_metric,
    generalization_precision,
    utility_report,
)
from repro.anonymity.mondrian import MondrianAnonymizer
from repro.anonymity.suppression import suppress_small_classes

__all__ = [
    "AgreementAnonymizer",
    "DataflyAnonymizer",
    "IncognitoAnonymizer",
    "MondrianAnonymizer",
    "average_class_size_ratio",
    "discernibility_metric",
    "distinct_l_diversity",
    "equivalence_classes_on",
    "generalization_precision",
    "is_k_anonymous",
    "is_l_diverse",
    "is_t_close",
    "suppress_small_classes",
    "t_closeness",
    "utility_report",
]
