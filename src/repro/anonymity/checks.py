"""Verification of syntactic anonymity guarantees on released data.

These are the *checkers* for k-anonymity and its refinements l-diversity
[29] and t-closeness [28] (paper, footnote 3).  They operate on
:class:`~repro.data.generalized.GeneralizedDataset` releases and treat the
quasi-identifier columns as the linkage surface, per the standard model.
"""

from __future__ import annotations

from collections import Counter

from repro.data.generalized import GeneralizedDataset


def equivalence_classes_on(
    release: GeneralizedDataset, names: list[str] | tuple[str, ...] | None = None
) -> dict[tuple, list[int]]:
    """Row indices grouped by identical generalized values on ``names``.

    ``names`` defaults to the schema's quasi-identifiers (all attributes
    when none are annotated) — the columns an attacker can link on.
    """
    if names is None:
        names = release.schema.quasi_identifiers or release.schema.names
    missing = [n for n in names if n not in release.schema]
    if missing:
        raise KeyError(f"unknown attributes: {missing}")
    classes: dict[tuple, list[int]] = {}
    for index, record in enumerate(release):
        key = tuple(record[name] for name in names)
        classes.setdefault(key, []).append(index)
    return classes


def is_k_anonymous(
    release: GeneralizedDataset,
    k: int,
    quasi_identifiers: list[str] | tuple[str, ...] | None = None,
) -> bool:
    """Whether every QI combination appears at least ``k`` times."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if len(release) == 0:
        return True
    classes = equivalence_classes_on(release, quasi_identifiers)
    return min(len(rows) for rows in classes.values()) >= k


def distinct_l_diversity(
    release: GeneralizedDataset,
    sensitive: str,
    quasi_identifiers: list[str] | tuple[str, ...] | None = None,
) -> int:
    """The l achieved under *distinct* l-diversity.

    The minimum, over equivalence classes, of the number of distinct
    sensitive values in the class.  A release is l-diverse when this is at
    least l.
    """
    if sensitive not in release.schema:
        raise KeyError(f"unknown sensitive attribute: {sensitive!r}")
    if len(release) == 0:
        raise ValueError("l-diversity of an empty release is undefined")
    classes = equivalence_classes_on(release, quasi_identifiers)
    worst = None
    for rows in classes.values():
        distinct = {release[i][sensitive] for i in rows}
        worst = len(distinct) if worst is None else min(worst, len(distinct))
    assert worst is not None
    return worst


def is_l_diverse(
    release: GeneralizedDataset,
    l: int,
    sensitive: str,
    quasi_identifiers: list[str] | tuple[str, ...] | None = None,
) -> bool:
    """Whether every equivalence class has >= ``l`` distinct sensitive values."""
    if l <= 0:
        raise ValueError(f"l must be positive, got {l}")
    return distinct_l_diversity(release, sensitive, quasi_identifiers) >= l


def t_closeness(
    release: GeneralizedDataset,
    sensitive: str,
    quasi_identifiers: list[str] | tuple[str, ...] | None = None,
) -> float:
    """The t achieved: max total-variation gap between class and global.

    For each equivalence class, compares the class's sensitive-value
    distribution to the whole release's using total variation distance (the
    categorical specialization of the Earth Mover distance used by [28]);
    returns the maximum.  A release is t-close when this is at most t.
    """
    if sensitive not in release.schema:
        raise KeyError(f"unknown sensitive attribute: {sensitive!r}")
    if len(release) == 0:
        raise ValueError("t-closeness of an empty release is undefined")
    global_counts = Counter(record[sensitive] for record in release)
    total = len(release)
    global_dist = {value: count / total for value, count in global_counts.items()}

    worst = 0.0
    classes = equivalence_classes_on(release, quasi_identifiers)
    for rows in classes.values():
        class_counts = Counter(release[i][sensitive] for i in rows)
        class_total = len(rows)
        support = set(global_dist) | set(class_counts)
        distance = 0.5 * sum(
            abs(class_counts.get(v, 0) / class_total - global_dist.get(v, 0.0))
            for v in support
        )
        worst = max(worst, distance)
    return worst


def is_t_close(
    release: GeneralizedDataset,
    t: float,
    sensitive: str,
    quasi_identifiers: list[str] | tuple[str, ...] | None = None,
) -> bool:
    """Whether every class's sensitive distribution is within ``t`` of global."""
    if not 0 <= t <= 1:
        raise ValueError(f"t must lie in [0, 1], got {t}")
    return t_closeness(release, sensitive, quasi_identifiers) <= t
