"""Utility (information-content) metrics for anonymized releases.

The paper's Theorem 2.10 turns on anonymizers that "attempt to retain as
much as possible information in the k-anonymized data".  These metrics
quantify that retention, so the experiments can show the causal chain:
better utility -> tighter equivalence classes -> lower predicate weight ->
predicate singling out.

* :func:`discernibility_metric` — sum of squared class sizes (plus an
  ``n``-weighted penalty per suppressed record); lower is better.
* :func:`average_class_size_ratio` — the C_avg of the Mondrian paper:
  ``(n_released / #classes) / k``; 1.0 is ideal.
* :func:`generalization_precision` — mean fraction of each attribute's
  domain covered by released cells; 0 means raw data, 1 means fully
  suppressed.
"""

from __future__ import annotations

from typing import Sequence

from repro.anonymity.checks import equivalence_classes_on
from repro.data.generalized import GeneralizedDataset


def discernibility_metric(release: GeneralizedDataset, original_size: int | None = None) -> int:
    """Sum over classes of |class|^2, plus n per suppressed record.

    ``original_size`` defaults to released + suppressed counts; it is the
    penalty weight for suppressed records, per the standard definition.
    """
    classes = equivalence_classes_on(release)
    if original_size is None:
        original_size = len(release) + release.suppressed_count
    penalty = release.suppressed_count * original_size
    return sum(len(rows) ** 2 for rows in classes.values()) + penalty


def average_class_size_ratio(release: GeneralizedDataset, k: int) -> float:
    """C_avg = (records / classes) / k; 1.0 means every class is exactly k."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if len(release) == 0:
        raise ValueError("an empty release has no classes")
    classes = equivalence_classes_on(release)
    return (len(release) / len(classes)) / k


def generalization_precision(
    release: GeneralizedDataset,
    quasi_identifiers: Sequence[str] | None = None,
) -> float:
    """Mean coverage fraction of released QI cells (0 = raw, 1 = suppressed).

    For each released value, the fraction of its attribute's domain the
    cover set spans, scaled so singletons score 0 and full suppression 1;
    averaged over all (record, QI) pairs.
    """
    if len(release) == 0:
        raise ValueError("an empty release has no precision")
    names = tuple(quasi_identifiers or release.schema.quasi_identifiers or release.schema.names)
    total = 0.0
    cells = 0
    for record in release:
        for name in names:
            domain_size = len(release.schema.attribute(name).domain)
            covered = len(record[name].covers)
            if domain_size <= 1:
                share = 0.0
            else:
                share = (covered - 1) / (domain_size - 1)
            total += share
            cells += 1
    return total / cells


def utility_report(release: GeneralizedDataset, k: int) -> dict[str, float]:
    """All metrics in one mapping (for the experiment tables)."""
    return {
        "records": float(len(release)),
        "suppressed": float(release.suppressed_count),
        "classes": float(len(equivalence_classes_on(release))),
        "discernibility": float(discernibility_metric(release)),
        "avg_class_size_ratio": average_class_size_ratio(release, k),
        "precision": generalization_precision(release),
    }
