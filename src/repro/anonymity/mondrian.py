"""The Mondrian multidimensional k-anonymizer (LeFevre et al. style).

Mondrian greedily partitions the data kd-tree-fashion: at each node it
picks the quasi-identifier with the widest normalized span, cuts at the
median, and recurses while both sides keep at least ``k`` records.  Each
leaf partition becomes an equivalence class whose QI values are generalized
to the partition's span (numeric attributes to ranges, categorical ones to
the set of present values).

This is exactly the kind of anonymizer Theorem 2.10 targets: it "tries to
optimize on the information content of the k-anonymized dataset", so the
resulting equivalence classes are as *tight* as k-anonymity allows — and
tight classes mean low-weight predicates for the PSO attacker.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.dataset import Dataset
from repro.data.domain import CategoricalDomain, IntegerDomain
from repro.data.generalized import GeneralizedDataset, GeneralizedRecord
from repro.data.hierarchy import GeneralizedValue


class MondrianAnonymizer:
    """Greedy median-cut k-anonymizer.

    Args:
        k: the anonymity parameter (every output class has >= k records).
        quasi_identifiers: attribute names to generalize; defaults to the
            schema's annotated quasi-identifiers.
        l_diversity: optional ``(l, sensitive_attribute)``: cuts are only
            taken when both sides keep at least ``l`` distinct sensitive
            values, so the release is distinct-l-diverse as well as
            k-anonymous.  This is the variant footnote 3 of the paper says
            the PSO analysis extends to — and the theorem checks confirm it
            does.
    """

    def __init__(
        self,
        k: int,
        quasi_identifiers: Sequence[str] | None = None,
        l_diversity: tuple[int, str] | None = None,
    ):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if l_diversity is not None:
            l_value, _sensitive = l_diversity
            if l_value <= 0:
                raise ValueError(f"l must be positive, got {l_value}")
        self.k = int(k)
        self.quasi_identifiers = tuple(quasi_identifiers) if quasi_identifiers else None
        self.l_diversity = l_diversity

    def anonymize(self, dataset: Dataset) -> GeneralizedDataset:
        """Anonymize ``dataset``; output preserves row order, no suppression."""
        if len(dataset) == 0:
            return GeneralizedDataset(dataset.schema, [])
        qi_names = self.quasi_identifiers or dataset.schema.quasi_identifiers
        if not qi_names:
            raise ValueError(
                "no quasi-identifiers: annotate the schema or pass them explicitly"
            )
        if len(dataset) < self.k:
            raise ValueError(
                f"cannot {self.k}-anonymize {len(dataset)} records"
            )
        for name in qi_names:
            if name not in dataset.schema:
                raise KeyError(f"unknown quasi-identifier: {name!r}")
        if self.l_diversity is not None:
            l_value, sensitive = self.l_diversity
            if sensitive not in dataset.schema:
                raise KeyError(f"unknown sensitive attribute: {sensitive!r}")
            root_distinct = len(set(dataset.column(sensitive)))
            if root_distinct < l_value:
                raise ValueError(
                    f"the data has only {root_distinct} distinct {sensitive!r} "
                    f"values; {l_value}-diversity is unattainable"
                )

        partitions = self._partition(dataset, list(range(len(dataset))), list(qi_names))

        generalized_rows: list[GeneralizedRecord | None] = [None] * len(dataset)
        for partition in partitions:
            cell = self._summarize(dataset, partition, qi_names)
            for row_index in partition:
                record = dataset[row_index]
                values = []
                for name in dataset.schema.names:
                    if name in cell:
                        values.append(cell[name])
                    else:
                        values.append(GeneralizedValue.raw(record[name]))
                generalized_rows[row_index] = GeneralizedRecord(dataset.schema, values)
        assert all(row is not None for row in generalized_rows)
        return GeneralizedDataset(dataset.schema, generalized_rows)  # type: ignore[arg-type]

    # -- partitioning -------------------------------------------------------------

    def _partition(
        self, dataset: Dataset, rows: list[int], qi_names: list[str]
    ) -> list[list[int]]:
        """Recursively cut ``rows``; returns the leaf partitions."""
        for name in self._attributes_by_span(dataset, rows, qi_names):
            split = self._try_split(dataset, rows, name)
            if split is not None:
                left, right = split
                return self._partition(dataset, left, qi_names) + self._partition(
                    dataset, right, qi_names
                )
        return [rows]

    def _attributes_by_span(
        self, dataset: Dataset, rows: list[int], qi_names: list[str]
    ) -> list[str]:
        """QI names ordered by decreasing normalized span over ``rows``."""
        spans = []
        for name in qi_names:
            values = [dataset[i][name] for i in rows]
            domain = dataset.schema.attribute(name).domain
            if isinstance(domain, IntegerDomain):
                width = max(values) - min(values)  # type: ignore[type-var]
                normalizer = max(domain.high - domain.low, 1)
                span = width / normalizer
            else:
                span = len(set(values)) / max(len(domain), 1)
            spans.append((span, name))
        spans.sort(key=lambda pair: (-pair[0], pair[1]))
        return [name for _span, name in spans]

    def _try_split(
        self, dataset: Dataset, rows: list[int], name: str
    ) -> tuple[list[int], list[int]] | None:
        """Median-cut ``rows`` on ``name``; None when no allowable cut exists."""
        domain = dataset.schema.attribute(name).domain
        if isinstance(domain, CategoricalDomain):
            order = {value: i for i, value in enumerate(domain.values)}
            keyed = sorted(rows, key=lambda i: order[dataset[i][name]])
        else:
            keyed = sorted(rows, key=lambda i: dataset[i][name])  # type: ignore[arg-type]

        values_in_order = [dataset[i][name] for i in keyed]
        # Candidate cut positions are value boundaries (records with equal
        # values must stay together); pick the boundary nearest the median.
        boundaries = [
            position
            for position in range(1, len(keyed))
            if values_in_order[position] != values_in_order[position - 1]
        ]
        if not boundaries:
            return None
        middle = len(keyed) / 2.0
        boundaries.sort(key=lambda position: abs(position - middle))
        for position in boundaries:
            left, right = keyed[:position], keyed[position:]
            if len(left) >= self.k and len(right) >= self.k and self._diverse_enough(
                dataset, left
            ) and self._diverse_enough(dataset, right):
                return left, right
        return None

    def _diverse_enough(self, dataset: Dataset, rows: list[int]) -> bool:
        """Whether ``rows`` keeps the configured l-diversity (True when off)."""
        if self.l_diversity is None:
            return True
        l_value, sensitive = self.l_diversity
        distinct = {dataset[i][sensitive] for i in rows}
        return len(distinct) >= l_value

    # -- cell summarization ----------------------------------------------------------

    def _summarize(
        self, dataset: Dataset, rows: list[int], qi_names: Sequence[str]
    ) -> dict[str, GeneralizedValue]:
        """Generalize each QI to the partition's span."""
        cell = {}
        for name in qi_names:
            values = [dataset[i][name] for i in rows]
            domain = dataset.schema.attribute(name).domain
            distinct = set(values)
            if len(distinct) == 1:
                cell[name] = GeneralizedValue.raw(values[0])
            elif isinstance(domain, IntegerDomain):
                low, high = min(distinct), max(distinct)  # type: ignore[type-var]
                cell[name] = GeneralizedValue(
                    f"{low}-{high}", range(int(low), int(high) + 1)  # type: ignore[arg-type]
                )
            else:
                ordered = [value for value in domain.values if value in distinct]
                label = "{" + ",".join(str(value) for value in ordered) + "}"
                cell[name] = GeneralizedValue(label, ordered)
        return cell
