"""Incognito-style optimal full-domain generalization (LeFevre et al.).

Datafly (:mod:`repro.anonymity.datafly`) greedily raises one attribute's
generalization level at a time and may badly overshoot; *Incognito*
searches the full lattice of per-attribute level vectors for the
minimum-cost vector that achieves k-anonymity (optionally within a record
suppression budget).  Two classical facts make the search tractable:

* **generalization monotonicity** — if a level vector is k-anonymous, so is
  every componentwise-higher vector, so the search can stop ascending once
  a node satisfies the requirement;
* **rollup** — equivalence-class counts at a node can be computed from the
  raw data directly (we do exactly that; datasets here are small).

The paper cites optimal k-anonymization as NP-hard in general [30];
Incognito is exponential in the number of quasi-identifiers but linear in
the data, which is the standard practical compromise.  Its appearance here
also sharpens Theorem 2.10's premise: an anonymizer that provably maximizes
information content produces the *tightest* classes — and hence the
lowest-weight class predicates.
"""

from __future__ import annotations

from collections import Counter
from itertools import product
from typing import Mapping, Sequence

from repro.data.dataset import Dataset
from repro.data.generalized import GeneralizedDataset, GeneralizedRecord
from repro.data.hierarchy import (
    GeneralizationHierarchy,
    GeneralizedValue,
    default_hierarchy,
)


class IncognitoAnonymizer:
    """Exhaustive-lattice full-domain k-anonymizer.

    Args:
        k: the anonymity parameter.
        hierarchies: per-QI generalization hierarchies (defaults applied).
        quasi_identifiers: names to generalize; defaults to the schema's.
        max_suppression: record-suppression budget as a fraction.
        cost: node-cost function, ``"height"`` (sum of levels — the classic
            minimal-generalization objective) or ``"precision"`` (mean
            normalized level, weighting deep hierarchies less).
    """

    def __init__(
        self,
        k: int,
        hierarchies: Mapping[str, GeneralizationHierarchy] | None = None,
        quasi_identifiers: Sequence[str] | None = None,
        max_suppression: float = 0.0,
        cost: str = "height",
    ):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if not 0.0 <= max_suppression < 1.0:
            raise ValueError("max_suppression must lie in [0, 1)")
        if cost not in ("height", "precision"):
            raise ValueError(f"unknown cost function: {cost!r}")
        self.k = int(k)
        self.hierarchies = dict(hierarchies) if hierarchies else {}
        self.quasi_identifiers = tuple(quasi_identifiers) if quasi_identifiers else None
        self.max_suppression = float(max_suppression)
        self.cost = cost

    def anonymize(self, dataset: Dataset) -> GeneralizedDataset:
        """Anonymize with the cheapest satisfying level vector.

        The chosen vector is recorded in :attr:`last_levels`; raises when
        even full suppression of every QI cannot satisfy ``k`` (only
        possible when ``len(dataset) < k``).
        """
        if len(dataset) == 0:
            return GeneralizedDataset(dataset.schema, [])
        qi_names = list(self.quasi_identifiers or dataset.schema.quasi_identifiers)
        if not qi_names:
            raise ValueError(
                "no quasi-identifiers: annotate the schema or pass them explicitly"
            )
        if len(dataset) < self.k:
            raise ValueError(f"cannot {self.k}-anonymize {len(dataset)} records")

        hierarchies = {
            name: self.hierarchies.get(
                name, default_hierarchy(dataset.schema.attribute(name).domain)
            )
            for name in qi_names
        }
        budget = int(self.max_suppression * len(dataset))

        best_vector: tuple[int, ...] | None = None
        best_cost = float("inf")
        level_ranges = [range(hierarchies[name].levels) for name in qi_names]
        # Full sweep with a monotonicity shortcut: skip any vector that is
        # componentwise >= an already-satisfying vector with worse cost.
        satisfying: list[tuple[int, ...]] = []
        for vector in product(*level_ranges):
            if any(all(v >= s for v, s in zip(vector, known)) for known in satisfying):
                continue  # dominated: satisfies k-anonymity but costs more
            if self._satisfies(dataset, qi_names, hierarchies, vector, budget):
                satisfying.append(vector)
                vector_cost = self._cost(vector, qi_names, hierarchies)
                if vector_cost < best_cost:
                    best_cost = vector_cost
                    best_vector = vector
        if best_vector is None:
            raise RuntimeError(
                "no level vector satisfies the requirement within the "
                "suppression budget"
            )

        self.last_levels = dict(zip(qi_names, best_vector))
        return self._materialize(dataset, qi_names, hierarchies, best_vector)

    # -- internals --------------------------------------------------------------

    def _qi_keys(
        self,
        dataset: Dataset,
        qi_names: Sequence[str],
        hierarchies: Mapping[str, GeneralizationHierarchy],
        vector: Sequence[int],
    ) -> list[tuple[GeneralizedValue, ...]]:
        return [
            tuple(
                hierarchies[name].generalize(record[name], level)
                for name, level in zip(qi_names, vector)
            )
            for record in dataset
        ]

    def _satisfies(
        self,
        dataset: Dataset,
        qi_names: Sequence[str],
        hierarchies: Mapping[str, GeneralizationHierarchy],
        vector: Sequence[int],
        budget: int,
    ) -> bool:
        frequencies = Counter(self._qi_keys(dataset, qi_names, hierarchies, vector))
        small = sum(count for count in frequencies.values() if count < self.k)
        return small <= budget

    def _cost(
        self,
        vector: Sequence[int],
        qi_names: Sequence[str],
        hierarchies: Mapping[str, GeneralizationHierarchy],
    ) -> float:
        if self.cost == "height":
            return float(sum(vector))
        return sum(
            level / max(hierarchies[name].levels - 1, 1)
            for name, level in zip(qi_names, vector)
        ) / len(qi_names)

    def _materialize(
        self,
        dataset: Dataset,
        qi_names: Sequence[str],
        hierarchies: Mapping[str, GeneralizationHierarchy],
        vector: Sequence[int],
    ) -> GeneralizedDataset:
        keys = self._qi_keys(dataset, qi_names, hierarchies, vector)
        frequencies = Counter(keys)
        levels = dict(zip(qi_names, vector))
        records = []
        suppressed = 0
        for row_index, record in enumerate(dataset):
            if frequencies[keys[row_index]] < self.k:
                suppressed += 1
                continue
            values = []
            for name in dataset.schema.names:
                if name in levels:
                    values.append(
                        hierarchies[name].generalize(record[name], levels[name])
                    )
                else:
                    values.append(GeneralizedValue.raw(record[name]))
            records.append(GeneralizedRecord(dataset.schema, values))
        return GeneralizedDataset(dataset.schema, records, suppressed_count=suppressed)
