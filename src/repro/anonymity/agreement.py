"""Agreement-based (suppression-only) k-anonymizer.

This is the "typical, information-content-optimizing" anonymizer family the
proof of Theorem 2.10 (via [14]) analyzes: partition the records into
groups of at least ``k`` and, within each group, release exactly the
attributes on which *all* group members agree, suppressing the rest.  The
released rows within a group are identical, so the output is k-anonymous by
construction; and because the anonymizer keeps every attribute it possibly
can, the per-class predicate "matches all released values" has weight about
``2^-(number of agreed attributes)`` — negligible once the data is wide.

That is the engine of the paper's 37% claim: the class predicate ``p`` has
negligible weight yet matches the ``k' >= k`` class members, and a fresh
weight-``1/k'`` hash refinement ``p'`` isolates inside the class with
probability ``(1 - 1/k')^(k'-1) -> 1/e``.

Grouping strategies:

* ``"sorted"`` (default) — lexicographically sort records and group
  consecutive runs of ``k``; neighbors in sorted order share prefixes, so
  agreement (and hence utility *and* attack strength) is maximized greedily.
* ``"sequential"`` — group records in input order (an intentionally
  utility-poor ablation).
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.data.generalized import GeneralizedDataset, GeneralizedRecord
from repro.data.hierarchy import GeneralizedValue
from repro.utils.rng import RngSeed


class AgreementAnonymizer:
    """Suppression-only k-anonymizer releasing within-group agreed values.

    Args:
        k: group size floor (the anonymity parameter).
        strategy: ``"sorted"`` or ``"sequential"`` grouping (see module doc).
    """

    def __init__(self, k: int, strategy: str = "sorted"):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if strategy not in ("sorted", "sequential"):
            raise ValueError(f"unknown grouping strategy: {strategy!r}")
        self.k = int(k)
        self.strategy = strategy

    def anonymize(self, dataset: Dataset) -> GeneralizedDataset:
        """Anonymize ``dataset``; row order follows the grouping order."""
        n = len(dataset)
        if n == 0:
            return GeneralizedDataset(dataset.schema, [])
        if n < self.k:
            raise ValueError(f"cannot {self.k}-anonymize {n} records")

        qi_names = dataset.schema.quasi_identifiers or dataset.schema.names
        qi_columns = [dataset.schema.index_of(name) for name in qi_names]

        if self.strategy == "sorted":
            order = sorted(
                range(n),
                key=lambda i: _sort_key(tuple(dataset.rows[i][c] for c in qi_columns)),
            )
        else:
            order = list(range(n))

        # Consecutive groups of k; the remainder joins the last group so no
        # group falls below k.
        groups: list[list[int]] = []
        for start in range(0, n, self.k):
            group = order[start : start + self.k]
            if len(group) < self.k and groups:
                groups[-1].extend(group)
            else:
                groups.append(group)

        schema = dataset.schema
        qi_set = set(qi_names)
        records: list[GeneralizedRecord] = []
        for group in groups:
            rows = [dataset.rows[i] for i in group]
            # One shared cell per group on the quasi-identifiers: agreed
            # values stay, disagreements are suppressed.  Non-QI attributes
            # (e.g. the sensitive column) are released raw per record, as
            # standard k-anonymity prescribes.
            cell: dict[int, GeneralizedValue] = {}
            for column, name in enumerate(schema.names):
                if name not in qi_set:
                    continue
                column_values = {row[column] for row in rows}
                if len(column_values) == 1:
                    cell[column] = GeneralizedValue.raw(rows[0][column])
                else:
                    domain = schema.attribute(name).domain
                    cell[column] = GeneralizedValue("*", list(domain))
            for row in rows:
                values = [
                    cell[column] if column in cell else GeneralizedValue.raw(row[column])
                    for column in range(len(schema))
                ]
                records.append(GeneralizedRecord(schema, values))
        return GeneralizedDataset(schema, records)


def _sort_key(row: tuple) -> tuple:
    """Type-stable lexicographic key (mixed int/str columns sort per-column)."""
    return tuple((type(value).__name__, value) for value in row)


def estimate_agreement_attack_success(
    distribution,
    n: int,
    k: int,
    trials: int,
    mode: str = "refine",
    strategy: str = "sorted",
    rng: RngSeed = None,
    jobs: int = 1,
    backend: str = "auto",
):
    """Monte-Carlo estimate of the PSO attack success against this anonymizer.

    The Theorem 2.10 headline quantity: play the PSO game against
    :class:`AgreementAnonymizer` releases with the
    :class:`~repro.core.attackers.KAnonymityPSOAttacker` (mode
    ``"refine"`` reproduces the paper's ``(1 - 1/k')^(k'-1) ~ 37%``,
    ``"singleton"`` Cohen's ~100% strengthening).  Trials fan out across
    ``jobs`` workers; for a fixed ``rng`` the returned
    :class:`~repro.core.pso.PSOGameResult` is bit-identical for every
    ``jobs`` value and backend.
    """
    # Imported lazily: repro.core.theorems imports this module at package
    # import time, so a top-level import of repro.core here would cycle.
    from repro.core.attackers import KAnonymityPSOAttacker
    from repro.core.mechanisms import KAnonymityMechanism
    from repro.core.pso import PSOGame

    mechanism = KAnonymityMechanism(
        AgreementAnonymizer(k, strategy=strategy), label="agreement"
    )
    game = PSOGame(distribution, n, mechanism, KAnonymityPSOAttacker(mode))
    return game.run(trials, rng, jobs=jobs, backend=backend)
