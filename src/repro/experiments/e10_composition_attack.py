"""E10 — Theorem 2.8: PSO security does not compose.

Each counting mechanism is individually PSO-secure (E9), yet the
composition of ``omega(log n)`` of them releases enough bits to isolate a
record with a negligible-weight predicate.  We run the constructive attack
of :func:`repro.core.attackers.build_composition_suite` across dataset
sizes and report its win rate against the "secure ceiling" (the best any
weight-compliant attacker could do without looking at the output).
"""

from __future__ import annotations

from repro.core.attackers import build_composition_suite
from repro.core.pso import PSOGame
from repro.data.distributions import uniform_bits_distribution
from repro.experiments.runner import ExperimentResult, register
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


@register("E10")
def run(seed: int = 0, quick: bool = False, jobs: int = 1) -> ExperimentResult:
    """Composition-attack success vs dataset size."""
    width = 64
    sizes = [128] if quick else [128, 256, 512]
    trials = 25 if quick else 60
    distribution = uniform_bits_distribution(width)

    table = Table(
        [
            "n",
            "count mechanisms (l)",
            "PSO success",
            "isolation rate",
            "secure ceiling n^-1",
        ],
        title="E10: composing PSO-secure count mechanisms (Theorem 2.8)",
    )
    worst_success = 1.0
    for n in sizes:
        suite = build_composition_suite(n)
        game = PSOGame(distribution, n, suite.mechanism, suite.adversary)
        result = game.run(trials, derive_rng(seed, "e10", n), jobs=jobs)
        ceiling = min(1.0, n * result.weight_threshold)
        table.add_row(
            [
                n,
                suite.num_counts,
                str(result.success),
                result.isolation_rate.estimate,
                ceiling,
            ]
        )
        worst_success = min(worst_success, result.success.estimate)

    return ExperimentResult(
        experiment_id="E10",
        title="Incomposability of PSO security",
        paper_claim=(
            "there exist omega(log n) count mechanisms whose composition does "
            "not prevent predicate singling out (Theorem 2.8): the counts leak "
            "enough bits of one record to isolate it"
        ),
        tables=(table,),
        headline={"min_success_across_sizes": worst_success},
    )
