"""E11 — Theorems 1.3 and 2.9: differential privacy prevents PSO.

Two measurements:

1. **Theorem 1.3** — the Laplace mechanism's output-probability ratios on
   neighboring datasets stay within ``e^eps`` (empirical DP verification,
   with a deliberately broken mechanism as the falsifiability control).
2. **Theorem 2.9** — the strongest attack we have (the Theorem 2.8
   composition attack, which wins ~70% against exact counts) collapses when
   the same counts are released with a total epsilon of differential
   privacy.  Epsilon is swept to show the attack stays dead even at
   generous budgets.
"""

from __future__ import annotations

import numpy as np

from repro.core.attackers import build_composition_suite
from repro.core.mechanisms import ComposedMechanism, DPCountMechanism
from repro.core.pso import PSOGame
from repro.data.distributions import uniform_bits_distribution
from repro.dp.laplace import LaplaceMechanism
from repro.dp.verify import verify_dp, verify_spec
from repro.experiments.runner import ExperimentResult, register
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


@register("E11")
def run(seed: int = 0, quick: bool = False, jobs: int = 1) -> ExperimentResult:
    """Empirical DP verification plus the PSO game under DP releases."""
    verify_trials = 1_500 if quick else 6_000
    x = np.array([1, 0, 1, 1, 0, 1])
    x_prime = np.array([1, 0, 1, 1, 0, 0])

    dp_table = Table(
        ["mechanism", "claimed eps", "max |log ratio|", "verdict"],
        title="E11a: empirical DP verification (Theorem 1.3)",
    )
    for epsilon in (0.5, 1.0, 2.0):
        # Verify the MechanismSpec itself: the kernel that samples and the
        # epsilon the accountant would charge are one object under test.
        spec = LaplaceMechanism(epsilon).spec()
        verdict = verify_spec(
            spec,
            x,
            x_prime,
            trials=verify_trials,
            rng=derive_rng(seed, "e11-verify", epsilon),
        )
        dp_table.add_row(
            [
                f"Laplace(eps={epsilon})",
                epsilon,
                verdict.max_observed_log_ratio,
                "consistent" if verdict.consistent else "VIOLATION",
            ]
        )
    # Falsifiability control: the exact count must be flagged.
    broken = verify_dp(
        lambda data, rng: float(np.sum(data)),
        x,
        x_prime,
        epsilon=1.0,
        trials=verify_trials,
        rng=derive_rng(seed, "e11-broken"),
    )
    dp_table.add_row(
        ["exact count (control)", 1.0, broken.max_observed_log_ratio,
         "consistent" if broken.consistent else "VIOLATION"]
    )

    n = 256
    width = 64
    trials = 25 if quick else 60
    distribution = uniform_bits_distribution(width)
    suite = build_composition_suite(n)

    pso_table = Table(
        ["release of the l counts", "total eps", "PSO success", "isolation rate"],
        title=f"E11b: the Theorem 2.8 attack vs DP releases (n={n}, "
        f"l={suite.num_counts})",
    )
    exact_game = PSOGame(distribution, n, suite.mechanism, suite.adversary)
    exact_result = exact_game.run(trials, derive_rng(seed, "e11-exact"), jobs=jobs)
    pso_table.add_row(
        ["exact (no privacy)", "inf", str(exact_result.success),
         exact_result.isolation_rate.estimate]
    )
    dp_success = {}
    for total_epsilon in (0.5, 2.0, 8.0):
        per_count = total_epsilon / suite.num_counts
        dp_mechanism = ComposedMechanism(
            [DPCountMechanism(m.query, per_count) for m in suite.mechanism.mechanisms]
        )
        game = PSOGame(distribution, n, dp_mechanism, suite.adversary)
        result = game.run(trials, derive_rng(seed, "e11-dp", total_epsilon), jobs=jobs)
        pso_table.add_row(
            [
                f"Laplace, eps/l each",
                total_epsilon,
                str(result.success),
                result.isolation_rate.estimate,
            ]
        )
        dp_success[total_epsilon] = result.success.estimate

    return ExperimentResult(
        experiment_id="E11",
        title="Differential privacy prevents predicate singling out",
        paper_claim=(
            "the Laplace mechanism is eps-DP (Theorem 1.3), and eps-DP "
            "mechanisms prevent predicate singling out (Theorem 2.9)"
        ),
        tables=(dp_table, pso_table),
        headline={
            "attack_success_exact_counts": exact_result.success.estimate,
            "attack_success_dp_eps2": dp_success.get(2.0, 0.0),
        },
    )
