"""E21 — the release-approval gate closes the paper's legal loop.

Everything before this experiment measures; E21 *enforces*.  A
:class:`~repro.compliance.pipeline.CompliancePipeline` re-derives every
claimed protection with the repository's own machinery (empirical DP
verification, ledger recomputation, safe-harbor redaction, reconstruction
replay) and mints content-addressed certificates whose verdicts come from
the legal layer's falsifiability gate; a
:class:`~repro.compliance.gate.ComplianceGate` then refuses to let the
query service register any mechanism — or activate any synthetic fallback
— whose exact bits do not hold an approval.

Part A (microdata): three releases of one simulated census face the same
policy.  The eps=1 MWEM release earns a "GDPR singling-out: protected"
approval; the no-noise :class:`~repro.synth.independent.
IndependentSynthesizer` release is denied (its own spec admits ``dp=False``
— Legal Theorem 2.1 says the syntactic route fails to prevent singling
out); a raw k=4 Mondrian release is denied against a k>=10 policy with the
measured smallest class in the refutation premise.

Part B (service): a gated :class:`~repro.service.server.QueryServer`
refuses an uncertified Laplace analyst with zero budget/cache/answer
footprint, serves them after the exact spec is certified and approved,
refuses to activate an uncertified synthetic fallback (rolling the charge
back), activates it once the operator certifies the exact bits the server
will synthesize (synthesis is seed-deterministic), and refuses the exact
(no-DP) mechanism outright.
"""

from __future__ import annotations

import numpy as np

from repro.anonymity import MondrianAnonymizer
from repro.compliance import (
    ComplianceDenied,
    ComplianceGate,
    CompliancePipeline,
    CompositionPolicyVerifier,
    DpClaimVerifier,
    KAnonymityClaimVerifier,
    Policy,
    ReconstructionResistanceVerifier,
    SafeHarborVerifier,
)
from repro.data.censusblocks import CensusConfig, generate_census
from repro.experiments.runner import ExperimentResult, register
from repro.privacy.accounting import BasicAccountant, PrivacyAccountant
from repro.queries.mechanism import ExactAnswerer, LaplaceAnswerer
from repro.queries.workload import Workload
from repro.service.server import QueryServer, SyntheticFallback
from repro.synth import (
    CellDomain,
    IndependentSynthesizer,
    MWEMSynthesizer,
    synthesize_binary,
)
from repro.utils.plots import ascii_chart
from repro.utils.rng import derive_rng
from repro.utils.tables import Table

#: The attributes every microdata release publishes (census order).
_ATTRIBUTES = ("block", "sex", "age", "race", "ethnicity")

#: Classification the microdata policy enforces: direct identifiers must be
#: absent.  The census schema publishes none of them, so a release fails
#: only if it smuggles one back in.
_CLASSIFICATION = (
    ("name", "names"),
    ("phone", "telephone-numbers"),
    ("ssn", "social-security-numbers"),
)


def _failing_names(certificate) -> str:
    return ", ".join(certificate.failing)


@register("E21")
def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Certify three microdata releases and gate a live query service."""
    if quick:
        config = CensusConfig(
            blocks=8, mean_block_size=8, max_block_size=16, age_range=(0, 39)
        )
        num_queries, rounds, dp_trials = 150, 12, 250
        n_service, fallback_rounds = 64, 6
    else:
        config = CensusConfig(
            blocks=16, mean_block_size=12, max_block_size=24, age_range=(0, 59)
        )
        num_queries, rounds, dp_trials = 300, 30, 1200
        n_service, fallback_rounds = 192, 10

    # ---- Part A: one policy, three microdata releases -----------------------
    census = generate_census(config, rng=derive_rng(seed, "e21-census"))
    domain = CellDomain.from_dataset(census, _ATTRIBUTES)
    histogram = domain.encode(census)
    workload = Workload.random(
        domain.size, num_queries, density=0.1, rng=derive_rng(seed, "e21-workload")
    )
    accountant = PrivacyAccountant()

    microdata_policy = Policy(
        name="census-microdata",
        epsilon_cap=2.0,
        k_min=10,
        dp_trials=dp_trials,
        safe_harbor_classification=_CLASSIFICATION,
    )
    dp_pipeline = CompliancePipeline(
        [DpClaimVerifier(), CompositionPolicyVerifier(), SafeHarborVerifier()],
        microdata_policy,
        seed=seed,
    )
    anon_pipeline = CompliancePipeline(
        [KAnonymityClaimVerifier(), DpClaimVerifier()],
        microdata_policy,
        seed=seed,
    )

    mwem_release = MWEMSynthesizer(
        workload, 1.0, rounds=rounds, domain=domain
    ).synthesize(census, accountant=accountant, rng=derive_rng(seed, "e21-mwem"))
    mwem_certificate = dp_pipeline.certify(
        mwem_release, data=histogram, accountant=accountant, subject="mwem-census"
    )

    independent_release = IndependentSynthesizer(
        attributes=("sex", "age", "race", "ethnicity"), group_by=("block",)
    ).synthesize(
        census, accountant=accountant, rng=derive_rng(seed, "e21-independent")
    )
    independent_certificate = dp_pipeline.certify(
        independent_release,
        data=histogram,
        accountant=accountant,
        subject="independent-census",
    )

    mondrian_release = MondrianAnonymizer(k=4).anonymize(census)
    mondrian_certificate = anon_pipeline.certify(
        mondrian_release,
        data=histogram,
        accountant=accountant,
        subject="mondrian-census",
    )

    census_epsilon, _ = accountant.total()
    mwem_dp_check = mwem_certificate.checks[
        [c.identifier for c in mwem_certificate.checks].index("DP-CLAIM")
    ]
    mondrian_kanon = mondrian_certificate.checks[
        [c.identifier for c in mondrian_certificate.checks].index("K-ANON")
    ]

    microdata = Table(
        ["release", "verifiers", "approved", "failing", "certificate"],
        title=(
            f"E21a: one policy ({microdata_policy.name}), three releases of "
            f"an n={len(census)} census"
        ),
    )
    for certificate in (
        mwem_certificate,
        independent_certificate,
        mondrian_certificate,
    ):
        microdata.add_row(
            [
                certificate.subject,
                ", ".join(check.identifier for check in certificate.checks),
                "approved" if certificate.approved else "DENIED",
                _failing_names(certificate) or "-",
                certificate.fingerprint[:12],
            ]
        )

    # ---- Part B: the gate in front of a live query service ------------------
    secret = derive_rng(seed, "e21-secret").integers(0, 2, size=n_service)
    service_policy = Policy(
        name="interactive-service",
        epsilon_cap=50.0,
        dp_trials=dp_trials,
        reconstruction_agreement_max=0.95,
    )
    gate = ComplianceGate(service_policy)
    fallback = SyntheticFallback(
        epsilon=1.0, rounds=fallback_rounds, num_queries=2 * n_service
    )
    epsilon_per_query = 0.5
    service_accountant = BasicAccountant(per_analyst_epsilon=3.0)
    server = QueryServer(
        secret,
        "laplace",
        {"epsilon_per_query": epsilon_per_query},
        accountant=service_accountant,
        seed=seed,
        synthetic_fallback=fallback,
        compliance=gate,
    )
    events = Table(
        ["event", "outcome", "eps spent", "audit records"],
        title="E21b: compliance gate on the live query service",
    )

    def note(event: str, outcome: str) -> None:
        events.add_row(
            [
                event,
                outcome,
                f"{service_accountant.global_spent():g}",
                len(server.audit_log),
            ]
        )

    # 1. Uncertified analyst: typed refusal, zero footprint.
    try:
        server.session("analyst-a")
        denial_reason = "(served!)"
    except ComplianceDenied as denied:
        denial_reason = denied.reason
    denial_footprint_records = len(server.audit_log)
    denial_footprint_epsilon = service_accountant.global_spent()
    note("uncertified laplace session", f"ComplianceDenied: {denial_reason}")

    # 2. Certify the exact spec the server charges; approval admits the
    # analyst (same spend, same kernel => same content fingerprint).
    laplace_spec = LaplaceAnswerer(secret, epsilon_per_query).spec
    spec_pipeline = CompliancePipeline(
        [DpClaimVerifier(), CompositionPolicyVerifier()], service_policy, seed=seed
    )
    spec_certificate = spec_pipeline.certify(
        laplace_spec,
        data=secret,
        accountant=service_accountant,
        subject="mechanism-spec",
    )
    gate.approve(spec_certificate, laplace_spec)
    session = server.session("analyst-a")
    probes = list(Workload.random(n_service, 6, rng=derive_rng(seed, "e21-probes")))
    interactive_answers = [session.ask(query) for query in probes]
    interactive_epsilon = session.epsilon_spent
    note("approved laplace session", f"{len(interactive_answers)} answers served")

    # 3. Budget exhausted, but the fallback release is not certified yet:
    # activation is refused and the one-time charge rolled back.
    spend_before = service_accountant.global_spent()
    overflow = Workload.random(
        n_service, 1, rng=derive_rng(seed, "e21-overflow")
    ).query(0)
    try:
        session.ask(overflow)
        fallback_denied = False
    except ComplianceDenied as denied:
        fallback_denied = denied.reason == "no-certificate"
    fallback_refunded = service_accountant.global_spent() == spend_before
    note(
        "uncertified synthetic fallback",
        "ComplianceDenied: no-certificate (charge rolled back)"
        if fallback_denied and fallback_refunded
        else "(activated!)",
    )

    # 4. Synthesis is seed-deterministic, so the operator certifies the
    # exact bits the server will produce — out of band, before activation.
    expected_release = synthesize_binary(
        secret,
        fallback.epsilon,
        fallback.rounds,
        num_queries=fallback.num_queries,
        density=fallback.density,
        rng=derive_rng(seed, "service", fallback.account),
    )
    fallback_pipeline = CompliancePipeline(
        [DpClaimVerifier(), ReconstructionResistanceVerifier()],
        service_policy,
        seed=seed,
    )
    fallback_certificate = fallback_pipeline.certify(
        expected_release, data=secret, subject="synthetic-fallback"
    )
    gate.approve(fallback_certificate, expected_release)
    fallback_answer = session.ask(overflow)
    fallback_activated = server.fallback_release is not None
    fallback_matches = fallback_answer == float(
        expected_release.answer(overflow.mask)
    )
    recon_check = fallback_certificate.checks[
        [c.identifier for c in fallback_certificate.checks].index("RECON")
    ]
    note("certified synthetic fallback", "activated; answers match certified bits")

    # 5. The exact mechanism never gets in: its own spec says dp=False.
    exact_certificate = spec_pipeline.certify(
        ExactAnswerer(secret).spec,
        data=secret,
        accountant=service_accountant,
        subject="exact-spec",
    )
    try:
        gate.approve(exact_certificate, ExactAnswerer(secret).spec)
        exact_denied = False
    except ComplianceDenied as denied:
        exact_denied = denied.reason == "denied-certificate"
    note("exact mechanism approval", "ComplianceDenied: denied-certificate")

    figure = ascii_chart(
        list(range(1, len(expected_release.error_trace) + 1)),
        [float(error) for error in expected_release.error_trace],
        title="E21: MWEM fit of the certified fallback release",
        x_label="round",
        y_label="workload error",
    )

    return ExperimentResult(
        experiment_id="E21",
        title="Release approval: legal theorems as machine-checked certificates",
        paper_claim=(
            "The paper's legal theorems can run as an enforcement gate: a "
            "DP release earns a singling-out-protection certificate, "
            "syntactic and no-noise releases are denied with the refuting "
            "measurement in the verdict, and an uncertified mechanism "
            "never touches the private data"
        ),
        tables=(microdata, events),
        headline={
            "mwem_approved": mwem_certificate.approved,
            "mwem_max_log_ratio": float(
                mwem_dp_check.measurements["max_observed_log_ratio"]
            ),
            "mwem_certificate": mwem_certificate.fingerprint,
            "independent_denied": not independent_certificate.approved,
            "independent_failing": _failing_names(independent_certificate),
            "mondrian_denied": not mondrian_certificate.approved,
            "mondrian_failing": _failing_names(mondrian_certificate),
            "mondrian_achieved_k": int(
                mondrian_kanon.measurements.get("achieved_k", 0)
            ),
            "census_epsilon_charged": float(census_epsilon),
            "service_denied_reason": denial_reason,
            "denial_footprint_records": denial_footprint_records,
            "denial_footprint_epsilon": float(denial_footprint_epsilon),
            "interactive_answers": len(interactive_answers),
            "interactive_epsilon": float(interactive_epsilon),
            "fallback_denied_before_approval": fallback_denied,
            "fallback_refunded": fallback_refunded,
            "fallback_activated": fallback_activated,
            "fallback_answer_matches": fallback_matches,
            "fallback_agreement": float(recon_check.measurements["agreement"]),
            "exact_denied": exact_denied,
            "denials_logged": len(server.audit_log.denials),
            "certificates_logged": len(server.audit_log.certificates),
            "gate_approvals": gate.approved_count,
        },
        figures=(figure,),
    )
