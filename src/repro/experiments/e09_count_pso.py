"""E9 — Theorems 2.5 and 2.6: counts are PSO-secure, and stay so processed.

The counting mechanism ``M#q`` is *not* differentially private (it is
exact), yet it prevents predicate singling out; and post-processing its
output cannot break that.  We play the PSO game against both, with the
trivial attacker at each weight preset, and contrast with the identity
mechanism (raw-data release) where the game must report ~100% success —
demonstrating the game detects insecurity when it exists.
"""

from __future__ import annotations

from repro.core.attackers import CountExploitingAttacker, IdentityAttacker, TrivialAttacker
from repro.core.leftover_hash import hash_bit_predicate
from repro.core.mechanisms import CountMechanism, IdentityMechanism, PostProcessedMechanism
from repro.core.pso import PSOGame
from repro.data.distributions import uniform_bits_distribution
from repro.experiments.runner import ExperimentResult, register
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


@register("E9")
def run(seed: int = 0, quick: bool = False, jobs: int = 1) -> ExperimentResult:
    """PSO game outcomes for count mechanisms and their post-processings."""
    n = 200
    width = 64
    trials = 60 if quick else 250
    distribution = uniform_bits_distribution(width)

    count = CountMechanism(hash_bit_predicate("e9-q", 0))
    parity = PostProcessedMechanism(count, lambda c: c % 2, label="parity")
    identity = IdentityMechanism()

    table = Table(
        ["mechanism", "adversary", "PSO success", "isolation rate", "weight-ok rate"],
        title=f"E9: PSO security of counts (n={n}, {trials} trials)",
    )
    count_worst_success = 0.0
    identity_success = 0.0
    configurations = [
        (count, TrivialAttacker("negligible")),
        (count, TrivialAttacker("optimal")),
        (count, CountExploitingAttacker("negligible")),
        (parity, TrivialAttacker("negligible")),
        (identity, IdentityAttacker()),
    ]
    for mechanism, adversary in configurations:
        game = PSOGame(distribution, n, mechanism, adversary)
        result = game.run(
            trials, derive_rng(seed, "e9", mechanism.name, adversary.name), jobs=jobs
        )
        table.add_row(
            [
                mechanism.name,
                adversary.name,
                str(result.success),
                result.isolation_rate.estimate,
                result.negligible_weight_rate.estimate,
            ]
        )
        if mechanism is identity:
            identity_success = result.success.estimate
        else:
            count_worst_success = max(count_worst_success, result.success.estimate)

    return ExperimentResult(
        experiment_id="E9",
        title="PSO security of the counting mechanism",
        paper_claim=(
            "M#q prevents predicate singling out (Theorem 2.5), and so does "
            "any post-processing f(M#q(x)) (Theorem 2.6), although M#q is not "
            "differentially private"
        ),
        tables=(table,),
        headline={
            "count_mechanisms_worst_success": count_worst_success,
            "identity_mechanism_success": identity_success,
        },
    )
