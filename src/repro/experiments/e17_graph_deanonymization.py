"""E17 — social-graph re-identification (Backstrom-Dwork-Kleinberg [10]).

The paper's Section 1: "[10] extended re-identification to the setting of
social graphs".  Two measurements on identity-stripped releases of a
preferential-attachment network:

* **passive** — the fraction of members whose (degree, neighbor-degrees)
  signature is already unique: the graph analogue of E4's quasi-identifier
  uniqueness;
* **active** — the sybil attack's recovery rate as the number of planted
  sybils ``k`` sweeps through the ``Theta(log n)`` threshold: below it the
  random internal pattern is ambiguous and the attack locates nothing;
  above it, location succeeds and every befriended target is re-identified.
"""

from __future__ import annotations

from repro.attacks.graph import active_attack, degree_signature_uniqueness
from repro.data.socialgraph import SocialGraphConfig, generate_social_graph
from repro.experiments.runner import ExperimentResult, register
from repro.utils.rng import derive_rng
from repro.utils.stats import estimate_proportion
from repro.utils.tables import Table


@register("E17")
def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Passive uniqueness plus the active sybil attack's k-sweep."""
    nodes = 400 if quick else 1_000
    trials = 8 if quick else 25
    graph = generate_social_graph(
        SocialGraphConfig(nodes=nodes), derive_rng(seed, "e17-graph")
    )

    passive_table = Table(
        ["n", "mean degree", "unique by (degree, neighbor degrees)"],
        title="E17a: passive structural uniqueness",
    )
    passive = degree_signature_uniqueness(graph)
    mean_degree = 2 * graph.number_of_edges() / graph.number_of_nodes()
    passive_table.add_row([nodes, mean_degree, passive])

    rng = derive_rng(seed, "e17-targets")
    targets = [int(t) for t in rng.choice(nodes, size=6, replace=False)]
    active_table = Table(
        ["sybils k", "pattern located", "targets re-identified"],
        title=f"E17b: the active sybil attack (n={nodes}, log2(n)~"
        f"{nodes.bit_length() - 1}, {trials} trials x {len(targets)} targets)",
    )
    recovery_by_k = {}
    ks = [4, 10] if quick else [4, 5, 7, 10, 12]
    for k in ks:
        located = recovered = 0
        for trial in range(trials):
            result = active_attack(
                graph, targets, num_sybils=k, rng=derive_rng(seed, "e17", k, trial)
            )
            located += int(result.located)
            recovered += result.reidentified
        located_rate = estimate_proportion(located, trials)
        recovery = estimate_proportion(recovered, trials * len(targets))
        active_table.add_row([k, str(located_rate), str(recovery)])
        recovery_by_k[k] = recovery.estimate

    return ExperimentResult(
        experiment_id="E17",
        title="Social-graph re-identification",
        paper_claim=(
            "re-identification extends to social graphs: structure alone "
            "identifies members, and an active attacker who plants "
            "Theta(log n) sybil accounts re-identifies its targets in the "
            "anonymized release (Section 1, citing [10])"
        ),
        tables=(passive_table, active_table),
        headline={
            "passive_uniqueness": passive,
            "recovery_below_threshold": recovery_by_k[min(recovery_by_k)],
            "recovery_above_threshold": recovery_by_k[max(recovery_by_k)],
        },
    )
