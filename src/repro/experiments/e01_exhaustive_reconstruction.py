"""E1 — Theorem 1.1(i): exhaustive reconstruction with noise alpha = c*n.

All ``2^n - 1`` subset queries are asked, answers carry worst-case error
``alpha = c * n``, and any consistent candidate is within Hamming distance
``4 * alpha`` of the truth.  We sweep ``c`` and verify that the measured
disagreement stays below the theoretical ``4c`` fraction (and that small
``c`` gives the paper's "agrees on all but at most 5%" regime).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import ExperimentResult, register
from repro.queries.mechanism import BoundedNoiseAnswerer
from repro.reconstruction.dinur_nissim import exhaustive_reconstruction
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


@register("E1")
def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Sweep (n, c) and report reconstruction agreement vs the 4c bound.

    The ``2^n - 1`` subset queries go through the batched
    ``answer_workload`` path (one packed workload, one vectorized noise
    draw) and the candidate scan is the blocked popcount matmul in
    :mod:`repro.reconstruction.dinur_nissim`; the queries column is read
    back from the answerer's own ``queries_answered`` counter, so the
    table doubles as an accounting check on the batched path.
    """
    sizes = [8, 10] if quick else [8, 10, 12, 14]
    error_rates = [0.0, 1.0 / 80.0, 1.0 / 16.0]  # c in alpha = c*n
    repeats = 2 if quick else 5

    table = Table(
        ["n", "c (alpha=c*n)", "alpha", "queries", "candidates", "agreement", "bound 1-4c"],
        title="E1: exhaustive reconstruction (Theorem 1.1(i))",
    )
    worst_agreement = 1.0
    for n in sizes:
        for c in error_rates:
            alpha = c * n
            agreements = []
            queries = 0
            candidates = 0
            for repeat in range(repeats):
                rng = derive_rng(seed, "e1", n, c, repeat)
                data = rng.integers(0, 2, size=n)
                answerer = BoundedNoiseAnswerer(data, alpha=alpha, rng=rng)
                result = exhaustive_reconstruction(answerer)
                agreements.append(result.agreement_with(data))
                queries = answerer.queries_answered
                if queries != result.queries_used:
                    raise RuntimeError("batched path miscounted queries_answered")
                candidates = max(candidates, result.candidates_checked)
            agreement = float(np.mean(agreements))
            bound = max(0.0, 1.0 - 4.0 * c)
            table.add_row(
                [n, f"{c:.4f}", f"{alpha:.2f}", queries, candidates, agreement, bound]
            )
            if c <= 1.0 / 80.0:
                worst_agreement = min(worst_agreement, agreement)

    return ExperimentResult(
        experiment_id="E1",
        title="Exhaustive Dinur-Nissim reconstruction",
        paper_claim=(
            "reconstruction is possible when alpha = c*n and the attacker asks "
            "all 2^n subset queries (Theorem 1.1(i)); blatant non-privacy means "
            ">= 95% agreement"
        ),
        tables=(table,),
        headline={"min_agreement_at_small_c": worst_agreement},
    )
