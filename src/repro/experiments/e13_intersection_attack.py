"""E13 — k-anonymity is not closed under composition [23].

Two curators hold overlapping cohorts of the same population (the paper's
"two or more k-anonymized datasets derived from the same (or similar)
collection").  Each publishes an independently k-anonymized release —
different anonymizers, so different partitions.  For individuals in the
overlap, intersecting the two releases' candidate sensitive-value sets
discloses the sensitive value far more often than either release alone;
differential privacy, by contrast, composes gracefully (Section 1.1) —
its failure mode is a quantified budget increase, not a cliff.
"""

from __future__ import annotations

from repro.anonymity.mondrian import MondrianAnonymizer
from repro.attacks.intersection import intersection_attack
from repro.data.dataset import Dataset
from repro.data.population import (
    QUASI_IDENTIFIERS,
    PopulationConfig,
    generate_population,
    gic_release,
)
from repro.experiments.runner import ExperimentResult, register
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


@register("E13")
def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Composition disclosure rates across k, against the single-release baseline."""
    size = 600 if quick else 2_000
    config = PopulationConfig(size=size, zip_count=30)
    rng = derive_rng(seed, "e13")
    population = gic_release(generate_population(config, rng))

    # Two overlapping cohorts: A takes the first 75%, B the last 75%.
    cut = size // 4
    cohort_a = Dataset(population.schema, population.rows[: 3 * size // 4], validate=False)
    cohort_b = Dataset(population.schema, population.rows[cut:], validate=False)
    overlap = Dataset(
        population.schema, population.rows[cut : 3 * size // 4], validate=False
    )

    table = Table(
        [
            "k",
            "disclosed by release A alone",
            "disclosed by release B alone",
            "disclosed by composition",
            "accuracy",
        ],
        title=f"E13: intersection attack on two k-anonymized releases "
        f"({len(overlap)} overlap victims)",
    )
    ks = [4] if quick else [3, 4, 6, 10]
    best_gain = 0.0
    headline_combined = 0.0
    for k in ks:
        # Both curators run the same (information-optimizing) anonymizer;
        # their different cohorts already induce different partitions, which
        # is all the intersection needs.
        release_a = MondrianAnonymizer(k=k, quasi_identifiers=QUASI_IDENTIFIERS).anonymize(
            cohort_a
        )
        release_b = MondrianAnonymizer(k=k, quasi_identifiers=QUASI_IDENTIFIERS).anonymize(
            cohort_b
        )
        result = intersection_attack(
            overlap, release_a, release_b, sensitive="disease",
            quasi_identifiers=QUASI_IDENTIFIERS,
        )
        table.add_row(
            [
                k,
                result.disclosed_a / result.victims,
                result.disclosed_b / result.victims,
                result.combined_rate,
                result.accuracy,
            ]
        )
        best_gain = max(best_gain, result.combined_rate - result.single_release_rate)
        if k == 4:
            headline_combined = result.combined_rate

    return ExperimentResult(
        experiment_id="E13",
        title="k-anonymity fails under composition",
        paper_claim=(
            "the combination of two or more k-anonymized datasets derived from "
            "the same collection of personal information allows for uniquely "
            "identifying individuals in the data (Section 1.1, citing [12, 23])"
        ),
        tables=(table,),
        headline={
            "combined_disclosure_at_k4": headline_combined,
            "max_gain_over_single_release": best_gain,
        },
    )
