"""E14 — unintended memorization and the secret sharer (Carlini [11]).

Plant a canary ("my social security number is 1234") in the training corpus
of a character n-gram model; measure extraction (greedy auto-complete) and
exposure (likelihood rank among all same-format secrets).  Then train the
same model with differentially private (noisy-clamped) counts and watch the
memorization disappear — at a measurable utility cost (held-out
perplexity).

The n-gram substrate memorizes even a single canary occurrence (count
tables have no implicit regularization), so the interesting axis here is
the defense sweep, mirroring the paper's framing of DP as the principled
remedy to memorization-style leaks.
"""

from __future__ import annotations

from repro.attacks.extraction import secret_sharer_experiment
from repro.experiments.runner import ExperimentResult, register
from repro.lm.ngram import NgramLanguageModel, synthetic_corpus
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


@register("E14")
def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Memorization vs insertions, and the DP-training defense sweep."""
    corpus_documents = 200 if quick else 500

    insertion_table = Table(
        ["canary insertions", "extracted", "exposure (bits)", "max bits"],
        title="E14a: memorization vs canary insertions (no defense)",
    )
    exposure_at_zero = None
    exposure_at_four = None
    for insertions in (0, 1, 2, 4):
        result = secret_sharer_experiment(
            insertions,
            corpus_documents=corpus_documents,
            rng=derive_rng(seed, "e14a", insertions),
        )
        insertion_table.add_row(
            [insertions, result.extracted, result.exposure_bits, result.max_exposure_bits]
        )
        if insertions == 0:
            exposure_at_zero = result.exposure_bits
        if insertions == 4:
            exposure_at_four = result.exposure_bits

    # The defense sweep: same attack, DP-trained model, with held-out
    # perplexity as the utility cost.
    held_out = synthetic_corpus(40, rng=derive_rng(seed, "e14-heldout"))
    defense_table = Table(
        [
            "training",
            "extracted",
            "exposure (bits)",
            "held-out perplexity",
        ],
        title="E14b: DP training vs memorization (canary inserted 8x)",
    )
    dp_exposure = {}
    for label, epsilon in (("non-private", None), ("eps=1.0/count", 1.0),
                           ("eps=0.2/count", 0.2), ("eps=0.05/count", 0.05)):
        result = secret_sharer_experiment(
            8,
            corpus_documents=corpus_documents,
            dp_epsilon_per_count=epsilon,
            rng=derive_rng(seed, "e14b", label),
        )
        # Retrain an identically-configured model on canary-free text to
        # measure utility without the canary skewing perplexity.
        model = NgramLanguageModel(order=6)
        model.fit(
            synthetic_corpus(corpus_documents, rng=derive_rng(seed, "e14b-corpus", label)),
            dp_epsilon_per_count=epsilon,
            rng=derive_rng(seed, "e14b-noise", label),
        )
        perplexity = sum(model.perplexity(t) for t in held_out) / len(held_out)
        defense_table.add_row(
            [label, result.extracted, result.exposure_bits, perplexity]
        )
        dp_exposure[label] = result.exposure_bits

    return ExperimentResult(
        experiment_id="E14",
        title="Unintended memorization (secret sharer)",
        paper_claim=(
            "inadvertent memorization of training data can reveal secret "
            "personal information, such as an SSN exposed as an auto-complete "
            "(Section 1, citing Carlini et al. [11])"
        ),
        tables=(insertion_table, defense_table),
        headline={
            "exposure_bits_control": exposure_at_zero,
            "exposure_bits_4_insertions": exposure_at_four,
            "exposure_bits_dp_eps005": dp_exposure["eps=0.05/count"],
        },
    )
