"""E15 — membership inference against ML models (Shokri [40]).

Two sweeps on the logistic-regression substrate:

* **overfitting axis** — the attack's AUC/advantage against training-set
  size: small training sets overfit and leak, large ones generalize and
  don't (the mechanism behind [40]'s results);
* **defense axis** — DP-SGD noise vs attack AUC vs the epsilon report:
  membership advantage decays as the privacy budget tightens, the
  quantitative face of Theorem 2.9's qualitative promise.
"""

from __future__ import annotations

from repro.attacks.ml_membership import ml_membership_experiment
from repro.experiments.runner import ExperimentResult, register
from repro.ml import DpSgdConfig
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


@register("E15")
def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Membership AUC across overfitting and DP-noise sweeps."""
    repeats = 2 if quick else 6

    def averaged(train_size: int, dp: DpSgdConfig | None, tag: str):
        results = [
            ml_membership_experiment(
                train_size=train_size,
                dp=dp,
                rng=derive_rng(seed, "e15", tag, repeat),
            )
            for repeat in range(repeats)
        ]
        mean = lambda key: sum(getattr(r, key) for r in results) / len(results)
        return (
            mean("auc"),
            mean("advantage"),
            mean("generalization_gap"),
            results[0].epsilon,
        )

    overfit_table = Table(
        ["train size", "attack AUC", "advantage", "generalization gap"],
        title="E15a: membership inference vs overfitting (no defense)",
    )
    auc_small = auc_large = 0.5
    sizes = [50, 400] if quick else [30, 50, 100, 400, 1000]
    for train_size in sizes:
        auc, advantage, gap, _eps = averaged(train_size, None, f"size{train_size}")
        overfit_table.add_row([train_size, auc, advantage, gap])
        if train_size == sizes[0]:
            auc_small = auc
        if train_size == sizes[-1]:
            auc_large = auc

    defense_table = Table(
        ["training", "reported eps", "attack AUC", "advantage", "generalization gap"],
        title="E15b: DP-SGD vs the attack (train size 50)",
    )
    auc_dp_strong = 0.5
    noise_levels = [(None, "non-private")] + [
        (DpSgdConfig(noise_multiplier=nm), f"DP-SGD sigma={nm}")
        for nm in ((30.0,) if quick else (10.0, 30.0, 80.0))
    ]
    for dp, label in noise_levels:
        auc, advantage, gap, eps = averaged(50, dp, label)
        defense_table.add_row(
            [label, "-" if eps is None else eps, auc, advantage, gap]
        )
        if dp is not None:
            auc_dp_strong = auc  # last (strongest) noise level

    return ExperimentResult(
        experiment_id="E15",
        title="Membership inference against ML models",
        paper_claim=(
            "membership attacks against machine learning models allow to infer "
            "whether a person's data was included in the training set "
            "(Section 1, citing Shokri et al. [40])"
        ),
        tables=(overfit_table, defense_table),
        headline={
            "auc_overfit": auc_small,
            "auc_generalizing": auc_large,
            "auc_dp_strongest": auc_dp_strong,
        },
    )
