"""E2 — Theorem 1.1(ii): LP reconstruction from polynomially many queries.

``m = 8n`` random subset queries with worst-case error ``alpha =
c' * sqrt(n)``; LP decoding recovers all but o(n) entries.  We sweep ``n``
and ``c'`` and verify the 95%-agreement (blatant non-privacy) regime at
moderate ``c'``.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import ExperimentResult, register
from repro.queries.mechanism import BoundedNoiseAnswerer
from repro.queries.workload import Workload
from repro.reconstruction.lp_decode import reconstruct_from_answers
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


@register("E2")
def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Sweep (n, c') and report LP-decoding agreement.

    One random workload is built per ``n`` and reused across the whole
    (c', repeat) sweep: the answerers batch-answer it in one vectorized
    pass, and the LP decoder reuses the workload's cached sparse assembly
    for every solve.
    """
    sizes = [64, 128] if quick else [64, 128, 256, 512]
    noise_coefficients = [0.25, 0.5, 1.0]  # c' in alpha = c' * sqrt(n)
    repeats = 1 if quick else 3
    queries_per_n = 8

    table = Table(
        ["n", "c' (alpha=c'*sqrt(n))", "alpha", "queries", "agreement"],
        title="E2: LP-decoding reconstruction (Theorem 1.1(ii))",
    )
    agreement_at_half = 1.0
    for n in sizes:
        workload = Workload.random(
            n, queries_per_n * n, rng=derive_rng(seed, "e2-workload", n)
        )
        for coefficient in noise_coefficients:
            alpha = coefficient * np.sqrt(n)
            agreements = []
            for repeat in range(repeats):
                rng = derive_rng(seed, "e2", n, coefficient, repeat)
                data = rng.integers(0, 2, size=n)
                answerer = BoundedNoiseAnswerer(data, alpha=alpha, rng=rng)
                answers = answerer.answer_workload(workload)
                result = reconstruct_from_answers(workload, answers, alpha=alpha)
                agreements.append(result.agreement_with(data))
            agreement = float(np.mean(agreements))
            table.add_row(
                [n, coefficient, f"{alpha:.2f}", len(workload), agreement]
            )
            if coefficient == 0.5:
                agreement_at_half = min(agreement_at_half, agreement)

    return ExperimentResult(
        experiment_id="E2",
        title="Polynomial-time LP reconstruction",
        paper_claim=(
            "reconstruction is possible when alpha = c'*sqrt(n) and the "
            "attacker asks polynomially many queries (Theorem 1.1(ii))"
        ),
        tables=(table,),
        headline={"min_agreement_at_c_half": agreement_at_half},
    )
