"""E16 — membership inference on aggregate genomic data (Homer [26]).

The published artifact is only the case cohort's per-SNP allele
frequencies, yet Homer's statistic decides membership almost perfectly
when enough SNPs are published.  Three sweeps: number of SNPs (the attack
signal grows as sqrt(#SNPs)), cohort size (larger cohorts dilute each
member's trace), and per-SNP Laplace noise (the defense that led funding
agencies to pull aggregate GWAS data after [26]).
"""

from __future__ import annotations

from repro.attacks.membership import membership_experiment
from repro.data.genomes import GenomePanel, GenomePanelConfig
from repro.experiments.runner import ExperimentResult, register
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


@register("E16")
def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Homer-attack AUC across SNP count, cohort size, and noise sweeps."""
    cohort = 200

    snp_table = Table(
        ["SNPs published", "attack AUC", "advantage (TPR-FPR at D>0)"],
        title=f"E16a: membership signal vs panel width (cohort {cohort})",
    )
    snp_counts = [500, 5_000] if quick else [100, 500, 2_000, 10_000]
    auc_by_snps = {}
    for snps in snp_counts:
        panel = GenomePanel.generate(GenomePanelConfig(snps=snps), derive_rng(seed, "e16a", snps))
        result = membership_experiment(
            panel, cohort_size=cohort, rng=derive_rng(seed, "e16a-run", snps)
        )
        snp_table.add_row([snps, result.auc, result.advantage])
        auc_by_snps[snps] = result.auc

    cohort_table = Table(
        ["cohort size", "attack AUC"],
        title="E16b: dilution — larger cohorts leak less per member",
    )
    panel = GenomePanel.generate(GenomePanelConfig(snps=2_000), derive_rng(seed, "e16b-panel"))
    for size in ([100, 800] if quick else [50, 200, 800, 3_200]):
        result = membership_experiment(
            panel, cohort_size=size, test_members=min(50, size),
            rng=derive_rng(seed, "e16b", size),
        )
        cohort_table.add_row([size, result.auc])

    noise_table = Table(
        ["per-SNP Laplace noise scale", "attack AUC", "advantage"],
        title=f"E16c: noisy aggregate release (cohort {cohort}, 2000 SNPs)",
    )
    auc_noisy = 1.0
    for noise in (0.0, 0.02, 0.05, 0.2):
        result = membership_experiment(
            panel, cohort_size=cohort, noise_scale=noise,
            rng=derive_rng(seed, "e16c", noise),
        )
        noise_table.add_row([noise, result.auc, result.advantage])
        if noise == 0.2:
            auc_noisy = result.auc

    return ExperimentResult(
        experiment_id="E16",
        title="Membership inference on aggregate genomic data",
        paper_claim=(
            "membership attacks on aggregate genomic data allow to infer "
            "whether a person's data was included in the aggregate "
            "(Section 1, citing Homer et al. [26])"
        ),
        tables=(snp_table, cohort_table, noise_table),
        headline={
            "auc_wide_panel": auc_by_snps[max(auc_by_snps)],
            "auc_noisy_release": auc_noisy,
        },
    )
