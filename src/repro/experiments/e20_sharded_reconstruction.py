"""E20 — census-scale reconstruction through the sharded pipeline.

The 2010 Census reconstruction inverted tables for ~6 million blocks, not
one national system: the published tables never couple variables across
blocks, so the attack decomposes into millions of independent small solves
[24].  E20 stages that regime for the abstract subset-query attack at a
census-like scale — a population of 10^6 bits split into 32-person blocks,
each block answering its own random subset workload with bounded noise —
and runs the full :class:`~repro.reconstruction.sharding.ShardedReconstructor`
pipeline end to end:

1. block structure is *discovered* from the query support (connected
   components of the query-position graph), not assumed;
2. every block decodes on the first-order l2 fast path, batched across
   equal-shape shards;
3. blocks whose rounded candidate fails the feasibility certificate
   escalate — individually — to the LP decoder, warm-started with the l2
   fractional iterate.

The headline is the attacker's throughput: reconstructed records per
second at >= 0.95 agreement.  A side probe re-runs a small population with
``jobs=1`` and ``jobs=2`` and checks the joined bits are identical —
the determinism contract that makes the pipeline auditable.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse

from repro.experiments.runner import ExperimentResult, register
from repro.queries.workload import Workload
from repro.reconstruction.sharding import BlockPartition, ShardedReconstructor
from repro.utils.rng import derive_rng
from repro.utils.tables import Table

#: Persons per census block.
BLOCK_SIZE = 32

#: Queries served per block (3x the block size: comfortably decodable).
QUERIES_PER_BLOCK = 96

#: Worst-case answer noise: each count is off by at most 1.
NOISE_BOUND = 1.0


def build_population(
    num_blocks: int, rng: np.random.Generator
) -> tuple[Workload, np.ndarray, np.ndarray]:
    """A multi-block population, its block-diagonal workload, noisy answers.

    The workload is assembled directly as one global CSR matrix (never a
    dense mask matrix): block ``p`` contributes rows ``p*m .. p*m+m-1``
    over columns ``p*b .. p*b+b-1`` only.  Answers carry independent
    uniform noise in ``{-1, 0, +1}`` — bounded by :data:`NOISE_BOUND`,
    which is the certificate the decoder tests against.
    """
    b, m = BLOCK_SIZE, QUERIES_PER_BLOCK
    masks = rng.random((num_blocks, m, b)) < 0.5
    empty = ~masks.any(axis=2)
    while empty.any():
        masks[empty] = rng.random((int(empty.sum()), b)) < 0.5
        empty = ~masks.any(axis=2)
    block, row, col = np.nonzero(masks)
    matrix = scipy.sparse.csr_matrix(
        (
            np.ones(len(block), dtype=np.float64),
            (block * m + row, block * b + col),
        ),
        shape=(num_blocks * m, num_blocks * b),
    )
    workload = Workload.from_csr(matrix, copy=False)
    data = rng.integers(0, 2, size=num_blocks * b)
    answers = workload.true_answers(data) + rng.integers(
        -1, 2, size=num_blocks * m
    )
    return workload, data, answers.astype(float)


@register("E20")
def run(seed: int = 0, quick: bool = False, jobs: int = 1) -> ExperimentResult:
    """Reconstruct a block-structured population; report records/second."""
    num_blocks = 320 if quick else 31_250  # 10_240 vs 1_000_000 records
    rng = derive_rng(seed, "e20-population")
    workload, data, answers = build_population(num_blocks, rng)
    n = workload.n

    reconstructor = ShardedReconstructor(alpha=NOISE_BOUND)

    discover_start = time.perf_counter()
    partition = BlockPartition.from_workload(workload)
    discover_seconds = time.perf_counter() - discover_start

    decode_start = time.perf_counter()
    result = reconstructor.reconstruct(
        workload, answers, partition=partition, jobs=jobs, seed=seed
    )
    decode_seconds = time.perf_counter() - decode_start
    elapsed = discover_seconds + decode_seconds
    agreement = result.agreement_with(data)

    # Determinism probe at a small scale: the joined bits must be
    # bit-identical whatever the worker count.
    probe_workload, _, probe_answers = build_population(
        64, derive_rng(seed, "e20-probe")
    )
    serial = reconstructor.reconstruct(probe_workload, probe_answers, jobs=1, seed=seed)
    forked = reconstructor.reconstruct(probe_workload, probe_answers, jobs=2, seed=seed)
    jobs_invariant = bool(
        (serial.reconstruction == forked.reconstruction).all()
    )

    pipeline = Table(
        ["stage", "value"],
        title=f"E20: sharded reconstruction of {n:,} records "
        f"({num_blocks:,} blocks of {BLOCK_SIZE})",
    )
    pipeline.add_row(["blocks discovered", partition.num_blocks])
    pipeline.add_row(["unconstrained positions", len(partition.unconstrained)])
    pipeline.add_row(["discovery seconds", f"{discover_seconds:.2f}"])
    pipeline.add_row(["decode seconds", f"{decode_seconds:.2f}"])
    pipeline.add_row(["records / second", f"{n / elapsed:,.0f}"])
    pipeline.add_row(
        ["shards certified by l2", f"{result.certified}/{result.blocks}"]
    )
    pipeline.add_row(["shards escalated to LP", result.escalated])
    pipeline.add_row(["agreement", f"{agreement:.4f}"])
    pipeline.add_row(["jobs=1 == jobs=2 (probe)", jobs_invariant])

    return ExperimentResult(
        experiment_id="E20",
        title="Census-scale sharded reconstruction (l2 fast path + LP escalation)",
        paper_claim=(
            "The census reconstruction attack scales because tables are "
            "tabulated per block [24]: the national problem decomposes into "
            "millions of independent small inversions, each individually easy"
        ),
        tables=(pipeline,),
        headline={
            "population": n,
            "blocks": partition.num_blocks,
            "agreement": agreement,
            "records_per_second": n / elapsed,
            "certified_fraction": result.certified / result.blocks,
            "escalated_shards": result.escalated,
            "jobs_invariant": jobs_invariant,
        },
    )
