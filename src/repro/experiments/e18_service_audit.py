"""E18 — the query service catches an LP-reconstruction attacker online.

"Linear Program Reconstruction in Practice" [13] ran the Dinur-Nissim LP
attack against a production statistical-query server.  E18 stages that
deployment story end to end against :class:`repro.service.QueryServer`: an
*attacker* session streams random subset workloads (the Theorem 1.1(ii)
workload) through a Laplace mechanism while the server's online
:class:`~repro.service.audit.ReconstructionAuditor` replays the session's
own audit log through LP decoding after every ``n/8`` fresh queries.  The
auditor must trip the attacker's circuit breaker while the replayed
agreement — which *is* the attacker's current reconstruction capability,
since the auditor runs exactly the attacker's computation — is still below
the 0.9 blatant-non-privacy bar.

Two benign sessions run alongside: a *dashboard* analyst who repeats a
small fixed query panel (almost all cache hits, zero marginal privacy
spend) and a *researcher* who asks enough distinct queries to be audited
but far too few to reconstruct.  Neither may be flagged.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from repro.experiments.runner import ExperimentResult, register
from repro.queries.workload import Workload
from repro.service import (
    BasicAccountant,
    CircuitBreakerTripped,
    QueryServer,
    ReconstructionAuditor,
)
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


@register("E18")
def run(
    seed: int = 0,
    quick: bool = False,
    audit_dispatch: str = "inline",
    trace: bool = False,
) -> ExperimentResult:
    """Serve attacker + benign sessions; report the auditor's verdicts.

    ``audit_dispatch="background"`` replays the same deployment through
    :class:`~repro.service.AuditWorkerPool`: verdicts are computed by
    background auditor workers off the serving path, with a flush after
    every workload batch so each pass lands before the next batch's
    compliance check — the trip point, replayed agreements, and every
    headline value are bit-identical to the inline run.  The default stays
    inline so the golden headlines are the single-threaded reference.

    ``trace=True`` wraps each phase of the deployment in
    :class:`~repro.telemetry.SpanRecorder` spans and appends the rendered
    span tree as an extra table — where the experiment's wall-clock time
    went (attack batches vs. audit passes vs. benign traffic).  Span ids
    come from a counter and durations from the monotonic clock, so every
    headline value is bit-identical with tracing on or off.
    """
    n = 128 if quick else 256
    epsilon_per_query = 0.25
    threshold = 0.8
    batch = n // 8
    max_batches = 64

    if trace:
        from repro.telemetry import SpanRecorder

        recorder = SpanRecorder()
    else:
        recorder = None

    def span(name, **annotations):
        if recorder is None:
            return nullcontext()
        return recorder.span(name, **annotations)

    data = derive_rng(seed, "e18-data").integers(0, 2, size=n)
    auditor = ReconstructionAuditor(
        data,
        agreement_threshold=threshold,
        audit_every=n // 8,
        min_queries=n // 4,
        alpha=None,  # Laplace noise is unbounded: replay with least-l1.
        # Screen passes with the first-order decoder; any pass within the
        # margin of the trip bar is re-decided by the exact LP replay, so
        # verdicts (and the agreement at trip) match the pure-LP auditor.
        screen="l2",
        # Each pass starts from the previous pass's solution.  Verdicts are
        # still LP-decided (least-l1 ignores the warm point), and the full
        # headline is bit-identical to cold passes for this seed.
        warm_start_passes=True,
    )
    # Budget generous enough that the auditor, not the ledger, is the
    # binding defense (basic composition would allow ~4x more queries).
    accountant = BasicAccountant(per_analyst_epsilon=4.0 * epsilon_per_query * n)
    server = QueryServer(
        data,
        mechanism="laplace",
        mechanism_params={"epsilon_per_query": epsilon_per_query},
        accountant=accountant,
        auditor=auditor,
        seed=seed,
        audit_dispatch=audit_dispatch,
    )

    # --- attacker: streams fresh random workloads until the breaker opens.
    attacker = server.session("attacker")
    attack_rng = derive_rng(seed, "e18-attack")
    queries_served = 0
    tripped = False
    agreement_at_trip = float("nan")
    with span("e18", n=n, dispatch=audit_dispatch) as root:
        with span("attack"):
            for index in range(max_batches):
                workload = Workload.random(n, batch, rng=attack_rng)
                try:
                    with span("attack_batch", batch=index, queries=len(workload)):
                        attacker.ask_workload(workload)
                        # Under a background dispatch, wait for the pass this
                        # batch may have signalled; the verdict then gates the
                        # next batch exactly where the inline auditor would
                        # have tripped.
                        server.audit_dispatch.flush()
                    queries_served += len(workload)
                except CircuitBreakerTripped as refusal:
                    tripped = True
                    agreement_at_trip = refusal.report.agreement
                    break

        # --- benign dashboard: a fixed 24-query panel, re-asked every round.
        dashboard = server.session("dashboard")
        panel = Workload.random(n, 24, rng=derive_rng(seed, "e18-panel"))
        replay_drift = 0.0
        with span("dashboard", panel=len(panel)):
            first_round = dashboard.ask_workload(panel)
            for _ in range(24):
                replay = dashboard.ask_workload(panel)
                replay_drift = max(
                    replay_drift, float(np.abs(replay - first_round).max())
                )

        # --- benign researcher: distinct queries, enough to be audited.
        researcher = server.session("researcher")
        with span("researcher"):
            researcher.ask_workload(
                Workload.random(
                    n, n // 4 + n // 8, rng=derive_rng(seed, "e18-research")
                )
            )
        # Settle any in-flight background passes before reading verdicts, and
        # retire worker threads; both are no-ops for the inline dispatch.
        with span("drain"):
            server.close()

    trajectory = Table(
        ["unique queries", "replayed agreement", "flagged"],
        title="E18: auditor passes over the attacker's transcript",
    )
    for report in auditor.reports:
        if report.analyst != "attacker":
            continue
        trajectory.add_row(
            [report.unique_queries, f"{report.agreement:.3f}", report.flagged]
        )

    # The per-query rate the server actually charges is read back off the
    # served mechanism's spec — the same object the accountant charged.
    served_epsilon = server.mechanism_spec("attacker").spend.epsilon
    sessions = Table(
        ["analyst", "served", "charged", "epsilon spent", "cache hit rate", "flagged"],
        title=f"E18: sessions on one n={n} Laplace server (eps/query = {served_epsilon})",
    )
    for name in ("attacker", "dashboard", "researcher"):
        session = server.session(name)
        served = len(server.audit_log.records(name))
        sessions.add_row(
            [
                name,
                served,
                session.queries_charged,
                f"{session.epsilon_spent:.2f}",
                f"{session.cache.hit_rate:.3f}",
                auditor.is_tripped(name),
            ]
        )

    tables = [trajectory, sessions]
    if recorder is not None:
        trace_table = Table(
            ["span"], title="E18: where the deployment's wall-clock time went"
        )
        for line in recorder.render(root.trace_id).splitlines():
            trace_table.add_row([line])
        tables.append(trace_table)

    return ExperimentResult(
        experiment_id="E18",
        title="Online reconstruction audit of a statistical-query service",
        paper_claim=(
            "LP reconstruction works against deployed query servers [13]; an "
            "operator watching its own query log can detect the attack "
            "transcript before reconstruction becomes blatant (agreement >= 0.9)"
        ),
        tables=tuple(tables),
        headline={
            "attacker_flagged": tripped,
            "agreement_at_trip": agreement_at_trip,
            "queries_served_before_trip": queries_served,
            "audit_passes": len(auditor.reports),
            "dashboard_flagged": auditor.is_tripped("dashboard"),
            "researcher_flagged": auditor.is_tripped("researcher"),
            "dashboard_cache_hit_rate": server.session("dashboard").cache.hit_rate,
            "dashboard_replay_drift": replay_drift,
            "attacker_epsilon_spent": server.session("attacker").epsilon_spent,
        },
    )
