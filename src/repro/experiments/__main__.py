"""Command-line entry point: run the experiment suite and print reports.

Usage::

    python -m repro.experiments            # all experiments, default scale
    python -m repro.experiments --quick    # reduced scale
    python -m repro.experiments E4 E12     # a subset
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.runner import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's numeric claims (E1-E12).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument("--quick", action="store_true", help="reduced workload")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="write a markdown report to PATH instead of printing",
    )
    args = parser.parse_args(argv)

    ids = args.experiments or sorted(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; known: {sorted(EXPERIMENTS)}")

    if args.report:
        from repro.experiments.report import write_report

        output = write_report(args.report, ids, seed=args.seed, quick=args.quick)
        print(f"report written to {output}")
        return 0

    for experiment_id in ids:
        start = time.perf_counter()
        result = run_experiment(experiment_id, seed=args.seed, quick=args.quick)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
