"""Command-line entry point: run the experiment suite and print reports.

Usage::

    python -m repro.experiments              # all experiments, default scale
    python -m repro.experiments --quick      # reduced scale
    python -m repro.experiments E4 E12       # a subset
    python -m repro.experiments --jobs 4     # fan out across 4 workers
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.runner import (
    EXPERIMENTS,
    registered_ids,
    run_experiment,
    run_experiments,
)


def main(argv: list[str] | None = None) -> int:
    known_ids = registered_ids()
    id_range = f"{known_ids[0]}-{known_ids[-1]}" if known_ids else "none registered"
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=f"Reproduce the paper's numeric claims ({id_range}).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument("--quick", action="store_true", help="reduced workload")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes: fan out experiment ids, or (single id) its "
        "Monte-Carlo trials; -1 = all cores; results match --jobs 1 exactly",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="write a markdown report to PATH instead of printing",
    )
    args = parser.parse_args(argv)

    ids = args.experiments or known_ids
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; known: {known_ids}")

    if args.report:
        from repro.experiments.report import write_report

        output = write_report(
            args.report, ids, seed=args.seed, quick=args.quick, jobs=args.jobs
        )
        print(f"report written to {output}")
        return 0

    if args.jobs != 1 and len(ids) > 1:
        start = time.perf_counter()
        results = run_experiments(ids, seed=args.seed, quick=args.quick, jobs=args.jobs)
        elapsed = time.perf_counter() - start
        for result in results:
            print(result.render())
            print()
        print(f"[{len(ids)} experiments completed in {elapsed:.1f}s, jobs={args.jobs}]")
        return 0

    for experiment_id in ids:
        start = time.perf_counter()
        result = run_experiment(
            experiment_id, seed=args.seed, quick=args.quick, jobs=args.jobs
        )
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
