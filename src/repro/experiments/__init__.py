"""Experiment harness: every numeric claim in the paper, regenerated.

The paper is a keynote without measurement tables, so its "evaluation" is
the set of quantitative claims indexed in DESIGN.md (Section 5), extended
by the later subsystem experiments (E13-E20).
Each module here regenerates one claim end to end — workload, attack,
baseline, and a paper-vs-measured table — and the benchmark suite under
``benchmarks/`` wraps each with pytest-benchmark.

Run everything::

    python -m repro.experiments

or individually::

    from repro.experiments import run_experiment
    print(run_experiment("E4").render())
"""

from repro.experiments.runner import (
    EXPERIMENTS,
    ExperimentResult,
    register,
    run_all_experiments,
    run_experiment,
)

# Importing the modules registers them.
from repro.experiments import (  # noqa: E402,F401  (registration imports)
    e01_exhaustive_reconstruction,
    e02_lp_reconstruction,
    e03_noise_tradeoff,
    e04_sweeney_uniqueness,
    e05_linkage_attack,
    e06_netflix_fingerprint,
    e07_census_reconstruction,
    e08_baseline_isolation,
    e09_count_pso,
    e10_composition_attack,
    e11_dp_pso,
    e12_kanon_pso,
    e13_intersection_attack,
    e14_secret_sharer,
    e15_ml_membership,
    e16_genomic_membership,
    e17_graph_deanonymization,
    e18_service_audit,
    e19_synthetic_release,
    e20_sharded_reconstruction,
    e21_release_approval,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "register",
    "run_all_experiments",
    "run_experiment",
]
