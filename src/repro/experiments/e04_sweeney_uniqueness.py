"""E4 — Sweeney's uniqueness of simple demographics.

"The seemingly innocuous combination of ZIP code, birth date, and sex ...
is unique for a vast majority of the US population."  We measure the
uniqueness of escalating quasi-identifier combinations on the synthetic
population, reproducing the cliff between coarse attributes (nobody unique)
and the full triple (almost everyone unique).
"""

from __future__ import annotations

from repro.attacks.uniqueness import k_anonymity_level, uniqueness_profile
from repro.data.population import PopulationConfig, generate_population
from repro.experiments.runner import ExperimentResult, register
from repro.utils.rng import derive_rng
from repro.utils.tables import Table

#: The escalating QI combinations reported.
QI_LADDER: tuple[tuple[str, ...], ...] = (
    ("sex",),
    ("birth_year", "sex"),
    ("birth_year", "birth_doy", "sex"),
    ("zip", "birth_year", "sex"),
    ("zip", "birth_year", "birth_doy", "sex"),
)


@register("E4")
def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Uniqueness of each QI combination on the synthetic population."""
    config = PopulationConfig(size=2_000 if quick else 20_000, zip_count=100)
    population = generate_population(config, derive_rng(seed, "e4"))

    table = Table(
        ["quasi-identifiers", "unique fraction", "k-anonymity of raw data"],
        title=f"E4: QI uniqueness (population n={config.size})",
    )
    profile = uniqueness_profile(population, QI_LADDER)
    for names in QI_LADDER:
        table.add_row(
            [
                " + ".join(names),
                profile[names],
                k_anonymity_level(population, names),
            ]
        )

    full_triple = profile[("zip", "birth_year", "birth_doy", "sex")]
    return ExperimentResult(
        experiment_id="E4",
        title="Uniqueness of (ZIP, birth date, sex)",
        paper_claim=(
            "the combination of ZIP code, birth date, and sex is unique for a "
            "vast majority of the US population (Sweeney estimated ~87%)"
        ),
        tables=(table,),
        headline={"unique_fraction_full_triple": full_triple},
    )
