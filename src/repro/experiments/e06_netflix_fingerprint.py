"""E6 — Narayanan-Shmatikov de-anonymization of sparse ratings.

"Little partial knowledge about a subscriber's viewings and ratings, when
matched with publicly available movie ratings from [IMDb], can lead to the
exact re-identification of the subscriber."  We sweep how many (noisy)
ratings the adversary knows and report recall/precision of Scoreboard-RH
against the pseudonymized release.
"""

from __future__ import annotations

from repro.attacks.fingerprint import fingerprint_experiment
from repro.data.ratings import RatingsConfig, generate_ratings
from repro.experiments.runner import ExperimentResult, register
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


@register("E6")
def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Recall/precision vs adversary knowledge (number of known ratings)."""
    config = RatingsConfig(
        users=400 if quick else 2_000,
        movies=400 if quick else 1_000,
    )
    data = generate_ratings(config, derive_rng(seed, "e6-data"))
    targets = 25 if quick else 100

    table = Table(
        ["known ratings", "date error (days)", "recall", "precision", "claims"],
        title=f"E6: Netflix-style fingerprinting ({config.users} subscribers)",
    )
    recall_at_8 = 0.0
    for known in (2, 3, 4, 6, 8):
        result = fingerprint_experiment(
            data,
            targets=targets,
            known=known,
            star_error=1,
            day_error=14,
            rng=derive_rng(seed, "e6", known),
        )
        table.add_row([known, 14, result.recall, result.precision, result.claimed])
        if known == 8:
            recall_at_8 = result.recall

    # The paper notes dates are only approximate; show robustness to worse
    # date noise at fixed knowledge.
    noise_table = Table(
        ["known ratings", "date error (days)", "recall", "precision"],
        title="E6b: robustness to date noise",
    )
    for day_error in (3, 14, 60):
        result = fingerprint_experiment(
            data,
            targets=targets,
            known=4,
            star_error=1,
            day_error=day_error,
            rng=derive_rng(seed, "e6b", day_error),
        )
        noise_table.add_row([4, day_error, result.recall, result.precision])

    return ExperimentResult(
        experiment_id="E6",
        title="Sparse-data fingerprinting (Netflix/IMDb)",
        paper_claim=(
            "a few approximately-dated ratings re-identify subscribers exactly "
            "or narrow them to a small candidate set"
        ),
        tables=(table, noise_table),
        headline={"recall_with_8_known_ratings": recall_at_8},
    )
