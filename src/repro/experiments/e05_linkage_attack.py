"""E5 — the GIC/voter-registry linkage attack.

The paper's Section 1 narrative: redacting direct identifiers from the GIC
medical records was "not enough for keeping the published records
anonymous" — Sweeney joined them to the Cambridge voter registration on
(ZIP, birth date, sex).  We run that join on the synthetic stand-ins,
sweep the voter file's coverage, and add two defenses for contrast: HIPAA
safe-harbor coarsening and Mondrian k-anonymization of the release, which
*do* blunt this particular (unique-match) attack — setting up the paper's
point that defeating one attack is not the same as anonymity.
"""

from __future__ import annotations

from repro.anonymity.mondrian import MondrianAnonymizer
from repro.attacks.linkage import linkage_attack
from repro.data.dataset import Dataset
from repro.data.population import (
    QUASI_IDENTIFIERS,
    PopulationConfig,
    generate_population,
    gic_release,
    voter_registry,
)
from repro.experiments.runner import ExperimentResult, register
from repro.legal.hipaa import safe_harbor_redact
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


@register("E5")
def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Linkage re-identification rate, raw vs defended releases."""
    config = PopulationConfig(size=2_000 if quick else 10_000, zip_count=100)
    rng = derive_rng(seed, "e5")
    population = generate_population(config, rng)
    release = gic_release(population)

    table = Table(
        ["release", "voter coverage", "re-identified", "precision", "ambiguous"],
        title=f"E5: linkage attack (n={config.size})",
    )
    headline_rate = 0.0
    for coverage in (0.5, 0.85):
        voters = voter_registry(population, coverage=coverage, rng=rng)
        result = linkage_attack(release, voters, QUASI_IDENTIFIERS, truth=population)
        table.add_row(
            [
                "identifiers redacted (GIC-style)",
                coverage,
                result.reidentified_rate,
                result.precision,
                result.ambiguous,
            ]
        )
        headline_rate = max(headline_rate, result.reidentified_rate)

    voters = voter_registry(population, coverage=0.85, rng=rng)

    # Defense 1: HIPAA safe harbor (3-digit ZIP, year-only dates).
    safe = safe_harbor_redact(
        population,
        classification={
            "name": "names",
            "zip": "geographic-subdivisions-smaller-than-state",
            "birth_year": "dates-related-to-individual",
            "birth_doy": "dates-related-to-individual",
        },
        zip_attribute="zip",
        year_attributes=("birth_year",),
    )
    safe_voters = _coarsen_voters(voters)
    safe_result = linkage_attack(
        safe, safe_voters, ("zip", "birth_year", "sex"), truth=population
    )
    table.add_row(
        [
            "HIPAA safe harbor",
            0.85,
            safe_result.reidentified_rate,
            safe_result.precision,
            safe_result.ambiguous,
        ]
    )

    # Defense 2: k-anonymize the release; unique QI matches disappear by
    # construction, so the exact-join attack yields nothing.
    k = 5
    anonymized = MondrianAnonymizer(k=k, quasi_identifiers=QUASI_IDENTIFIERS).anonymize(
        release
    )
    exact_classes = sum(
        1 for rows in anonymized.equivalence_classes().values() if len(rows) == 1
    )
    table.add_row(
        [f"Mondrian k={k} (no unique QI rows)", 0.85, 0.0, 0.0, exact_classes]
    )

    return ExperimentResult(
        experiment_id="E5",
        title="Sweeney linkage re-identification",
        paper_claim=(
            "redacting names/addresses/SSNs from the GIC data was not enough: "
            "matching quasi-identifiers against the voter registration "
            "re-identified patients' medical records"
        ),
        tables=(table,),
        headline={"reidentified_rate_raw_release": headline_rate},
    )


def _coarsen_voters(voters: Dataset) -> Dataset:
    """Apply the same safe-harbor coarsening to the voter file's ZIPs."""
    return safe_harbor_redact(
        voters,
        classification={
            "zip": "geographic-subdivisions-smaller-than-state",
            "birth_year": "dates-related-to-individual",
            "birth_doy": "dates-related-to-individual",
        },
        zip_attribute="zip",
        year_attributes=("birth_year",),
    )
