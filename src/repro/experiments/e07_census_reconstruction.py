"""E7 — reconstruction of census tables and re-identification.

The paper's headline real-world numbers: the 2010 Decennial reconstruction
recovered exact block/sex/age(+-1)/race/ethnicity records for 71% of the US
population; matching against commercial data re-identified 17%; the
Bureau's prior estimate of re-identification risk was 0.003% — wrong by a
factor of ~4500.

We publish the analogous block-level table system for synthetic blocks,
invert it with the MILP solver, link against a synthetic commercial file,
and contrast with (a) the naive "risk estimate" that ignores reconstruction
and (b) a rounding-based SDC defense.
"""

from __future__ import annotations

from repro.data.censusblocks import CensusConfig, commercial_database, generate_census
from repro.experiments.runner import ExperimentResult, register
from repro.reconstruction.census_solver import reconstruct_census, reidentify
from repro.reconstruction.tabulation import apply_rounding, tabulate_blocks
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


@register("E7")
def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Reconstruction + re-identification rates on synthetic census blocks.

    The experiment runs four full reconstructions (published, rounded, two
    DP releases); each is hundreds of per-block MILP solves that all share
    the one margin-constraint matrix precomputed at import in
    :mod:`repro.reconstruction.census_solver`, so block solves only fill a
    right-hand-side vector.
    """
    config = CensusConfig(blocks=12 if quick else 48, mean_block_size=12)
    rng = derive_rng(seed, "e7")
    census = generate_census(config, rng)
    commercial = commercial_database(census, coverage=0.6, age_error=1, rng=rng)

    tables = tabulate_blocks(census)
    reconstruction = reconstruct_census(tables, truth=census)
    reid = reidentify(reconstruction, commercial, census, age_tolerance=1)

    table = Table(
        ["quantity", "paper (2010 US Census)", "measured (synthetic)"],
        title=f"E7: census reconstruction ({config.blocks} blocks, "
        f"{len(census)} persons)",
    )
    table.add_row(
        ["records reconstructed exactly", "46% (71% with age +-1)", reconstruction.exact_match_fraction]
    )
    table.add_row(["blocks solved", "-", reconstruction.solved_fraction])
    table.add_row(["re-identified via commercial data", "17%", reid.reidentified_rate])
    table.add_row(["putative re-identification rate", "45% (attempted)", reid.putative_rate])
    table.add_row(["precision of claims", "38%", reid.precision])

    # The naive pre-reconstruction risk model: the Bureau assumed published
    # *tables* identify nobody, so its estimate was ~0.003%.  We quote the
    # analogous naive figure: re-identifications achievable from the
    # commercial file alone, with no reconstructed microdata to join to.
    table.add_row(["naive estimate (no reconstruction)", "0.003%", 0.0])

    defense = Table(
        ["tables", "exact reconstruction", "re-identified"],
        title="E7b: legacy rounding vs differential privacy",
    )
    defense.add_row(
        ["as published", reconstruction.exact_match_fraction, reid.reidentified_rate]
    )
    rounded = apply_rounding(tables, base=5)
    rounded_reconstruction = reconstruct_census(rounded, truth=census)
    rounded_reid = reidentify(rounded_reconstruction, commercial, census, age_tolerance=1)
    defense.add_row(
        [
            "rounded (base 5)",
            rounded_reconstruction.exact_match_fraction,
            rounded_reid.reidentified_rate,
        ]
    )
    # The defense that works: per-block DP release of the same tables
    # (what the 2020 Census disclosure-avoidance redesign adopted).
    from repro.dp.tabular import dp_tabulation

    dp_exact = {}
    for epsilon in (4.0, 1.0):
        noisy = dp_tabulation(tables, epsilon, rng=derive_rng(seed, "e7-dp", epsilon))
        noisy_reconstruction = reconstruct_census(noisy, truth=census)
        noisy_reid = reidentify(noisy_reconstruction, commercial, census, age_tolerance=1)
        defense.add_row(
            [
                f"Laplace, eps={epsilon}/block",
                noisy_reconstruction.exact_match_fraction,
                noisy_reid.reidentified_rate,
            ]
        )
        dp_exact[epsilon] = noisy_reconstruction.exact_match_fraction

    return ExperimentResult(
        experiment_id="E7",
        title="Census table reconstruction and re-identification",
        paper_claim=(
            "reconstruction of the 2010 Census tables yielded exact attributes "
            "for 71% of the population (age +-1); commercial matching "
            "re-identified 17%; the prior risk estimate was 0.003%"
        ),
        tables=(table, defense),
        headline={
            "exact_reconstruction_fraction": reconstruction.exact_match_fraction,
            "reidentified_rate": reid.reidentified_rate,
            "exact_reconstruction_dp_eps1": dp_exact[1.0],
        },
    )
