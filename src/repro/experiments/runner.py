"""Experiment registry and result type.

Every experiment module registers a ``run(seed=..., quick=...)`` callable
under its DESIGN.md identifier.  ``quick=True`` shrinks the workload for CI
and pytest-benchmark loops; the default scale is what EXPERIMENTS.md
records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.utils.tables import Table


@dataclass(frozen=True)
class ExperimentResult:
    """One experiment's reproduction outcome.

    Attributes:
        experiment_id: the DESIGN.md identifier (e.g. ``"E4"``).
        title: short human title.
        paper_claim: the claim from the paper, quoted or paraphrased.
        tables: the measured series, as renderable tables.
        headline: named headline numbers (what EXPERIMENTS.md quotes).
        figures: ASCII charts for claims that are curves (optional).
    """

    experiment_id: str
    title: str
    paper_claim: str
    tables: tuple[Table, ...]
    headline: dict[str, object] = field(default_factory=dict)
    figures: tuple[str, ...] = ()

    def render(self) -> str:
        """Full text report: claim, headline, tables, figures."""
        lines = [
            f"{self.experiment_id}: {self.title}",
            f"Paper claim: {self.paper_claim}",
        ]
        if self.headline:
            lines.append("Headline:")
            lines.extend(f"  {key} = {value}" for key, value in self.headline.items())
        for table in self.tables:
            lines.append("")
            lines.append(table.render())
        for figure in self.figures:
            lines.append("")
            lines.append(figure)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class ExperimentFn(Protocol):
    """An experiment entry point."""

    def __call__(self, seed: int = 0, quick: bool = False) -> ExperimentResult: ...


#: The registry, keyed by experiment id.
EXPERIMENTS: dict[str, ExperimentFn] = {}


def register(experiment_id: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator registering an experiment under ``experiment_id``."""

    def decorator(fn: ExperimentFn) -> ExperimentFn:
        if experiment_id in EXPERIMENTS:
            raise ValueError(f"duplicate experiment id: {experiment_id}")
        EXPERIMENTS[experiment_id] = fn
        return fn

    return decorator


def run_experiment(experiment_id: str, seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Run one registered experiment."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(seed=seed, quick=quick)


def run_all_experiments(seed: int = 0, quick: bool = False) -> list[ExperimentResult]:
    """Run every experiment in id order."""
    return [
        EXPERIMENTS[experiment_id](seed=seed, quick=quick)
        for experiment_id in sorted(EXPERIMENTS)
    ]
