"""Experiment registry and result type.

Every experiment module registers a ``run(seed=..., quick=...)`` callable
under its DESIGN.md identifier.  ``quick=True`` shrinks the workload for CI
and pytest-benchmark loops; the default scale is what EXPERIMENTS.md
records.

Experiments are independent given the master seed (each derives its own
sub-streams by id), so :func:`run_experiments` can fan experiment ids out
across a process pool (``jobs > 1``); experiments whose ``run`` accepts a
``jobs`` parameter additionally parallelize their inner Monte-Carlo trials
when run one at a time.  Either way the numbers are identical to a serial
run for a fixed seed.
"""

from __future__ import annotations

import inspect
import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Protocol, Sequence

from repro.utils.parallel import effective_jobs, parallel_map
from repro.utils.tables import Table


@dataclass(frozen=True)
class ExperimentResult:
    """One experiment's reproduction outcome.

    Attributes:
        experiment_id: the DESIGN.md identifier (e.g. ``"E4"``).
        title: short human title.
        paper_claim: the claim from the paper, quoted or paraphrased.
        tables: the measured series, as renderable tables.
        headline: named headline numbers (what EXPERIMENTS.md quotes).
        figures: ASCII charts for claims that are curves (optional).
    """

    experiment_id: str
    title: str
    paper_claim: str
    tables: tuple[Table, ...]
    headline: dict[str, object] = field(default_factory=dict)
    figures: tuple[str, ...] = ()

    def render(self) -> str:
        """Full text report: claim, headline, tables, figures."""
        lines = [
            f"{self.experiment_id}: {self.title}",
            f"Paper claim: {self.paper_claim}",
        ]
        if self.headline:
            lines.append("Headline:")
            lines.extend(f"  {key} = {value}" for key, value in self.headline.items())
        for table in self.tables:
            lines.append("")
            lines.append(table.render())
        for figure in self.figures:
            lines.append("")
            lines.append(figure)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class ExperimentFn(Protocol):
    """An experiment entry point (may additionally accept ``jobs``)."""

    def __call__(self, seed: int = 0, quick: bool = False) -> ExperimentResult: ...


#: The registry, keyed by experiment id.
EXPERIMENTS: dict[str, ExperimentFn] = {}


def experiment_sort_key(experiment_id: str) -> tuple:
    """Numeric-aware id ordering: E2 before E10 (lexicographic would not)."""
    match = re.fullmatch(r"([A-Za-z]*)(\d+)", experiment_id)
    if match:
        return (match.group(1), int(match.group(2)))
    return (experiment_id, 0)


def registered_ids() -> list[str]:
    """All registered experiment ids in numeric order."""
    return sorted(EXPERIMENTS, key=experiment_sort_key)


@lru_cache(maxsize=None)
def _accepts_jobs(fn: ExperimentFn) -> bool:
    try:
        return "jobs" in inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False


def register(experiment_id: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator registering an experiment under ``experiment_id``."""

    def decorator(fn: ExperimentFn) -> ExperimentFn:
        if experiment_id in EXPERIMENTS:
            raise ValueError(f"duplicate experiment id: {experiment_id}")
        EXPERIMENTS[experiment_id] = fn
        return fn

    return decorator


def run_experiment(
    experiment_id: str, seed: int = 0, quick: bool = False, jobs: int = 1
) -> ExperimentResult:
    """Run one registered experiment.

    ``jobs`` is forwarded to the experiment when its ``run`` accepts it
    (the Monte-Carlo-heavy experiments parallelize their trial loops) and
    ignored otherwise, so legacy two-argument experiments keep working.
    """
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {registered_ids()}"
        ) from None
    if jobs != 1 and _accepts_jobs(fn):
        return fn(seed=seed, quick=quick, jobs=jobs)
    return fn(seed=seed, quick=quick)


def run_experiments(
    experiment_ids: Sequence[str],
    seed: int = 0,
    quick: bool = False,
    jobs: int = 1,
    backend: str = "auto",
) -> list[ExperimentResult]:
    """Run the given experiments, optionally fanning ids out across workers.

    With ``jobs > 1`` and several ids, whole experiments run concurrently
    (one per worker) and their inner estimators stay serial — nesting
    process pools would oversubscribe.  With a single id the ``jobs``
    budget is passed down into the experiment's own trial loops instead.
    Results return in input order and match a serial run exactly.
    """
    ids = list(experiment_ids)
    workers = effective_jobs(jobs)
    if workers <= 1 or len(ids) <= 1:
        return [run_experiment(i, seed=seed, quick=quick, jobs=jobs) for i in ids]

    def one_experiment(experiment_id: str) -> ExperimentResult:
        return run_experiment(experiment_id, seed=seed, quick=quick, jobs=1)

    return parallel_map(one_experiment, ids, jobs=workers, backend=backend)


def run_all_experiments(
    seed: int = 0, quick: bool = False, jobs: int = 1
) -> list[ExperimentResult]:
    """Run every experiment in id order."""
    return run_experiments(registered_ids(), seed=seed, quick=quick, jobs=jobs)
