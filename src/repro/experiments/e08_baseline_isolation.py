"""E8 — the trivial attacker's ~37% (the paper's birthday example).

Section 2.2 computes that a data-independent predicate of weight ``1/n``
isolates with probability ``n * (1/n) * (1 - 1/n)^(n-1) ~ 37%`` — the
paper's own worked example uses n = 365 uniform birthdays and gets ~37%.
We replay exactly that example (a fixed-date predicate on birthdays),
generalize it to hash predicates of swept weight, and overlay the
closed-form curve ``n*w*(1-w)^(n-1)``.
"""

from __future__ import annotations

from repro.core.isolation import isolates, isolation_probability
from repro.core.leftover_hash import hash_threshold_predicate
from repro.core.predicate import attribute_predicate
from repro.data.distributions import AttributeDistribution, ProductDistribution
from repro.data.domain import IntegerDomain
from repro.data.schema import Attribute, AttributeKind, Schema
from repro.experiments.runner import ExperimentResult, register
from repro.utils.parallel import parallel_map
from repro.utils.rng import derive_rng, spawn_rngs
from repro.utils.stats import estimate_proportion
from repro.utils.tables import Table


def _birthday_distribution() -> ProductDistribution:
    """The paper's example: uniform birthdays over 365 days."""
    schema = Schema(
        [Attribute("birthday", IntegerDomain(1, 365), AttributeKind.QUASI_IDENTIFIER)]
    )
    return ProductDistribution(
        schema, {"birthday": AttributeDistribution.uniform(schema.attribute("birthday").domain)}
    )


@register("E8")
def run(seed: int = 0, quick: bool = False, jobs: int = 1) -> ExperimentResult:
    """Measured vs closed-form isolation probability of trivial predicates."""
    n = 365
    trials = 400 if quick else 2_000
    distribution = _birthday_distribution()

    # (a) The literal birthday example: the fixed predicate "born Apr-30"
    # (day-of-year 120), exactly as in the paper.
    fixed_predicate = attribute_predicate("birthday", 120)

    def fixed_trial(rng) -> int:
        data = distribution.sample(n, rng)
        return int(isolates(fixed_predicate, data))

    successes = sum(
        parallel_map(fixed_trial, spawn_rngs(derive_rng(seed, "e8-fixed"), trials), jobs=jobs)
    )
    fixed_estimate = estimate_proportion(successes, trials)

    table = Table(
        ["predicate", "weight w", "measured isolation", "theory n*w*(1-w)^(n-1)"],
        title=f"E8: trivial-attacker isolation (n={n} uniform birthdays)",
    )
    table.add_row(
        [
            "birthday = Apr-30",
            f"{1/365:.5f}",
            str(fixed_estimate),
            isolation_probability(n, 1.0 / 365.0),
        ]
    )

    # (b) Hash predicates across the weight axis (the LHL generalization).
    # On a 365-value domain the *realized* weight of a hash cut fluctuates
    # around the analytic threshold (the domain has only ~8.5 bits of
    # min-entropy, so the Leftover-Hash-Lemma concentration is loose); the
    # honest theory column therefore averages n*w*(1-w)^(n-1) over each
    # salt's realized weight, computed exactly by domain enumeration.
    from repro.data.dataset import Dataset as _Dataset

    schema = distribution.schema
    domain_values = list(schema.attribute("birthday").domain)
    domain_dataset = _Dataset(schema, [(v,) for v in domain_values], validate=False)
    for multiplier in (0.1, 0.5, 1.0, 2.0, 5.0):
        weight = multiplier / n

        def hash_trial(item, multiplier=multiplier, weight=weight) -> tuple[float, int]:
            index, rng = item
            predicate = hash_threshold_predicate(f"e8-{multiplier}-{index}", weight)
            realized = domain_dataset.count(predicate) / len(domain_values)
            data = distribution.sample(n, rng)
            return isolation_probability(n, realized), int(isolates(predicate, data))

        streams = enumerate(spawn_rngs(derive_rng(seed, "e8", multiplier), trials))
        outcomes = parallel_map(hash_trial, list(streams), jobs=jobs)
        theory_terms = [theory for theory, _success in outcomes]
        successes = sum(success for _theory, success in outcomes)
        estimate = estimate_proportion(successes, trials)
        mean_theory = sum(theory_terms) / len(theory_terms)
        table.add_row(
            [
                f"hash cut, w = {multiplier}/n",
                f"{weight:.5f}",
                str(estimate),
                mean_theory,
            ]
        )

    # Figure: the n*w*(1-w)^(n-1) bell, theory curve with measured overlay.
    from repro.utils.plots import ascii_overlay

    weight_grid = [multiplier / n for multiplier in (0.1, 0.5, 1.0, 2.0, 5.0)]
    # Both curves come from the table's hash-cut rows, so theory is evaluated
    # at each salt's realized weight (see comment above) and overlays cleanly.
    theory_curve = [float(row[3]) for row in table.rows[1:]]
    measured_curve = [float(row[2].split(" ")[0]) for row in table.rows[1:]]
    figure = ascii_overlay(
        [w * n for w in weight_grid],
        [
            ("theory n*w*(1-w)^(n-1)", theory_curve, "o"),
            ("measured", measured_curve, "*"),
        ],
        title="Figure E8: isolation probability vs weight (x = w*n)",
    )

    return ExperimentResult(
        experiment_id="E8",
        title="Data-independent isolation baseline (~37%)",
        paper_claim=(
            "a fixed birthday predicate isolates among 365 uniform birthdays "
            "with probability ~37%; in general a weight-w predicate isolates "
            "w.p. n*w*(1-w)^(n-1), maximized at w = 1/n"
        ),
        tables=(table,),
        figures=(figure,),
        headline={"measured_isolation_at_w_1_over_n": fixed_estimate.estimate},
    )
