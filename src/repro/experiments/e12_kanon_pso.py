"""E12 — Theorem 2.10 and Cohen [12]: k-anonymity fails PSO.

Three measurements:

1. **the paper's refinement attack** — against the information-optimizing
   agreement anonymizer, success ``(1 - 1/k)^(k-1)`` (~37% for large k),
   swept over k;
2. **the Cohen-strengthened singleton attack** — against a standard
   anonymizer that keeps the sensitive column raw, success approaching
   100%;
3. **an ablation** — a Mondrian release whose cells partition the whole
   domain (every attribute generalized): its class predicates have weight
   ~k/n, *not* negligible, and the attack is correctly scored as failing
   the weight condition.  This is the knife-edge the definition is
   calibrated on.
"""

from __future__ import annotations

from repro.anonymity.agreement import AgreementAnonymizer
from repro.anonymity.mondrian import MondrianAnonymizer
from repro.attacks.downcoding import downcoding_experiment
from repro.core.analysis import refinement_success_probability
from repro.core.attackers import KAnonymityPSOAttacker
from repro.core.mechanisms import KAnonymityMechanism
from repro.core.pso import PSOGame
from repro.data.distributions import ProductDistribution, uniform_bits_schema
from repro.data.domain import CategoricalDomain
from repro.data.schema import Attribute, AttributeKind, Schema
from repro.experiments.runner import ExperimentResult, register
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


def _schema_with_secret(width: int, secret_values: int = 50) -> Schema:
    """Wide QI bits plus one raw sensitive column (standard k-anon setting)."""
    bits = uniform_bits_schema(width)
    return Schema(
        list(bits.attributes)
        + [Attribute("secret", CategoricalDomain(range(secret_values)), AttributeKind.SENSITIVE)]
    )


@register("E12")
def run(seed: int = 0, quick: bool = False, jobs: int = 1) -> ExperimentResult:
    """PSO attacks on k-anonymized releases, all three measurements."""
    n = 250
    trials = 30 if quick else 80

    # (1) Refinement attack, k swept.  The construction needs the data
    # width to grow with k: a class of k records agrees on ~ d * 2^(1-k)
    # random attributes, and that agreement must stay above ~2*log2(n) bits
    # for the class predicate to be negligible-weight — so d = omega(2^k).
    # The width schedule below keeps the agreement comfortably past that
    # bar at every k (an honest rendering of Theorem 2.10's "typical
    # dataset would include many more attributes").
    refine_table = Table(
        ["k", "data width d", "PSO success", "expected (1-1/k)^(k-1)", "isolation rate"],
        title=f"E12a: the Theorem 2.10 refinement attack (n={n})",
    )
    width_by_k = {2: 96, 3: 128, 4: 192, 6: 1024}
    ks = [4] if quick else [2, 3, 4, 6]
    success_by_k = {}
    for k in ks:
        width = width_by_k[k]
        refine_distribution = ProductDistribution.uniform(uniform_bits_schema(width))
        mechanism = KAnonymityMechanism(AgreementAnonymizer(k), label="agreement")
        game = PSOGame(refine_distribution, n, mechanism, KAnonymityPSOAttacker("refine"))
        result = game.run(trials, derive_rng(seed, "e12a", k), jobs=jobs)
        expected = refinement_success_probability(k)
        refine_table.add_row(
            [k, width, str(result.success), expected, result.isolation_rate.estimate]
        )
        success_by_k[k] = result.success.estimate

    # (2) Cohen singleton attack (sensitive column raw).
    singleton_schema = _schema_with_secret(96)
    singleton_distribution = ProductDistribution.uniform(singleton_schema)
    singleton_table = Table(
        ["anonymizer", "k", "PSO success", "isolation rate"],
        title="E12b: the Cohen singleton attack (sensitive column released raw)",
    )
    mechanism = KAnonymityMechanism(AgreementAnonymizer(4), label="agreement")
    game = PSOGame(singleton_distribution, n, mechanism, KAnonymityPSOAttacker("singleton"))
    singleton_result = game.run(trials, derive_rng(seed, "e12b"), jobs=jobs)
    singleton_table.add_row(
        ["agreement", 4, str(singleton_result.success),
         singleton_result.isolation_rate.estimate]
    )

    # (3) Ablation: full-domain-partitioning Mondrian — high isolation but
    # non-negligible weight, so PSO success is (correctly) ~0.
    ablation_width = 24
    ablation_distribution = ProductDistribution.uniform(uniform_bits_schema(ablation_width))
    ablation_table = Table(
        ["anonymizer", "PSO success", "isolation rate", "weight-ok rate"],
        title="E12c: ablation — partitioning cells are not negligible-weight",
    )
    mondrian = KAnonymityMechanism(MondrianAnonymizer(k=4), label="mondrian")
    game = PSOGame(ablation_distribution, n, mondrian, KAnonymityPSOAttacker("auto"))
    ablation_result = game.run(max(10, trials // 2), derive_rng(seed, "e12c"), jobs=jobs)
    ablation_table.add_row(
        [
            "mondrian (all attributes generalized)",
            str(ablation_result.success),
            ablation_result.isolation_rate.estimate,
            ablation_result.negligible_weight_rate.estimate,
        ]
    )

    # (4) Downcoding bonus: distribution knowledge reconstructs generalized
    # cells (the mechanism "leaks information which a privacy attacker can
    # make use of").  Run on skewed population data, where MAP-within-cover
    # beats the uniform random-in-cover baseline.
    from repro.data.population import (
        PopulationConfig,
        generate_population,
        gic_release,
        population_distribution,
    )

    population_config = PopulationConfig(size=n, zip_count=40)
    population = generate_population(population_config, derive_rng(seed, "e12d-pop"))
    release_input = gic_release(population)
    full_distribution = population_distribution(population_config)
    release_distribution = ProductDistribution(
        release_input.schema,
        {name: full_distribution.marginals[name] for name in release_input.schema.names},
    )
    mondrian_release = MondrianAnonymizer(
        k=4, quasi_identifiers=release_input.schema.names
    ).anonymize(release_input)
    downcoding = downcoding_experiment(
        release_input, mondrian_release, release_distribution
    )
    # Baseline: guessing uniformly inside each released cover set.
    cover_sizes = [
        len(record[name].covers)
        for record in mondrian_release
        for name in release_input.schema.names
        if not record[name].is_singleton
    ]
    random_in_cover = (
        sum(1.0 / size for size in cover_sizes) / len(cover_sizes)
        if cover_sizes
        else 1.0
    )
    downcode_table = Table(
        ["metric", "value"],
        title="E12d: downcoding a Mondrian release of skewed population data",
    )
    downcode_table.add_row(["cells correct (all)", downcoding.attribute_accuracy])
    downcode_table.add_row(
        ["generalized cells correct (MAP)", downcoding.generalized_cell_accuracy]
    )
    downcode_table.add_row(["random-in-cover baseline", random_in_cover])

    return ExperimentResult(
        experiment_id="E12",
        title="k-anonymity fails predicate singling out",
        paper_claim=(
            "typical, information-optimizing k-anonymizers enable predicate "
            "singling out with probability ~37% (Theorem 2.10); Cohen's attack "
            "strengthens this to ~100% for generalization-based k-anonymity"
        ),
        tables=(refine_table, singleton_table, ablation_table, downcode_table),
        headline={
            "refinement_success": success_by_k,
            "cohen_singleton_success": singleton_result.success.estimate,
        },
    )
