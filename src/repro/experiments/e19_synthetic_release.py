"""E19 — DP synthetic data, attacked with the repo's own attack suite.

The paper's closing argument is that formal privacy is the only release
strategy that survives its own attack chapter.  E19 makes that argument
executable for *synthetic microdata*, the release format statistical
agencies actually ship: three generators from :mod:`repro.synth` publish a
synthetic census for the same simulated town, and every release is then
attacked with the repo's uniqueness (E4), linkage (E5), and
tabulate-then-reconstruct (E7) machinery plus a counting-query utility
metric.

* :class:`~repro.synth.mwem.MWEMSynthesizer` (the DP workhorse) is swept
  over ``epsilon in {0.1, 1, 10}`` — utility must improve monotonically
  with budget while linkage stays defeated.
* :class:`~repro.synth.hierarchical.HierarchicalSynthesizer` (the
  TopDown-style block/national release) shows the same defense from a
  hierarchical-counts mechanism.
* :class:`~repro.synth.independent.IndependentSynthesizer` resamples
  per-block marginals with *no* noise — the "synthetic, therefore safe"
  fallacy.  It leaks: the commercial-file join re-identifies real people
  through the synthetic rows.

Every DP release is charged to one
:class:`~repro.privacy.accounting.PrivacyAccountant`, so the headline also
reports the total epsilon the sweep actually spent.
"""

from __future__ import annotations

from repro.data.censusblocks import (
    CensusConfig,
    commercial_database,
    generate_census,
)
from repro.experiments.runner import ExperimentResult, register
from repro.privacy.accounting import PrivacyAccountant
from repro.queries.workload import Workload
from repro.synth import (
    CellDomain,
    HierarchicalSynthesizer,
    IndependentSynthesizer,
    MWEMSynthesizer,
    SyntheticEvaluation,
    baseline_linkage,
    evaluate_release,
)
from repro.utils.plots import ascii_chart
from repro.utils.rng import derive_rng
from repro.utils.tables import Table

#: The attributes every synthesizer publishes (census order).
_ATTRIBUTES = ("block", "sex", "age", "race", "ethnicity")

#: The MWEM budget sweep; the middle point is the flagship release.
_EPSILONS = (0.1, 1.0, 10.0)


@register("E19")
def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Publish three synthetic censuses; attack each; tabulate the fallout."""
    if quick:
        config = CensusConfig(
            blocks=10, mean_block_size=8, max_block_size=20, age_range=(0, 59)
        )
        num_queries, rounds = 300, 30
    else:
        config = CensusConfig(
            blocks=20, mean_block_size=12, max_block_size=30, age_range=(0, 79)
        )
        num_queries, rounds = 500, 40

    census = generate_census(config, rng=derive_rng(seed, "e19-census"))
    commercial = commercial_database(
        census, coverage=0.9, age_error=1, rng=derive_rng(seed, "e19-commercial")
    )
    domain = CellDomain.from_dataset(census, _ATTRIBUTES)
    workload = Workload.random(
        domain.size, num_queries, density=0.1, rng=derive_rng(seed, "e19-workload")
    )
    baseline = baseline_linkage(census, commercial)
    accountant = PrivacyAccountant()

    def attack(release) -> SyntheticEvaluation:
        return evaluate_release(
            release, census, commercial, workload=workload, domain=domain
        )

    evaluations: list[SyntheticEvaluation] = []
    mwem_errors: dict[float, float] = {}
    mwem_rates: dict[float, float] = {}
    for epsilon in _EPSILONS:
        synthesizer = MWEMSynthesizer(
            workload, epsilon, rounds=rounds, domain=domain
        )
        release = synthesizer.synthesize(
            census,
            accountant=accountant,
            rng=derive_rng(seed, "e19-mwem", str(epsilon)),
        )
        evaluation = attack(release)
        evaluations.append(evaluation)
        mwem_errors[epsilon] = float(evaluation.workload_error)
        mwem_rates[epsilon] = evaluation.linkage.confirmed / baseline.population

    hierarchical = HierarchicalSynthesizer(1.0).synthesize(
        census, accountant=accountant, rng=derive_rng(seed, "e19-hierarchical")
    )
    evaluations.append(attack(hierarchical))

    independent = IndependentSynthesizer(
        attributes=("sex", "age", "race", "ethnicity"), group_by=("block",)
    ).synthesize(census, accountant=accountant, rng=derive_rng(seed, "e19-independent"))
    independent_evaluation = attack(independent)
    evaluations.append(independent_evaluation)

    qi_full = _ATTRIBUTES
    sweep = Table(
        [
            "release",
            "eps",
            "records",
            "unique frac",
            "linked",
            "recon linked",
            "workload err",
        ],
        title=(
            f"E19: attacks on synthetic releases of one n={len(census)} census "
            f"(baseline linkage {baseline.confirmed}/{baseline.population})"
        ),
    )
    for evaluation in evaluations:
        recon = evaluation.reconstruction_linkage
        sweep.add_row(
            [
                evaluation.name,
                f"{evaluation.epsilon:g}",
                evaluation.records,
                f"{evaluation.uniqueness[qi_full]:.3f}",
                f"{evaluation.linkage.confirmed}/{baseline.population}",
                f"{recon.confirmed}/{baseline.population}" if recon else "-",
                f"{evaluation.workload_error:.4f}",
            ]
        )

    figure = ascii_chart(
        [float(epsilon) for epsilon in _EPSILONS],
        [mwem_errors[epsilon] for epsilon in _EPSILONS],
        title="E19: MWEM workload error vs epsilon (utility buys budget)",
        x_label="epsilon",
        y_label="mean workload error",
    )

    flagship_rate = mwem_rates[1.0]
    baseline_rate = baseline.confirmed / baseline.population
    independent_rate = independent_evaluation.linkage.confirmed / baseline.population
    total_epsilon, _total_delta = accountant.total()
    return ExperimentResult(
        experiment_id="E19",
        title="Synthetic-data release under the full attack suite",
        paper_claim=(
            "Synthetic data is not inherently private: only releases backed "
            "by a formal DP guarantee defeat the linkage attacks, and their "
            "utility improves monotonically with the privacy budget"
        ),
        tables=(sweep,),
        headline={
            "baseline_reidentified_rate": baseline_rate,
            "mwem_eps1_reidentified_rate": flagship_rate,
            "independent_reidentified_rate": independent_rate,
            "mwem_defeats_linkage": flagship_rate <= baseline_rate,
            "independent_leaks": independent_rate > flagship_rate,
            "mwem_error_eps01": mwem_errors[0.1],
            "mwem_error_eps1": mwem_errors[1.0],
            "mwem_error_eps10": mwem_errors[10.0],
            "error_monotone": mwem_errors[0.1]
            > mwem_errors[1.0]
            > mwem_errors[10.0],
            "epsilon_charged": total_epsilon,
        },
        figures=(figure,),
    )
