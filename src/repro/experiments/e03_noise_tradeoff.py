"""E3 — the Fundamental Law of Information Recovery, measured.

"Overly accurate answers to too many questions will destroy privacy in a
spectacular way."  The contrapositive is the defense: noise of order
``omega(sqrt(n))`` (relative to the query count) blunts the LP attack.  We
fix ``n`` and the query budget, sweep the noise magnitude across the
``sqrt(n)``-to-``n`` range, and locate the crossover where reconstruction
degrades from near-perfect to coin-flipping; we also place the Laplace
mechanism (per-query epsilon) on the same axis.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import ExperimentResult, register
from repro.queries.mechanism import BoundedNoiseAnswerer, LaplaceAnswerer
from repro.queries.workload import Workload
from repro.reconstruction.lp_decode import reconstruct_from_answers
from repro.utils.rng import derive_rng
from repro.utils.tables import Table


@register("E3")
def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """Noise-vs-reconstruction sweep at fixed n and query budget.

    The query workload is fixed once for the whole experiment — the sweep
    varies only the noise — so every answerer batch-answers the same packed
    workload and every LP solve reuses one cached sparse assembly.
    """
    n = 96 if quick else 192
    repeats = 1 if quick else 3
    num_queries = 8 * n
    sqrt_n = float(np.sqrt(n))
    workload = Workload.random(n, num_queries, rng=derive_rng(seed, "e3-workload"))
    noise_levels = [0.0, 0.25 * sqrt_n, 0.5 * sqrt_n, sqrt_n, 2 * sqrt_n, 4 * sqrt_n, n / 4.0, n / 2.0]

    table = Table(
        ["noise alpha", "alpha/sqrt(n)", "agreement"],
        title=f"E3: noise vs reconstruction (n={n}, m={num_queries} queries)",
    )
    low_noise_agreement = 0.0
    high_noise_agreement = 1.0
    curve_x: list[float] = []
    curve_y: list[float] = []
    for alpha in noise_levels:
        agreements = []
        for repeat in range(repeats):
            rng = derive_rng(seed, "e3", alpha, repeat)
            data = rng.integers(0, 2, size=n)
            answerer = BoundedNoiseAnswerer(data, alpha=alpha, rng=rng)
            answers = answerer.answer_workload(workload)
            result = reconstruct_from_answers(workload, answers, alpha=alpha)
            agreements.append(result.agreement_with(data))
        agreement = float(np.mean(agreements))
        table.add_row([f"{alpha:.2f}", f"{alpha / sqrt_n:.2f}", agreement])
        curve_x.append(alpha / sqrt_n)
        curve_y.append(agreement)
        if alpha <= 0.5 * sqrt_n:
            low_noise_agreement = max(low_noise_agreement, agreement)
        if alpha >= n / 4.0:
            high_noise_agreement = min(high_noise_agreement, agreement)

    dp_table = Table(
        ["eps per query", "total eps (basic comp.)", "noise scale", "agreement"],
        title="E3b: the Laplace mechanism on the same attack",
    )
    for epsilon in (1.0, 0.1, 0.02):
        agreements = []
        for repeat in range(repeats):
            rng = derive_rng(seed, "e3dp", epsilon, repeat)
            data = rng.integers(0, 2, size=n)
            answerer = LaplaceAnswerer(data, epsilon_per_query=epsilon, rng=rng)
            answers = answerer.answer_workload(workload)
            # Laplace noise is unbounded: decode in least-l1 mode (alpha=None).
            result = reconstruct_from_answers(workload, answers, alpha=None)
            agreements.append(result.agreement_with(data))
        dp_table.add_row(
            [
                epsilon,
                epsilon * num_queries,
                f"{1.0 / epsilon:.1f}",
                float(np.mean(agreements)),
            ]
        )

    from repro.utils.plots import ascii_chart

    # Sort by x for a readable curve (the sweep mixes two noise families).
    ordered = sorted(zip(curve_x, curve_y))
    figure = ascii_chart(
        [x for x, _ in ordered],
        [y for _, y in ordered],
        title="Figure E3: the Fundamental Law crossover",
        x_label="noise alpha in units of sqrt(n)",
        y_label="reconstruction agreement",
    )

    return ExperimentResult(
        experiment_id="E3",
        title="Accuracy/privacy tradeoff (Fundamental Law)",
        paper_claim=(
            "reconstruction is possible unless the mechanism introduces error "
            "of at least ~sqrt(n) or limits the number of queries"
        ),
        tables=(table, dp_table),
        figures=(figure,),
        headline={
            "agreement_below_half_sqrt_n": low_noise_agreement,
            "agreement_at_linear_noise": high_noise_agreement,
        },
    )
