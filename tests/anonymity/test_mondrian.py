"""Tests for the Mondrian k-anonymizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymity.checks import is_k_anonymous
from repro.anonymity.mondrian import MondrianAnonymizer
from repro.data.dataset import Dataset
from repro.data.distributions import uniform_bits_distribution
from repro.data.domain import CategoricalDomain, IntegerDomain
from repro.data.population import PopulationConfig, generate_population, gic_release
from repro.data.schema import Attribute, AttributeKind, Schema


@pytest.fixture(scope="module")
def release_input():
    population = generate_population(PopulationConfig(size=300, zip_count=20), rng=0)
    return gic_release(population)


class TestMondrianInvariants:
    @pytest.mark.parametrize("k", [2, 5, 10])
    def test_output_is_k_anonymous(self, release_input, k):
        release = MondrianAnonymizer(k=k).anonymize(release_input)
        assert is_k_anonymous(release, k)

    def test_row_order_preserved(self, release_input):
        release = MondrianAnonymizer(k=5).anonymize(release_input)
        assert release.is_consistent_with(release_input)

    def test_no_suppression(self, release_input):
        release = MondrianAnonymizer(k=5).anonymize(release_input)
        assert release.suppressed_count == 0
        assert len(release) == len(release_input)

    def test_sensitive_attributes_stay_raw(self, release_input):
        release = MondrianAnonymizer(k=5).anonymize(release_input)
        assert all(record["disease"].is_singleton for record in release)

    def test_smaller_k_gives_more_classes(self, release_input):
        fine = MondrianAnonymizer(k=2).anonymize(release_input)
        coarse = MondrianAnonymizer(k=20).anonymize(release_input)
        assert len(fine.equivalence_classes()) > len(coarse.equivalence_classes())


class TestMondrianEdgeCases:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MondrianAnonymizer(k=0)

    def test_too_few_records(self, release_input):
        tiny = Dataset(release_input.schema, release_input.rows[:3], validate=False)
        with pytest.raises(ValueError):
            MondrianAnonymizer(k=5).anonymize(tiny)

    def test_empty_dataset(self, release_input):
        empty = Dataset(release_input.schema, [], validate=False)
        release = MondrianAnonymizer(k=5).anonymize(empty)
        assert len(release) == 0

    def test_no_quasi_identifiers_rejected(self):
        schema = Schema([Attribute("x", IntegerDomain(0, 9))])
        data = Dataset(schema, [(i % 10,) for i in range(20)])
        with pytest.raises(ValueError):
            MondrianAnonymizer(k=2).anonymize(data)

    def test_explicit_quasi_identifiers(self, release_input):
        release = MondrianAnonymizer(k=5, quasi_identifiers=["zip", "sex"]).anonymize(
            release_input
        )
        assert is_k_anonymous(release, 5, ["zip", "sex"])
        # birth_year was not generalized.
        assert all(record["birth_year"].is_singleton for record in release)

    def test_unknown_quasi_identifier(self, release_input):
        with pytest.raises(KeyError):
            MondrianAnonymizer(k=5, quasi_identifiers=["height"]).anonymize(release_input)

    def test_identical_records_cannot_split(self):
        schema = Schema(
            [Attribute("x", IntegerDomain(0, 9), AttributeKind.QUASI_IDENTIFIER)]
        )
        data = Dataset(schema, [(5,)] * 10)
        release = MondrianAnonymizer(k=2).anonymize(data)
        assert len(release.equivalence_classes()) == 1


@given(k=st.integers(2, 6), n_seed=st.integers(0, 20))
@settings(max_examples=15, deadline=None)
def test_mondrian_property_k_anonymous_on_random_bits(k, n_seed):
    distribution = uniform_bits_distribution(8)
    data = distribution.sample(40 + 5 * n_seed, rng=n_seed)
    release = MondrianAnonymizer(k=k).anonymize(data)
    assert is_k_anonymous(release, k)
    assert release.is_consistent_with(data)
