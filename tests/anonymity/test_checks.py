"""Tests for k-anonymity / l-diversity / t-closeness checkers."""

import pytest

from repro.anonymity.checks import (
    distinct_l_diversity,
    equivalence_classes_on,
    is_k_anonymous,
    is_l_diverse,
    is_t_close,
    t_closeness,
)
from repro.data.dataset import Dataset
from repro.data.domain import CategoricalDomain, IntegerDomain
from repro.data.generalized import GeneralizedDataset, GeneralizedRecord
from repro.data.hierarchy import GeneralizedValue
from repro.data.schema import Attribute, AttributeKind, Schema


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("zip", CategoricalDomain(["12345", "12346", "23456"]), AttributeKind.QUASI_IDENTIFIER),
            Attribute("age", IntegerDomain(0, 99), AttributeKind.QUASI_IDENTIFIER),
            Attribute("disease", CategoricalDomain(["covid", "cf", "asthma"]), AttributeKind.SENSITIVE),
        ]
    )


def _release(schema, rows) -> GeneralizedDataset:
    """rows: list of (zip_covers, age_covers, disease)."""
    records = []
    for zips, ages, disease in rows:
        records.append(
            GeneralizedRecord(
                schema,
                [
                    GeneralizedValue("z", zips),
                    GeneralizedValue("a", ages),
                    GeneralizedValue.raw(disease),
                ],
            )
        )
    return GeneralizedDataset(schema, records)


@pytest.fixture
def two_classes(schema) -> GeneralizedDataset:
    cell_a = (["23456"], range(40, 60))
    cell_b = (["12345", "12346"], range(30, 40))
    return _release(
        schema,
        [
            (*cell_a, "covid"),
            (*cell_a, "covid"),
            (*cell_b, "cf"),
            (*cell_b, "asthma"),
        ],
    )


class TestEquivalenceClasses:
    def test_grouped_on_quasi_identifiers(self, two_classes):
        classes = equivalence_classes_on(two_classes)
        assert sorted(len(v) for v in classes.values()) == [2, 2]

    def test_explicit_names(self, two_classes):
        classes = equivalence_classes_on(two_classes, ["zip"])
        assert len(classes) == 2

    def test_unknown_names_rejected(self, two_classes):
        with pytest.raises(KeyError):
            equivalence_classes_on(two_classes, ["height"])


class TestKAnonymity:
    def test_two_anonymous(self, two_classes):
        assert is_k_anonymous(two_classes, 2)
        assert not is_k_anonymous(two_classes, 3)

    def test_empty_release(self, schema):
        assert is_k_anonymous(GeneralizedDataset(schema, []), 5)

    def test_invalid_k(self, two_classes):
        with pytest.raises(ValueError):
            is_k_anonymous(two_classes, 0)


class TestLDiversity:
    def test_distinct_l(self, two_classes):
        # class A has one disease value, class B two.
        assert distinct_l_diversity(two_classes, "disease") == 1
        assert is_l_diverse(two_classes, 1, "disease")
        assert not is_l_diverse(two_classes, 2, "disease")

    def test_unknown_sensitive(self, two_classes):
        with pytest.raises(KeyError):
            distinct_l_diversity(two_classes, "height")

    def test_empty_release_rejected(self, schema):
        with pytest.raises(ValueError):
            distinct_l_diversity(GeneralizedDataset(schema, []), "disease")

    def test_invalid_l(self, two_classes):
        with pytest.raises(ValueError):
            is_l_diverse(two_classes, 0, "disease")


class TestTCloseness:
    def test_skewed_class_far_from_global(self, two_classes):
        # Global: covid 1/2, cf 1/4, asthma 1/4.  Class A is all-covid:
        # TV distance = |1 - 0.5|/... = 0.5.
        assert t_closeness(two_classes, "disease") == pytest.approx(0.5)
        assert is_t_close(two_classes, 0.5, "disease")
        assert not is_t_close(two_classes, 0.4, "disease")

    def test_single_class_is_zero(self, schema):
        release = _release(
            schema,
            [(["12345"], [30], "covid"), (["12345"], [30], "cf")],
        )
        assert t_closeness(release, "disease") == pytest.approx(0.0)

    def test_invalid_t(self, two_classes):
        with pytest.raises(ValueError):
            is_t_close(two_classes, 1.5, "disease")

    def test_unknown_sensitive(self, two_classes):
        with pytest.raises(KeyError):
            t_closeness(two_classes, "height")
