"""Tests for the agreement-based suppression anonymizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymity.agreement import AgreementAnonymizer
from repro.anonymity.checks import is_k_anonymous
from repro.data.dataset import Dataset
from repro.data.distributions import ProductDistribution, uniform_bits_distribution, uniform_bits_schema
from repro.data.domain import CategoricalDomain
from repro.data.schema import Attribute, AttributeKind, Schema


@pytest.fixture(scope="module")
def wide_data():
    return uniform_bits_distribution(64).sample(100, rng=0)


class TestAgreementAnonymizer:
    @pytest.mark.parametrize("k", [2, 4, 7])
    def test_k_anonymous(self, wide_data, k):
        release = AgreementAnonymizer(k).anonymize(wide_data)
        assert is_k_anonymous(release, k)

    def test_group_sizes_at_least_k(self, wide_data):
        release = AgreementAnonymizer(4).anonymize(wide_data)
        assert min(release.class_sizes()) >= 4

    def test_remainder_joins_last_group(self):
        data = uniform_bits_distribution(16).sample(10, rng=1)
        release = AgreementAnonymizer(4).anonymize(data)
        # 10 = 4 + 6: no group smaller than k.
        assert sorted(release.class_sizes()) == [4, 6]

    def test_released_values_cover_raw(self, wide_data):
        release = AgreementAnonymizer(4).anonymize(wide_data)
        assert release.is_consistent_with(wide_data)

    def test_sorted_beats_sequential_on_agreement(self, wide_data):
        def suppressed_cells(release):
            return sum(
                0 if value.is_singleton else 1
                for record in release
                for value in record.values
            )

        sorted_release = AgreementAnonymizer(4, strategy="sorted").anonymize(wide_data)
        sequential_release = AgreementAnonymizer(4, strategy="sequential").anonymize(wide_data)
        assert suppressed_cells(sorted_release) <= suppressed_cells(sequential_release)

    def test_sensitive_attribute_released_raw(self):
        bits = uniform_bits_schema(16)
        schema = Schema(
            list(bits.attributes)
            + [Attribute("secret", CategoricalDomain(range(10)), AttributeKind.SENSITIVE)]
        )
        data = ProductDistribution.uniform(schema).sample(40, rng=2)
        release = AgreementAnonymizer(4).anonymize(data)
        assert all(record["secret"].is_singleton for record in release)
        # But the release is still k-anonymous over the quasi-identifiers.
        assert is_k_anonymous(release, 4)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AgreementAnonymizer(0)
        with pytest.raises(ValueError):
            AgreementAnonymizer(2, strategy="random")

    def test_too_few_records(self, wide_data):
        tiny = Dataset(wide_data.schema, wide_data.rows[:2], validate=False)
        with pytest.raises(ValueError):
            AgreementAnonymizer(5).anonymize(tiny)

    def test_empty(self, wide_data):
        empty = Dataset(wide_data.schema, [], validate=False)
        assert len(AgreementAnonymizer(5).anonymize(empty)) == 0


@given(k=st.integers(2, 5), seed=st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_agreement_property_always_k_anonymous(k, seed):
    data = uniform_bits_distribution(12).sample(30, rng=seed)
    release = AgreementAnonymizer(k).anonymize(data)
    assert is_k_anonymous(release, k)
    assert len(release) == len(data)
