"""Tests for the l-diversity-constrained Mondrian variant."""

import pytest

from repro.anonymity.checks import distinct_l_diversity, is_k_anonymous
from repro.anonymity.mondrian import MondrianAnonymizer
from repro.data.population import PopulationConfig, generate_population, gic_release


@pytest.fixture(scope="module")
def release_input():
    population = generate_population(PopulationConfig(size=400, zip_count=20), rng=4)
    return gic_release(population)


class TestLDiverseMondrian:
    def test_release_is_l_diverse(self, release_input):
        anonymizer = MondrianAnonymizer(k=4, l_diversity=(3, "disease"))
        release = anonymizer.anonymize(release_input)
        assert is_k_anonymous(release, 4)
        assert distinct_l_diversity(release, "disease") >= 3

    def test_plain_mondrian_can_violate_l_diversity(self, release_input):
        plain = MondrianAnonymizer(k=2).anonymize(release_input)
        # With k=2 and 13 diseases, some class is almost surely uniform.
        assert distinct_l_diversity(plain, "disease") < 3

    def test_diversity_costs_utility(self, release_input):
        plain = MondrianAnonymizer(k=4).anonymize(release_input)
        diverse = MondrianAnonymizer(k=4, l_diversity=(4, "disease")).anonymize(
            release_input
        )
        # Fewer allowed cuts -> fewer (larger) classes.
        assert len(diverse.equivalence_classes()) <= len(plain.equivalence_classes())

    def test_unattainable_l_rejected(self, release_input):
        anonymizer = MondrianAnonymizer(k=2, l_diversity=(99, "disease"))
        with pytest.raises(ValueError):
            anonymizer.anonymize(release_input)

    def test_unknown_sensitive_rejected(self, release_input):
        anonymizer = MondrianAnonymizer(k=2, l_diversity=(2, "height"))
        with pytest.raises(KeyError):
            anonymizer.anonymize(release_input)

    def test_invalid_l(self):
        with pytest.raises(ValueError):
            MondrianAnonymizer(k=2, l_diversity=(0, "disease"))


@pytest.mark.slow
def test_footnote3_check_passes():
    """The footnote-3 claim: l-diverse releases remain PSO-vulnerable."""
    from repro.core.theorems import check_ldiversity_fails_pso

    check = check_ldiversity_fails_pso(trials=30, rng=0)
    assert check.passed
    assert check.measurements["l_diverse_trials"] > 0
