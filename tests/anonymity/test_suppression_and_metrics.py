"""Tests for the suppression baseline and the utility metrics."""

import pytest

from repro.anonymity.agreement import AgreementAnonymizer
from repro.anonymity.metrics import (
    average_class_size_ratio,
    discernibility_metric,
    generalization_precision,
    utility_report,
)
from repro.anonymity.mondrian import MondrianAnonymizer
from repro.anonymity.suppression import suppress_small_classes
from repro.data.dataset import Dataset
from repro.data.distributions import uniform_bits_distribution
from repro.data.domain import IntegerDomain
from repro.data.generalized import GeneralizedDataset
from repro.data.population import PopulationConfig, generate_population, gic_release
from repro.data.schema import Attribute, AttributeKind, Schema


@pytest.fixture(scope="module")
def release_input():
    population = generate_population(PopulationConfig(size=300, zip_count=15), rng=2)
    return gic_release(population)


class TestSuppressionBaseline:
    def test_survivors_have_multiplicity_k(self):
        schema = Schema(
            [Attribute("x", IntegerDomain(0, 3), AttributeKind.QUASI_IDENTIFIER)]
        )
        data = Dataset(schema, [(0,), (0,), (0,), (1,), (2,), (2,)])
        release = suppress_small_classes(data, k=2)
        assert len(release) == 5  # the lone (1,) was suppressed
        assert release.suppressed_count == 1

    def test_sparse_data_mostly_suppressed(self, release_input):
        release = suppress_small_classes(release_input, k=2)
        assert release.suppressed_count > 0.9 * len(release_input)

    def test_survivors_are_raw(self):
        schema = Schema(
            [Attribute("x", IntegerDomain(0, 3), AttributeKind.QUASI_IDENTIFIER)]
        )
        data = Dataset(schema, [(0,), (0,)])
        release = suppress_small_classes(data, k=2)
        assert all(value.is_singleton for record in release for value in record.values)

    def test_invalid_parameters(self, release_input):
        with pytest.raises(ValueError):
            suppress_small_classes(release_input, k=0)
        with pytest.raises(KeyError):
            suppress_small_classes(release_input, k=2, quasi_identifiers=["height"])


class TestMetrics:
    def test_discernibility_sums_squares(self):
        data = uniform_bits_distribution(8).sample(40, rng=0)
        release = AgreementAnonymizer(4).anonymize(data)
        classes = release.class_sizes()
        assert discernibility_metric(release) == sum(size**2 for size in classes)

    def test_discernibility_penalizes_suppression(self, release_input):
        release = suppress_small_classes(release_input, k=2)
        metric = discernibility_metric(release)
        assert metric >= release.suppressed_count * len(release_input)

    def test_average_class_size_ratio(self):
        data = uniform_bits_distribution(8).sample(40, rng=1)
        release = AgreementAnonymizer(4).anonymize(data)
        # All groups exactly 4 -> ratio 1.0.
        assert average_class_size_ratio(release, 4) == pytest.approx(1.0)

    def test_precision_bounds(self, release_input):
        release = MondrianAnonymizer(k=5).anonymize(release_input)
        precision = generalization_precision(release)
        assert 0.0 < precision < 1.0

    def test_precision_zero_for_raw_release(self):
        schema = Schema(
            [Attribute("x", IntegerDomain(0, 3), AttributeKind.QUASI_IDENTIFIER)]
        )
        data = Dataset(schema, [(0,), (0,)])
        release = suppress_small_classes(data, k=2)
        assert generalization_precision(release) == 0.0

    def test_more_generalization_higher_precision_score(self, release_input):
        fine = MondrianAnonymizer(k=2).anonymize(release_input)
        coarse = MondrianAnonymizer(k=30).anonymize(release_input)
        assert generalization_precision(coarse) > generalization_precision(fine)

    def test_utility_report_keys(self, release_input):
        release = MondrianAnonymizer(k=5).anonymize(release_input)
        report = utility_report(release, 5)
        assert {"records", "suppressed", "classes", "discernibility",
                "avg_class_size_ratio", "precision"} <= set(report)

    def test_empty_release_rejected(self, release_input):
        empty = GeneralizedDataset(release_input.schema, [])
        with pytest.raises(ValueError):
            average_class_size_ratio(empty, 2)
        with pytest.raises(ValueError):
            generalization_precision(empty)
