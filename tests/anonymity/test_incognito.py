"""Tests for the Incognito lattice-search anonymizer."""

import pytest

from repro.anonymity.checks import is_k_anonymous
from repro.anonymity.datafly import DataflyAnonymizer
from repro.anonymity.incognito import IncognitoAnonymizer
from repro.anonymity.metrics import generalization_precision
from repro.data.dataset import Dataset
from repro.data.population import PopulationConfig, generate_population, gic_release


@pytest.fixture(scope="module")
def release_input():
    population = generate_population(PopulationConfig(size=350, zip_count=20), rng=3)
    return gic_release(population)


class TestIncognito:
    @pytest.mark.parametrize("k", [2, 5])
    def test_output_is_k_anonymous(self, release_input, k):
        release = IncognitoAnonymizer(k=k, max_suppression=0.02).anonymize(release_input)
        assert is_k_anonymous(release, k)

    def test_consistency(self, release_input):
        release = IncognitoAnonymizer(k=4, max_suppression=0.02).anonymize(release_input)
        assert release.is_consistent_with(release_input)

    def test_optimality_beats_or_matches_datafly(self, release_input):
        """The lattice optimum never generalizes more than the greedy heuristic."""
        incognito = IncognitoAnonymizer(k=5, max_suppression=0.02)
        incognito_release = incognito.anonymize(release_input)
        datafly = DataflyAnonymizer(k=5, max_suppression=0.02)
        datafly_release = datafly.anonymize(release_input)
        assert sum(incognito.last_levels.values()) <= sum(datafly.last_levels.values())
        # Lower total height should show up as better (or equal) precision.
        assert generalization_precision(incognito_release) <= generalization_precision(
            datafly_release
        ) + 1e-9

    def test_minimality_no_lower_vector_suffices(self, release_input):
        """Lowering any single coordinate of the optimum must break k-anonymity."""
        anonymizer = IncognitoAnonymizer(k=5, max_suppression=0.0)
        anonymizer.anonymize(release_input)
        optimum = anonymizer.last_levels
        from collections import Counter

        from repro.data.hierarchy import default_hierarchy

        qi_names = list(optimum)
        hierarchies = {
            name: default_hierarchy(release_input.schema.attribute(name).domain)
            for name in qi_names
        }
        for lowered in qi_names:
            if optimum[lowered] == 0:
                continue
            vector = dict(optimum)
            vector[lowered] -= 1
            keys = [
                tuple(
                    hierarchies[name].generalize(record[name], vector[name])
                    for name in qi_names
                )
                for record in release_input
            ]
            frequencies = Counter(keys)
            assert min(frequencies.values()) < 5  # strictly cheaper vector fails

    def test_zero_suppression_budget(self, release_input):
        release = IncognitoAnonymizer(k=3, max_suppression=0.0).anonymize(release_input)
        assert release.suppressed_count == 0
        assert is_k_anonymous(release, 3)

    def test_precision_cost_mode(self, release_input):
        anonymizer = IncognitoAnonymizer(k=3, cost="precision")
        release = anonymizer.anonymize(release_input)
        assert is_k_anonymous(release, 3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IncognitoAnonymizer(k=0)
        with pytest.raises(ValueError):
            IncognitoAnonymizer(k=2, max_suppression=1.0)
        with pytest.raises(ValueError):
            IncognitoAnonymizer(k=2, cost="vibes")

    def test_too_few_records(self, release_input):
        tiny = Dataset(release_input.schema, release_input.rows[:2], validate=False)
        with pytest.raises(ValueError):
            IncognitoAnonymizer(k=5).anonymize(tiny)

    def test_empty(self, release_input):
        empty = Dataset(release_input.schema, [], validate=False)
        assert len(IncognitoAnonymizer(k=5).anonymize(empty)) == 0

    def test_no_quasi_identifiers_rejected(self, release_input):
        projected = release_input.project(["disease"])
        with pytest.raises(ValueError):
            IncognitoAnonymizer(k=2).anonymize(projected)
