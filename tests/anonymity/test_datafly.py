"""Tests for the Datafly-style full-domain generalizer."""

import pytest

from repro.anonymity.checks import is_k_anonymous
from repro.anonymity.datafly import DataflyAnonymizer
from repro.data.dataset import Dataset
from repro.data.hierarchy import IntervalHierarchy, ZipPrefixHierarchy
from repro.data.population import PopulationConfig, generate_population, gic_release


@pytest.fixture(scope="module")
def release_input():
    population = generate_population(PopulationConfig(size=400, zip_count=20), rng=1)
    return gic_release(population)


class TestDatafly:
    @pytest.mark.parametrize("k", [2, 5])
    def test_output_is_k_anonymous(self, release_input, k):
        release = DataflyAnonymizer(k=k).anonymize(release_input)
        assert is_k_anonymous(release, k)

    def test_suppression_within_budget(self, release_input):
        anonymizer = DataflyAnonymizer(k=5, max_suppression=0.05)
        release = anonymizer.anonymize(release_input)
        assert release.suppressed_count <= 0.05 * len(release_input)

    def test_consistency_with_source(self, release_input):
        release = DataflyAnonymizer(k=3).anonymize(release_input)
        assert release.is_consistent_with(release_input)

    def test_full_domain_property(self, release_input):
        # Full-domain generalization: within an attribute, all released
        # cover sets at the chosen level have the same structure (same
        # level), so distinct raw values map to nested-or-disjoint covers.
        anonymizer = DataflyAnonymizer(k=5)
        release = anonymizer.anonymize(release_input)
        levels = anonymizer.last_levels
        assert set(levels) == set(release_input.schema.quasi_identifiers)
        covers = {record["birth_year"].covers for record in release}
        for a in covers:
            for b in covers:
                assert a == b or not (a & b)  # disjoint cells at one level

    def test_custom_hierarchies(self, release_input):
        hierarchies = {
            "zip": ZipPrefixHierarchy(release_input.schema.attribute("zip").domain),
            "birth_year": IntervalHierarchy(
                release_input.schema.attribute("birth_year").domain, widths=(10,)
            ),
        }
        release = DataflyAnonymizer(k=5, hierarchies=hierarchies).anonymize(release_input)
        assert is_k_anonymous(release, 5)

    def test_sensitive_attribute_untouched(self, release_input):
        release = DataflyAnonymizer(k=5).anonymize(release_input)
        assert all(record["disease"].is_singleton for record in release)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DataflyAnonymizer(k=0)
        with pytest.raises(ValueError):
            DataflyAnonymizer(k=2, max_suppression=1.0)

    def test_too_few_records(self, release_input):
        tiny = Dataset(release_input.schema, release_input.rows[:2], validate=False)
        with pytest.raises(ValueError):
            DataflyAnonymizer(k=5).anonymize(tiny)

    def test_empty_dataset(self, release_input):
        empty = Dataset(release_input.schema, [], validate=False)
        assert len(DataflyAnonymizer(k=5).anonymize(empty)) == 0

    def test_levels_recorded(self, release_input):
        anonymizer = DataflyAnonymizer(k=5)
        anonymizer.anonymize(release_input)
        assert all(level >= 0 for level in anonymizer.last_levels.values())
