"""Bit-identity of the batched answering path against the per-query loop.

The contract under test: for any answerer with any fixed seed,
``answer_workload`` returns *exactly* the answers the per-query ``answer``
loop would return from the same RNG state — same floating-point bits, any
batch split — and the ``queries_answered`` counter advances by ``m``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries.mechanism import (
    BoundedNoiseAnswerer,
    BudgetedAnswerer,
    ExactAnswerer,
    GaussianAnswerer,
    LaplaceAnswerer,
    QueryBudgetExceeded,
    RoundingAnswerer,
    SubsamplingAnswerer,
)
from repro.queries.workload import Workload
from repro.utils.rng import derive_rng


def _make_data(n: int, seed: int = 17) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 2, size=n)


#: (name, factory) for every answerer class; factories take (data, seed) so
#: each path of a comparison can rebuild an identically seeded instance.
ANSWERER_FACTORIES = [
    ("exact", lambda data, seed: ExactAnswerer(data)),
    (
        "bounded-uniform",
        lambda data, seed: BoundedNoiseAnswerer(
            data, alpha=3.0, shape="uniform", rng=derive_rng(seed, "u")
        ),
    ),
    (
        "bounded-extremes",
        lambda data, seed: BoundedNoiseAnswerer(
            data, alpha=2.0, shape="extremes", rng=derive_rng(seed, "x")
        ),
    ),
    (
        "bounded-zero-alpha",
        lambda data, seed: BoundedNoiseAnswerer(
            data, alpha=0.0, rng=derive_rng(seed, "z")
        ),
    ),
    ("rounding", lambda data, seed: RoundingAnswerer(data, step=3)),
    (
        "subsampling",
        lambda data, seed: SubsamplingAnswerer(
            data, rate=0.5, rng=derive_rng(seed, "s")
        ),
    ),
    (
        "laplace",
        lambda data, seed: LaplaceAnswerer(
            data, epsilon_per_query=0.7, rng=derive_rng(seed, "l")
        ),
    ),
    (
        "gaussian",
        lambda data, seed: GaussianAnswerer(
            data, epsilon_per_query=0.9, delta_per_query=1e-5, rng=derive_rng(seed, "g")
        ),
    ),
    (
        "budgeted",
        lambda data, seed: BudgetedAnswerer(
            BoundedNoiseAnswerer(data, alpha=2.0, rng=derive_rng(seed, "b")),
            max_queries=10_000,
        ),
    ),
]

FACTORY_IDS = [name for name, _factory in ANSWERER_FACTORIES]
FACTORIES = [factory for _name, factory in ANSWERER_FACTORIES]


@pytest.mark.parametrize("factory", FACTORIES, ids=FACTORY_IDS)
class TestBitIdentity:
    def test_workload_matches_per_query_loop(self, factory):
        n, m = 40, 97
        data = _make_data(n)
        workload = Workload.random(n, m, rng=derive_rng(0, "w"))

        loop_answerer = factory(data, 123)
        loop_answers = np.array([loop_answerer.answer(q) for q in workload])

        batch_answerer = factory(data, 123)
        batch_answers = batch_answerer.answer_workload(workload)

        assert batch_answers.shape == (m,)
        assert np.array_equal(loop_answers, batch_answers)  # bitwise, no tolerance

    def test_chunked_answering_matches_one_shot(self, factory):
        # Any batch split consumes the RNG stream in query order, so chunked
        # answering over workload slices equals the one-shot call bitwise.
        n, m, chunk = 24, 131, 37
        data = _make_data(n)
        workload = Workload.random(n, m, rng=derive_rng(1, "w"))

        one_shot = factory(data, 5).answer_workload(workload)

        chunked_answerer = factory(data, 5)
        masks = workload.masks
        chunks = [
            chunked_answerer.answer_workload(Workload(masks[start : start + chunk]))
            for start in range(0, m, chunk)
        ]
        assert np.array_equal(np.concatenate(chunks), one_shot)

    def test_counter_advances_by_m(self, factory):
        n, m = 16, 29
        data = _make_data(n)
        workload = Workload.random(n, m, rng=derive_rng(2, "w"))
        answerer = factory(data, 9)
        assert answerer.queries_answered == 0
        answerer.answer_workload(workload)
        assert answerer.queries_answered == m
        answerer.answer_workload(workload)
        assert answerer.queries_answered == 2 * m

    def test_query_list_coerced(self, factory):
        # answer_workload accepts a plain list of SubsetQuery objects.
        n = 12
        data = _make_data(n)
        workload = Workload.random(n, 8, rng=derive_rng(3, "w"))
        from_list = factory(data, 4).answer_workload(list(workload))
        from_workload = factory(data, 4).answer_workload(workload)
        assert np.array_equal(from_list, from_workload)

    def test_wrong_n_rejected(self, factory):
        answerer = factory(_make_data(10), 1)
        workload = Workload.random(11, 4, rng=0)
        with pytest.raises(ValueError):
            answerer.answer_workload(workload)


@given(
    n=st.integers(2, 24),
    m=st.integers(1, 60),
    factory_index=st.integers(0, len(FACTORIES) - 1),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=60, deadline=None)
def test_bit_identity_property(n, m, factory_index, seed):
    """Random (n, m, answerer, seed): batched equals the loop, bitwise."""
    factory = FACTORIES[factory_index]
    data = np.random.default_rng(seed).integers(0, 2, size=n)
    workload = Workload.random(n, m, rng=derive_rng(seed, "w"))
    loop_answerer = factory(data, seed)
    loop = np.array([loop_answerer.answer(q) for q in workload])
    batch = factory(data, seed).answer_workload(workload)
    assert np.array_equal(loop, batch)


class TestBudgetedWorkloads:
    def _answerer(self, max_queries: int) -> BudgetedAnswerer:
        return BudgetedAnswerer(ExactAnswerer(_make_data(8)), max_queries=max_queries)

    def test_oversized_workload_refused_without_consumption(self):
        answerer = self._answerer(10)
        workload = Workload.random(8, 11, rng=0)
        with pytest.raises(QueryBudgetExceeded):
            answerer.answer_workload(workload)
        # All-or-nothing: the refused workload consumed no budget at all.
        assert answerer.queries_answered == 0
        assert answerer.remaining == 10

    def test_exact_fit_consumes_whole_budget(self):
        answerer = self._answerer(10)
        workload = Workload.random(8, 10, rng=0)
        answerer.answer_workload(workload)
        assert answerer.remaining == 0
        with pytest.raises(QueryBudgetExceeded):
            answerer.answer(workload[0])

    def test_mixed_scalar_and_batched_accounting(self):
        answerer = self._answerer(10)
        workload = Workload.random(8, 6, rng=0)
        answerer.answer(workload[0])
        answerer.answer_workload(workload)
        assert answerer.queries_answered == 7
        with pytest.raises(QueryBudgetExceeded):
            answerer.answer_workload(workload)  # 6 > 3 remaining
        assert answerer.queries_answered == 7


class TestWorkloadClass:
    def test_masks_read_only(self):
        workload = Workload.random(6, 3, rng=0)
        with pytest.raises(ValueError):
            workload.masks[0, 0] = False

    def test_sparse_matrix_cached(self):
        workload = Workload.random(6, 3, rng=0)
        assert workload.matrix(sparse=True) is workload.matrix(sparse=True)

    def test_matrix_dtypes(self):
        workload = Workload.random(6, 3, rng=0)
        assert workload.matrix().dtype == np.float64
        assert workload.matrix(dtype=bool).dtype == bool
        assert workload.matrix(dtype=np.int64, sparse=True).dtype == np.int64

    def test_true_answers_match_per_query(self):
        workload = Workload.random(20, 50, rng=1)
        data = _make_data(20)
        expected = np.array([q.true_answer(data) for q in workload])
        answers = workload.true_answers(data)
        assert answers.dtype == np.int64
        assert np.array_equal(answers, expected)

    def test_true_answers_validates_by_default(self):
        workload = Workload.random(4, 2, rng=0)
        with pytest.raises(ValueError):
            workload.true_answers(np.array([0, 1, 2, 0]))

    def test_from_queries_roundtrip(self):
        workload = Workload.random(9, 7, rng=2)
        rebuilt = Workload.from_queries(list(workload))
        assert np.array_equal(workload.masks, rebuilt.masks)

    def test_coerce_passthrough(self):
        workload = Workload.random(5, 4, rng=3)
        assert Workload.coerce(workload) is workload

    def test_all_subsets_matches_bit_enumeration(self):
        workload = Workload.all_subsets(3)
        assert workload.m == 7
        # Row b-1 is the little-endian bit expansion of b.
        assert workload.masks[0].tolist() == [True, False, False]
        assert workload.masks[6].tolist() == [True, True, True]

    def test_random_has_no_empty_queries(self):
        workload = Workload.random(3, 200, density=0.05, rng=4)
        assert workload.masks.any(axis=1).all()

    def test_degenerate_shapes_rejected(self):
        with pytest.raises(ValueError):
            Workload(np.zeros((0, 4), dtype=bool))
        with pytest.raises(ValueError):
            Workload(np.zeros((4, 0), dtype=bool))
        with pytest.raises(ValueError):
            Workload(np.zeros(4, dtype=bool))
