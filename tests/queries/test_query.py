"""Tests for subset queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries.query import SubsetQuery, queries_to_matrix


class TestSubsetQuery:
    def test_true_answer(self):
        query = SubsetQuery([True, False, True, True])
        data = np.array([1, 1, 0, 1])
        assert query.true_answer(data) == 2

    def test_from_indices(self):
        query = SubsetQuery.from_indices([0, 3], n=5)
        assert query.size == 2
        assert list(query.indices()) == [0, 3]

    def test_from_indices_out_of_range(self):
        with pytest.raises(ValueError):
            SubsetQuery.from_indices([5], n=5)

    def test_from_indices_negative_rejected(self):
        with pytest.raises(ValueError):
            SubsetQuery.from_indices([-1], n=5)

    def test_from_indices_non_integer_rejected(self):
        with pytest.raises(ValueError):
            SubsetQuery.from_indices([0.5], n=5)

    def test_from_indices_empty(self):
        query = SubsetQuery.from_indices([], n=3)
        assert query.size == 0

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            SubsetQuery(np.array([], dtype=bool))

    def test_two_dimensional_mask_rejected(self):
        with pytest.raises(ValueError):
            SubsetQuery(np.zeros((2, 2), dtype=bool))

    def test_mask_is_readonly(self):
        query = SubsetQuery([True, False])
        with pytest.raises(ValueError):
            query.mask[0] = False

    def test_equality_and_hash(self):
        a = SubsetQuery([True, False])
        b = SubsetQuery([True, False])
        c = SubsetQuery([False, True])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_wrong_data_shape_rejected(self):
        query = SubsetQuery([True, False])
        with pytest.raises(ValueError):
            query.true_answer(np.array([1, 0, 1]))

    def test_non_binary_data_rejected(self):
        query = SubsetQuery([True, False])
        with pytest.raises(ValueError):
            query.true_answer(np.array([2, 0]))

    @given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_full_query_counts_all_ones(self, bits):
        data = np.array(bits)
        query = SubsetQuery(np.ones(len(bits), dtype=bool))
        assert query.true_answer(data) == sum(bits)


class TestQueriesToMatrix:
    def test_stacks_masks(self):
        queries = [SubsetQuery([True, False]), SubsetQuery([True, True])]
        matrix = queries_to_matrix(queries)
        assert matrix.shape == (2, 2)
        assert matrix.tolist() == [[1.0, 0.0], [1.0, 1.0]]

    def test_mismatched_sizes_rejected(self):
        queries = [SubsetQuery([True]), SubsetQuery([True, False])]
        with pytest.raises(ValueError):
            queries_to_matrix(queries)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            queries_to_matrix([])

    def test_dtype_option(self):
        queries = [SubsetQuery([True, False]), SubsetQuery([True, True])]
        matrix = queries_to_matrix(queries, dtype=np.int64)
        assert matrix.dtype == np.int64
        assert queries_to_matrix(queries, dtype=bool).dtype == bool

    def test_sparse_option(self):
        import scipy.sparse

        queries = [SubsetQuery([True, False]), SubsetQuery([False, True])]
        matrix = queries_to_matrix(queries, sparse=True)
        assert scipy.sparse.issparse(matrix)
        assert matrix.format == "csr"
        assert np.array_equal(
            matrix.toarray(), queries_to_matrix(queries)
        )
