"""Tests for query-workload generators."""

import numpy as np
import pytest
import scipy.sparse

from repro.queries.workload import (
    Workload,
    all_subset_queries,
    random_subset_queries,
    singleton_queries,
)


class TestAllSubsetQueries:
    def test_count(self):
        queries = all_subset_queries(4)
        assert len(queries) == 15  # 2^4 - 1

    def test_include_empty(self):
        queries = all_subset_queries(3, include_empty=True)
        assert len(queries) == 8

    def test_all_distinct(self):
        queries = all_subset_queries(5)
        assert len(set(queries)) == 31

    def test_cap_enforced(self):
        with pytest.raises(ValueError):
            all_subset_queries(25)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            all_subset_queries(0)


class TestRandomSubsetQueries:
    def test_count_and_size(self):
        queries = random_subset_queries(30, 12, rng=0)
        assert len(queries) == 12
        assert all(q.n == 30 for q in queries)

    def test_no_empty_queries(self):
        queries = random_subset_queries(3, 50, density=0.1, rng=1)
        assert all(q.size >= 1 for q in queries)

    def test_density_controls_size(self):
        sparse = random_subset_queries(200, 30, density=0.1, rng=2)
        dense = random_subset_queries(200, 30, density=0.9, rng=2)
        assert sum(q.size for q in sparse) < sum(q.size for q in dense)

    def test_deterministic(self):
        a = random_subset_queries(20, 5, rng=3)
        b = random_subset_queries(20, 5, rng=3)
        assert a == b

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            random_subset_queries(0, 5)
        with pytest.raises(ValueError):
            random_subset_queries(5, 0)
        with pytest.raises(ValueError):
            random_subset_queries(5, 5, density=1.0)


class TestCsrBackedWorkloads:
    def _workload(self, m=12, n=8, seed=0):
        return Workload.random(n, m, rng=seed)

    def test_from_csr_round_trips(self):
        reference = self._workload()
        rebuilt = Workload.from_csr(reference.matrix(sparse=True))
        assert rebuilt.m == reference.m and rebuilt.n == reference.n
        assert np.array_equal(rebuilt.masks, reference.masks)

    def test_from_csr_is_lazy_about_masks(self):
        csr = scipy.sparse.csr_matrix(np.eye(4))
        workload = Workload.from_csr(csr)
        # The dense boolean view is only built when something asks for it.
        assert workload._masks is None
        assert workload.masks.shape == (4, 4)
        assert workload._masks is not None

    def test_from_csr_shares_assembly_without_copy(self):
        csr = scipy.sparse.csr_matrix(np.eye(3))
        workload = Workload.from_csr(csr, copy=False)
        # copy=False shares the underlying CSR buffers with the input.
        assert np.shares_memory(workload.matrix(sparse=True).data, csr.data)

    def test_from_csr_rejects_empty(self):
        with pytest.raises(ValueError):
            Workload.from_csr(scipy.sparse.csr_matrix((0, 5)))
        with pytest.raises(ValueError):
            Workload.from_csr(scipy.sparse.csr_matrix((5, 0)))

    def test_select_columns_slices_queries(self):
        workload = self._workload(seed=1)
        idx = np.array([1, 3, 6])
        sliced = workload.select_columns(idx)
        assert sliced.m == workload.m and sliced.n == 3
        assert np.array_equal(sliced.masks, workload.masks[:, idx])

    def test_select_rows_slices_queries(self):
        workload = self._workload(seed=2)
        idx = np.array([0, 5, 9])
        sliced = workload.select_rows(idx)
        assert sliced.m == 3 and sliced.n == workload.n
        assert np.array_equal(sliced.masks, workload.masks[idx])

    def test_slices_answer_consistently(self):
        # Answers of a column-slice on the restricted data match the full
        # workload's answers restricted to queries supported inside the slice.
        workload = self._workload(m=20, n=10, seed=3)
        data = np.arange(10) % 2
        idx = np.arange(10)  # identity slice: answers must be identical
        assert np.array_equal(
            workload.select_columns(idx).true_answers(data),
            workload.true_answers(data),
        )

    def test_slice_validation(self):
        workload = self._workload()
        with pytest.raises(ValueError):
            workload.select_columns(np.array([], dtype=np.intp))
        with pytest.raises(ValueError):
            workload.select_rows(np.zeros((2, 2), dtype=np.intp))


class TestSingletonQueries:
    def test_identity_structure(self):
        queries = singleton_queries(4)
        assert len(queries) == 4
        for i, query in enumerate(queries):
            assert query.size == 1
            assert list(query.indices()) == [i]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            singleton_queries(0)
