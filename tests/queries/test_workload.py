"""Tests for query-workload generators."""

import pytest

from repro.queries.workload import (
    all_subset_queries,
    random_subset_queries,
    singleton_queries,
)


class TestAllSubsetQueries:
    def test_count(self):
        queries = all_subset_queries(4)
        assert len(queries) == 15  # 2^4 - 1

    def test_include_empty(self):
        queries = all_subset_queries(3, include_empty=True)
        assert len(queries) == 8

    def test_all_distinct(self):
        queries = all_subset_queries(5)
        assert len(set(queries)) == 31

    def test_cap_enforced(self):
        with pytest.raises(ValueError):
            all_subset_queries(25)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            all_subset_queries(0)


class TestRandomSubsetQueries:
    def test_count_and_size(self):
        queries = random_subset_queries(30, 12, rng=0)
        assert len(queries) == 12
        assert all(q.n == 30 for q in queries)

    def test_no_empty_queries(self):
        queries = random_subset_queries(3, 50, density=0.1, rng=1)
        assert all(q.size >= 1 for q in queries)

    def test_density_controls_size(self):
        sparse = random_subset_queries(200, 30, density=0.1, rng=2)
        dense = random_subset_queries(200, 30, density=0.9, rng=2)
        assert sum(q.size for q in sparse) < sum(q.size for q in dense)

    def test_deterministic(self):
        a = random_subset_queries(20, 5, rng=3)
        b = random_subset_queries(20, 5, rng=3)
        assert a == b

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            random_subset_queries(0, 5)
        with pytest.raises(ValueError):
            random_subset_queries(5, 0)
        with pytest.raises(ValueError):
            random_subset_queries(5, 5, density=1.0)


class TestSingletonQueries:
    def test_identity_structure(self):
        queries = singleton_queries(4)
        assert len(queries) == 4
        for i, query in enumerate(queries):
            assert query.size == 1
            assert list(query.indices()) == [i]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            singleton_queries(0)
