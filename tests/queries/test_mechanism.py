"""Tests for the query-answering mechanisms and their noise envelopes."""

import numpy as np
import pytest

from repro.queries.mechanism import (
    BoundedNoiseAnswerer,
    ExactAnswerer,
    LaplaceAnswerer,
    RoundingAnswerer,
    SubsamplingAnswerer,
)
from repro.queries.query import SubsetQuery
from repro.queries.workload import random_subset_queries


@pytest.fixture
def data():
    return np.random.default_rng(0).integers(0, 2, size=50)


class TestExactAnswerer:
    def test_exact(self, data):
        answerer = ExactAnswerer(data)
        query = SubsetQuery(np.ones(50, dtype=bool))
        assert answerer.answer(query) == data.sum()
        assert answerer.error_bound == 0.0

    def test_query_counter(self, data):
        answerer = ExactAnswerer(data)
        queries = random_subset_queries(50, 7, rng=1)
        answerer.answer_workload(queries)
        assert answerer.queries_answered == 7

    def test_answer_all_is_an_alias_of_answer_workload(self, data):
        queries = random_subset_queries(50, 7, rng=1)
        via_alias = ExactAnswerer(data).answer_all(queries)
        via_workload = ExactAnswerer(data).answer_workload(queries)
        assert np.array_equal(via_alias, via_workload)

    def test_size_mismatch_rejected(self, data):
        answerer = ExactAnswerer(data)
        with pytest.raises(ValueError):
            answerer.answer(SubsetQuery(np.ones(10, dtype=bool)))

    def test_non_binary_data_rejected(self):
        with pytest.raises(ValueError):
            ExactAnswerer(np.array([0, 1, 2]))


class TestBoundedNoise:
    def test_error_within_alpha(self, data):
        answerer = BoundedNoiseAnswerer(data, alpha=3.0, rng=0)
        for query in random_subset_queries(50, 30, rng=1):
            answer = answerer.answer(query)
            assert abs(answer - query.true_answer(data)) <= 3.0 + 1e-12

    def test_zero_alpha_is_exact(self, data):
        answerer = BoundedNoiseAnswerer(data, alpha=0.0, rng=0)
        query = SubsetQuery(np.ones(50, dtype=bool))
        assert answerer.answer(query) == data.sum()

    def test_extremes_shape(self, data):
        answerer = BoundedNoiseAnswerer(data, alpha=2.0, shape="extremes", rng=0)
        query = SubsetQuery(np.ones(50, dtype=bool))
        deviations = {abs(answerer.answer(query) - data.sum()) for _ in range(20)}
        assert deviations == {2.0}

    def test_negative_alpha_rejected(self, data):
        with pytest.raises(ValueError):
            BoundedNoiseAnswerer(data, alpha=-1.0)

    def test_unknown_shape_rejected(self, data):
        with pytest.raises(ValueError):
            BoundedNoiseAnswerer(data, alpha=1.0, shape="weird")


class TestRounding:
    def test_rounds_to_grid(self, data):
        answerer = RoundingAnswerer(data, step=5)
        for query in random_subset_queries(50, 10, rng=2):
            assert answerer.answer(query) % 5 == 0

    def test_error_bound_is_half_step(self, data):
        answerer = RoundingAnswerer(data, step=5)
        assert answerer.error_bound == 2.5
        for query in random_subset_queries(50, 20, rng=3):
            answer = answerer.answer(query)
            assert abs(answer - query.true_answer(data)) <= 2.5

    def test_invalid_step(self, data):
        with pytest.raises(ValueError):
            RoundingAnswerer(data, step=0)


class TestSubsampling:
    def test_unbiased_scale(self, data):
        answerer = SubsamplingAnswerer(data, rate=0.5, rng=4)
        query = SubsetQuery(np.ones(50, dtype=bool))
        answer = answerer.answer(query)
        # Scaled answer should be in a plausible range around the truth.
        assert 0 <= answer <= 2 * 50

    def test_rate_one_is_exact(self, data):
        answerer = SubsamplingAnswerer(data, rate=1.0, rng=5)
        query = SubsetQuery(np.ones(50, dtype=bool))
        assert answerer.answer(query) == pytest.approx(float(data.sum()))

    def test_invalid_rate(self, data):
        with pytest.raises(ValueError):
            SubsamplingAnswerer(data, rate=0.0)
        with pytest.raises(ValueError):
            SubsamplingAnswerer(data, rate=1.5)


class TestLaplaceAnswerer:
    def test_unbounded_error_declared(self, data):
        answerer = LaplaceAnswerer(data, epsilon_per_query=1.0, rng=6)
        assert answerer.error_bound == float("inf")

    def test_epsilon_accounting(self, data):
        answerer = LaplaceAnswerer(data, epsilon_per_query=0.5, rng=7)
        answerer.answer_workload(random_subset_queries(50, 4, rng=8))
        assert answerer.epsilon_spent == pytest.approx(2.0)

    def test_noise_is_centered(self, data):
        answerer = LaplaceAnswerer(data, epsilon_per_query=1.0, rng=9)
        query = SubsetQuery(np.ones(50, dtype=bool))
        answers = [answerer.answer(query) for _ in range(3_000)]
        assert np.mean(answers) == pytest.approx(float(data.sum()), abs=0.2)

    def test_invalid_epsilon(self, data):
        with pytest.raises(ValueError):
            LaplaceAnswerer(data, epsilon_per_query=0.0)


class TestBudgetedAnswerer:
    def test_enforces_budget(self, data):
        from repro.queries.mechanism import BudgetedAnswerer, QueryBudgetExceeded

        answerer = BudgetedAnswerer(ExactAnswerer(data), max_queries=3)
        queries = random_subset_queries(50, 4, rng=10)
        for query in queries[:3]:
            answerer.answer(query)
        assert answerer.remaining == 0
        with pytest.raises(QueryBudgetExceeded):
            answerer.answer(queries[3])

    def test_passes_through_answers_and_bound(self, data):
        from repro.queries.mechanism import BudgetedAnswerer

        inner = BoundedNoiseAnswerer(data, alpha=2.0, rng=11)
        answerer = BudgetedAnswerer(inner, max_queries=10)
        assert answerer.error_bound == 2.0
        query = random_subset_queries(50, 1, rng=12)[0]
        answer = answerer.answer(query)
        assert abs(answer - query.true_answer(data)) <= 2.0

    def test_blocks_lp_attack_below_budget(self, data):
        """The 'limit the number of queries' defense in action."""
        from repro.queries.mechanism import BudgetedAnswerer, QueryBudgetExceeded
        from repro.reconstruction.lp_decode import lp_reconstruction

        answerer = BudgetedAnswerer(ExactAnswerer(data), max_queries=10)
        with pytest.raises(QueryBudgetExceeded):
            lp_reconstruction(answerer, num_queries=8 * 50, rng=13)

    def test_invalid_budget(self, data):
        from repro.queries.mechanism import BudgetedAnswerer

        with pytest.raises(ValueError):
            BudgetedAnswerer(ExactAnswerer(data), max_queries=0)
