"""Integration tests: full pipelines across subsystems.

Each test walks one of the paper's narratives end to end — data generation,
defense, attack, verdict — exercising the public API the way the examples
do.
"""

import pytest

from repro.anonymity import MondrianAnonymizer, is_k_anonymous
from repro.attacks import linkage_attack
from repro.core import (
    KAnonymityMechanism,
    KAnonymityPSOAttacker,
    PSOGame,
)
from repro.core.theorems import TheoremCheck
from repro.data.distributions import ProductDistribution, uniform_bits_schema
from repro.data.domain import CategoricalDomain
from repro.data.population import (
    QUASI_IDENTIFIERS,
    PopulationConfig,
    generate_population,
    gic_release,
    voter_registry,
)
from repro.data.schema import Attribute, AttributeKind, Schema
from repro.legal import legal_corollary_2_1, legal_theorem_2_1
from repro.legal.claims import DerivationError


pytestmark = pytest.mark.slow


class TestSweeneyNarrative:
    """Section 1: redaction fails, k-anonymity stops the unique-match join."""

    def test_redaction_fails_then_kanonymity_blocks_linkage(self):
        population = generate_population(
            PopulationConfig(size=1_500, zip_count=60), rng=0
        )
        release = gic_release(population)
        voters = voter_registry(population, coverage=0.9, rng=1)

        raw_attack = linkage_attack(release, voters, QUASI_IDENTIFIERS, truth=population)
        assert raw_attack.reidentified_rate > 0.7  # redaction alone fails

        anonymized = MondrianAnonymizer(
            k=5, quasi_identifiers=QUASI_IDENTIFIERS
        ).anonymize(release)
        assert is_k_anonymous(anonymized, 5)
        # No unique QI combination survives, so exact-join linkage is dead.
        classes = anonymized.equivalence_classes()
        assert min(len(rows) for rows in classes.values()) >= 1


class TestPsoNarrative:
    """Section 2: the same k-anonymous release fails predicate singling out."""

    def test_kanonymous_yet_pso_broken_yields_legal_theorem(self):
        bits = uniform_bits_schema(96)
        schema = Schema(
            list(bits.attributes)
            + [
                Attribute(
                    "secret", CategoricalDomain(range(40)), AttributeKind.SENSITIVE
                )
            ]
        )
        distribution = ProductDistribution.uniform(schema)

        from repro.anonymity import AgreementAnonymizer

        mechanism = KAnonymityMechanism(AgreementAnonymizer(4), label="agreement")
        game = PSOGame(distribution, 200, mechanism, KAnonymityPSOAttacker("auto"))
        result = game.run(40, rng=2)
        assert result.success.estimate >= 0.8  # k-anonymous but PSO-broken

        # Package the measurement as evidence and derive the legal theorem.
        evidence = TheoremCheck(
            theorem="2.10",
            claim="k-anonymity fails PSO (measured in-line)",
            passed=result.success.estimate >= 0.8,
            measurements={"success": str(result.success)},
        )
        verdict = legal_theorem_2_1(evidence, evidence)
        assert "GDPR" in verdict.claim.conclusion
        corollary = legal_corollary_2_1(verdict)
        assert "anonymization" in corollary.claim.conclusion

    def test_failed_attack_blocks_the_legal_conclusion(self):
        bad_evidence = TheoremCheck(
            theorem="2.10", claim="attack failed this time", passed=False
        )
        with pytest.raises(DerivationError):
            legal_theorem_2_1(bad_evidence, bad_evidence)


class TestCensusNarrative:
    """Section 1: tables -> reconstruction -> re-identification."""

    def test_tables_to_reidentification(self):
        from repro.data.censusblocks import (
            CensusConfig,
            commercial_database,
            generate_census,
        )
        from repro.reconstruction import (
            reconstruct_census,
            reidentify,
            tabulate_blocks,
        )

        census = generate_census(CensusConfig(blocks=16, mean_block_size=10), rng=3)
        tables = tabulate_blocks(census)
        reconstruction = reconstruct_census(tables, truth=census)
        assert reconstruction.exact_match_fraction > 0.3

        commercial = commercial_database(census, coverage=0.6, rng=4)
        reid = reidentify(reconstruction, commercial, census)
        assert reid.reidentified_rate > 0.03
        assert reid.precision > 0.2
