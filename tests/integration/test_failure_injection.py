"""Failure-injection tests: the library under adversarial/broken inputs.

A production reproduction must degrade honestly: lying mechanisms get
caught, inconsistent publications still produce output through documented
fallbacks, and bad evidence blocks legal conclusions instead of tainting
them.
"""

import numpy as np
import pytest

from repro.queries.mechanism import QueryAnswerer
from repro.queries.query import SubsetQuery


class LyingAnswerer(QueryAnswerer):
    """Claims zero error but answers with large bias — a broken guarantee."""

    def __init__(self, data, bias=10.0):
        super().__init__(data)
        self.bias = bias

    @property
    def error_bound(self) -> float:
        return 0.0  # a lie

    def _noisy(self, query: SubsetQuery) -> float:
        return float(query.true_answer(self._data) + self.bias)


class TestLyingMechanisms:
    def test_exhaustive_reconstruction_detects_the_lie(self):
        """No candidate is consistent with impossible answers at alpha=0."""
        from repro.reconstruction.dinur_nissim import exhaustive_reconstruction

        data = np.array([1, 0, 1, 0, 1, 0])
        with pytest.raises(ValueError, match="violated"):
            exhaustive_reconstruction(LyingAnswerer(data))

    def test_lp_reconstruction_degrades_gracefully(self):
        """The LP attack falls back to least-l1 when feasibility fails."""
        from repro.reconstruction.lp_decode import lp_reconstruction

        data = np.random.default_rng(0).integers(0, 2, size=32)
        result = lp_reconstruction(LyingAnswerer(data), rng=1)
        # A constant bias shifts every answer equally; the residual
        # minimization still lands somewhere valid.
        assert result.reconstruction.shape == data.shape

    def test_dp_verifier_catches_underclaimed_epsilon(self):
        from repro.dp import LaplaceMechanism, verify_dp

        loud = LaplaceMechanism(8.0)  # actually 8-DP, claimed 0.1-DP
        verdict = verify_dp(
            lambda d, rng: loud.release(float(np.sum(d)), rng),
            np.array([1, 1, 0]),
            np.array([1, 0, 0]),
            epsilon=0.1,
            trials=6_000,
            rng=0,
        )
        assert not verdict.consistent


class TestInconsistentPublications:
    def test_census_solver_survives_contradictory_tables(self):
        """Rounded tables can make the MILP infeasible; the proportional
        fallback still produces a full reconstruction."""
        from repro.data.censusblocks import CensusConfig, generate_census
        from repro.reconstruction.census_solver import reconstruct_census
        from repro.reconstruction.tabulation import apply_rounding, tabulate_blocks

        census = generate_census(CensusConfig(blocks=6, mean_block_size=10), rng=2)
        tables = apply_rounding(tabulate_blocks(census), base=4)
        result = reconstruct_census(tables, truth=census)
        assert result.population == sum(t.total for t in tables.values())

    def test_block_tables_reject_wrong_totals(self):
        from repro.reconstruction.tabulation import BlockTables

        with pytest.raises(ValueError, match="sums to"):
            BlockTables(
                block=0,
                total=3,
                sex_by_age={("F", 30): 1},
                race_by_ethnicity={("White", "Hispanic"): 3},
                sex_by_race={("F", "White"): 3},
            )


class TestEvidenceDiscipline:
    def test_failed_attack_cannot_support_legal_theorem(self):
        from repro.core.theorems import TheoremCheck
        from repro.legal import legal_theorem_2_1
        from repro.legal.claims import DerivationError

        failed = TheoremCheck(theorem="2.10", claim="attack failed", passed=False)
        with pytest.raises(DerivationError, match="REFUTED"):
            legal_theorem_2_1(failed, failed)

    def test_game_scores_garbage_weight_predicates_honestly(self):
        """An attacker claiming an absurd analytic weight still has to
        isolate; the claim alone wins nothing."""
        from repro.core import ConstantMechanism, PSOGame
        from repro.core.predicate import Predicate
        from repro.data.distributions import uniform_bits_distribution

        class OverclaimingAttacker:
            name = "overclaimer"

            def attack(self, output, context, rng):
                # Claims negligible weight but matches nothing, ever.
                return Predicate(lambda r: False, "never", analytic_weight=1e-12)

        distribution = uniform_bits_distribution(16)
        game = PSOGame(distribution, 50, ConstantMechanism(), OverclaimingAttacker())
        result = game.run(20, rng=3)
        assert result.negligible_weight_rate.estimate == 1.0
        assert result.success.estimate == 0.0  # no isolation, no win
