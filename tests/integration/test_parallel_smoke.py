"""Smoke test: the documented parallel CLI invocation end to end.

Exercises the exact command the docs advertise —
``python -m repro.experiments --quick --jobs 2 E1 E9`` — through ``main``,
covering the experiment-id fan-out path (multiple ids, jobs > 1) and the
single-id jobs passthrough.
"""

from repro.experiments.__main__ import main


class TestParallelCli:
    def test_quick_jobs_two_experiments(self, capsys):
        assert main(["--quick", "--jobs", "2", "E1", "E9"]) == 0
        out = capsys.readouterr().out
        assert "E1:" in out and "E9:" in out
        assert "2 experiments completed" in out

    def test_single_experiment_passes_jobs_down(self, capsys):
        assert main(["--quick", "--jobs", "2", "E9"]) == 0
        out = capsys.readouterr().out
        assert "E9:" in out and "completed in" in out

    def test_parallel_output_matches_serial(self, capsys):
        assert main(["--quick", "--seed", "5", "E9"]) == 0
        serial = capsys.readouterr().out
        assert main(["--quick", "--seed", "5", "--jobs", "2", "E9"]) == 0
        parallel = capsys.readouterr().out

        def tables(text: str) -> str:
            # Drop the timing footer lines; numbers must match exactly.
            return "\n".join(
                line for line in text.splitlines() if not line.startswith("[")
            )

        assert tables(parallel) == tables(serial)
