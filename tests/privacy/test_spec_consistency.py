"""The MechanismSpec is one auditable identity across the whole stack.

The spec an answerer exposes must be the epsilon the server's accountant
charges, the kernel that actually samples, and the object the DP verifier
tests — these tests pin that three-way agreement.
"""

import numpy as np
import pytest

from repro.dp.laplace import LaplaceMechanism
from repro.dp.verify import verify_spec
from repro.privacy.kernels import MechanismSpec
from repro.queries.mechanism import BudgetedAnswerer, LaplaceAnswerer
from repro.queries.query import SubsetQuery
from repro.service import BasicAccountant, QueryServer
from repro.utils.rng import derive_rng


def _query(n, indices):
    mask = np.zeros(n, dtype=bool)
    mask[list(indices)] = True
    return SubsetQuery(mask)


class TestServerChargesTheSpec:
    def test_accountant_charge_equals_spec_epsilon(self):
        data = derive_rng(0, "spec-data").integers(0, 2, size=16)
        accountant = BasicAccountant()
        server = QueryServer(
            data,
            mechanism="laplace",
            mechanism_params={"epsilon_per_query": 0.4},
            accountant=accountant,
            seed=3,
        )
        session = server.session("alice")
        session.ask(_query(16, [0, 3, 5]))
        spec = server.mechanism_spec("alice")
        assert isinstance(spec, MechanismSpec)
        assert spec.dp
        assert accountant.analyst_epsilon("alice") == spec.spend.epsilon == 0.4

    def test_session_spec_property(self):
        data = derive_rng(0, "spec-data").integers(0, 2, size=16)
        server = QueryServer(data, mechanism="exact", seed=1)
        session = server.session("bob")
        assert session.spec.name == "exact"
        assert session.spec.spend.epsilon == 0.0
        assert not session.spec.dp

    def test_duck_typed_answerer_without_spec(self):
        class BareAnswerer:
            error_bound = 0.0
            epsilon_per_query = 0.9

            def __init__(self, data):
                self._data = np.asarray(data)

            def answer(self, query):
                return float(query.true_answer(self._data))

            def answer_workload(self, workload):
                return workload.true_answers(self._data, validate=False)

        data = derive_rng(0, "spec-data").integers(0, 2, size=16)
        server = QueryServer(data, mechanism=lambda d, rng, **p: BareAnswerer(d))
        session = server.session("carol")
        assert session.spec is None
        session.ask(_query(16, [1, 2]))
        # Fallback still reads the declared epsilon_per_query attribute.
        assert server.accountant.analyst_epsilon("carol") == pytest.approx(0.9)


class TestBudgetedAnswererSharesTheSpec:
    def test_wrapper_exposes_inner_spec(self):
        data = derive_rng(0, "spec-data").integers(0, 2, size=16)
        inner = LaplaceAnswerer(data, epsilon_per_query=0.5, rng=derive_rng(0, "b"))
        budgeted = BudgetedAnswerer(inner, max_queries=4)
        assert budgeted.spec is inner.spec
        budgeted.answer(_query(16, [0, 1]))
        assert budgeted.epsilon_spent == pytest.approx(budgeted.spec.spend.epsilon)


class TestVerifierConsumesTheSpec:
    def test_verify_spec_accepts_mechanism_spec(self):
        spec = LaplaceMechanism(1.0).spec()
        x = np.array([1, 0, 1, 1, 0])
        x_prime = np.array([1, 0, 1, 0, 0])
        verdict = verify_spec(
            spec, x, x_prime, trials=400, rng=derive_rng(0, "spec-verify")
        )
        assert verdict.epsilon_claimed == spec.spend.epsilon

    def test_verify_spec_refuses_non_dp_specs(self):
        data = derive_rng(0, "spec-data").integers(0, 2, size=8)
        from repro.queries.mechanism import ExactAnswerer

        spec = ExactAnswerer(data).spec
        with pytest.raises(ValueError, match="makes no DP claim"):
            verify_spec(spec, np.array([1, 0]), np.array([1, 1]))
