"""Golden bit-identity tests for the kernel-delegated answering paths.

The hex-float answers below were recorded from the pre-refactor seed state
(inline ``rng.laplace(...)``-style noise in each answerer).  The refactor
moved every draw into :mod:`repro.privacy.kernels`; these tests pin the
requirement that the move changed *no bit* of any released answer for the
recorded seeds.
"""

import numpy as np
import pytest

from repro.queries.mechanism import (
    BoundedNoiseAnswerer,
    BudgetedAnswerer,
    ExactAnswerer,
    GaussianAnswerer,
    LaplaceAnswerer,
    RoundingAnswerer,
    SubsamplingAnswerer,
)
from repro.queries.workload import Workload
from repro.utils.rng import derive_rng

#: Pre-refactor workload answers, as exact hex floats (data: default_rng(99)
#: bits, n=32; workload: Workload.random(32, 12, rng=derive_rng(7, "golden-w"))).
GOLDEN = {
    "exact": [
        "0x1.a000000000000p+3", "0x1.8000000000000p+2", "0x1.0000000000000p+3",
        "0x1.4000000000000p+3", "0x1.6000000000000p+3", "0x1.8000000000000p+2",
        "0x1.4000000000000p+3", "0x1.0000000000000p+3", "0x1.0000000000000p+3",
        "0x1.2000000000000p+3", "0x1.2000000000000p+3", "0x1.4000000000000p+3",
    ],
    "bounded-uniform": [
        "0x1.8b0a53f5032ffp+3", "0x1.d9e1ac8987187p+2", "0x1.2b9879f6e6695p+3",
        "0x1.5bd033ae046c4p+3", "0x1.9c023ea8c25c6p+3", "0x1.982718155ffe0p+2",
        "0x1.18a986c6df671p+3", "0x1.4ae1ca8ae4b0ap+3", "0x1.5cd6c3cbc406cp+3",
        "0x1.330ca85f13a2ap+3", "0x1.ddb3612cfb80fp+2", "0x1.e8ac8013d25c3p+2",
    ],
    "bounded-extremes": [
        "0x1.e000000000000p+3", "0x1.0000000000000p+2", "0x1.4000000000000p+3",
        "0x1.0000000000000p+3", "0x1.2000000000000p+3", "0x1.0000000000000p+3",
        "0x1.8000000000000p+3", "0x1.4000000000000p+3", "0x1.8000000000000p+2",
        "0x1.c000000000000p+2", "0x1.c000000000000p+2", "0x1.0000000000000p+3",
    ],
    "rounding": [
        "0x1.8000000000000p+3", "0x1.8000000000000p+2", "0x1.2000000000000p+3",
        "0x1.2000000000000p+3", "0x1.8000000000000p+3", "0x1.8000000000000p+2",
        "0x1.2000000000000p+3", "0x1.2000000000000p+3", "0x1.2000000000000p+3",
        "0x1.2000000000000p+3", "0x1.2000000000000p+3", "0x1.2000000000000p+3",
    ],
    "subsampling": [
        "0x1.0000000000000p+2", "0x1.0000000000000p+2", "0x1.0000000000000p+1",
        "0x1.0000000000000p+2", "0x1.8000000000000p+2", "0x1.0000000000000p+1",
        "0x1.8000000000000p+2", "0x1.8000000000000p+2", "0x1.8000000000000p+2",
        "0x1.8000000000000p+2", "0x1.4000000000000p+3", "0x1.0000000000000p+3",
    ],
    "laplace": [
        "0x1.a4aea4b83d175p+3", "0x1.c493bc9184b3cp+2", "0x1.0f70dcd8af290p+3",
        "0x1.55e724eaf9bdap+2", "0x1.69f67890ef76cp+3", "0x1.946d0572f8072p+2",
        "0x1.c2abd3f844d16p+3", "0x1.071f9c83fa156p+3", "0x1.5db29ac56ea96p+2",
        "0x1.d9b9da718c8fdp+2", "0x1.37b28d554f365p+3", "0x1.390ed98fb0cbdp+3",
    ],
    "gaussian": [
        "0x1.efcfe3af8e7e1p+3", "0x1.5fc8ae8948476p+1", "0x1.cc4431c54d71ep+2",
        "0x1.0bb6a5725f01ap+4", "0x1.67071163c0792p+3", "0x1.b0bfbbe6f0daap+2",
        "0x1.61ca07097ba00p+3", "0x1.384aa5b0abaf6p+3", "0x1.b29dfb8887170p+2",
        "0x1.18f560c6da412p+4", "0x1.3e08731777973p+4", "0x1.b17b7927105c8p+3",
    ],
    "budgeted-laplace": [
        "0x1.ea7e5dba4e872p+3", "0x1.975b3ae9f5448p+1", "0x1.31560fa1e9dc4p+3",
        "0x1.fb467180432d2p+2", "0x1.5d278ccaeebb7p+3", "0x1.9b1a49e842950p+2",
        "0x1.5076f674e0e87p+3", "0x1.0bc1a9e76d40fp+3", "0x1.0b62fe28f2683p+3",
        "0x1.13921277ac105p+3", "0x1.472789a0cceb4p+3", "0x1.5f677402d21aep+3",
    ],
}

FACTORIES = {
    "exact": lambda data: ExactAnswerer(data),
    "bounded-uniform": lambda data: BoundedNoiseAnswerer(
        data, alpha=3.0, rng=derive_rng(7, "u")
    ),
    "bounded-extremes": lambda data: BoundedNoiseAnswerer(
        data, alpha=2.0, shape="extremes", rng=derive_rng(7, "x")
    ),
    "rounding": lambda data: RoundingAnswerer(data, step=3),
    "subsampling": lambda data: SubsamplingAnswerer(
        data, rate=0.5, rng=derive_rng(7, "s")
    ),
    "laplace": lambda data: LaplaceAnswerer(
        data, epsilon_per_query=0.7, rng=derive_rng(7, "l")
    ),
    "gaussian": lambda data: GaussianAnswerer(
        data, epsilon_per_query=0.9, delta_per_query=1e-5, rng=derive_rng(7, "g")
    ),
    "budgeted-laplace": lambda data: BudgetedAnswerer(
        LaplaceAnswerer(data, epsilon_per_query=0.5, rng=derive_rng(7, "bl")),
        max_queries=1000,
    ),
}


@pytest.fixture(scope="module")
def golden_setup():
    data = np.random.default_rng(99).integers(0, 2, size=32)
    workload = Workload.random(32, 12, rng=derive_rng(7, "golden-w"))
    return data, workload


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_workload_answers_match_pre_refactor_goldens(name, golden_setup):
    data, workload = golden_setup
    answers = FACTORIES[name](data).answer_workload(workload)
    assert [float(a).hex() for a in answers] == GOLDEN[name]


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_scalar_path_matches_workload_path(name, golden_setup):
    """Per-query answers consume the same stream as the batched path."""
    data, workload = golden_setup
    answerer = FACTORIES[name](data)
    scalars = [answerer.answer(query) for query in workload]
    assert [float(a).hex() for a in scalars] == GOLDEN[name]
