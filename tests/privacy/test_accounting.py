"""Tests for the unified accountant hierarchy (repro.privacy.accounting)."""

import pytest

from repro.privacy.accounting import (
    AdvancedAccountant,
    BasicAccountant,
    BudgetExhausted,
    PrivacyAccountant,
    PrivacySpend,
    ServiceAccountant,
    advanced_composition,
)


class TestReserveRollback:
    def test_reserve_is_all_or_nothing(self):
        ledger = PrivacyAccountant(epsilon_budget=1.0)
        with pytest.raises(BudgetExhausted):
            ledger.reserve(5, 0.3)
        # The refused charge left no trace.
        assert ledger.queries_charged == 0
        assert ledger.total() == (0.0, 0.0)

    def test_rollback_restores_budget(self):
        ledger = PrivacyAccountant(epsilon_budget=1.0)
        ledger.reserve(3, 0.3)
        ledger.rollback(3, 0.3)
        assert ledger.queries_charged == 0
        ledger.reserve(3, 0.3)  # fits again

    def test_rollback_requires_matching_charges(self):
        ledger = PrivacyAccountant()
        ledger.reserve(2, 0.1)
        with pytest.raises(ValueError, match="cannot roll back"):
            ledger.rollback(3, 0.1)
        with pytest.raises(ValueError, match="cannot roll back"):
            ledger.rollback(1, 0.7)

    def test_scope_on_refusals(self):
        by_queries = PrivacyAccountant(max_queries=2)
        with pytest.raises(BudgetExhausted) as caught:
            by_queries.reserve(3, 0.1)
        assert caught.value.scope == "queries"

        by_epsilon = PrivacyAccountant(epsilon_budget=0.5)
        with pytest.raises(BudgetExhausted) as caught:
            by_epsilon.reserve(1, 0.6)
        assert caught.value.scope == "epsilon"

        by_delta = PrivacyAccountant(delta_budget=1e-6)
        with pytest.raises(BudgetExhausted) as caught:
            by_delta.spend(0.1, delta=1e-3)
        assert caught.value.scope == "delta"

    def test_budget_exhausted_carries_numbers(self):
        ledger = PrivacyAccountant(epsilon_budget=1.0)
        ledger.reserve(1, 0.8)
        with pytest.raises(BudgetExhausted) as caught:
            ledger.reserve(1, 0.8)
        refusal = caught.value
        assert refusal.budget == 1.0
        assert refusal.requested == pytest.approx(0.8)
        assert refusal.spent == pytest.approx(0.8)


class TestServiceAccountantUnification:
    def test_service_accountant_is_a_privacy_accountant(self):
        assert issubclass(ServiceAccountant, PrivacyAccountant)
        assert isinstance(BasicAccountant(), PrivacyAccountant)
        assert isinstance(AdvancedAccountant(), PrivacyAccountant)

    def test_charges_mirror_into_base_ledger(self):
        accountant = BasicAccountant()
        accountant.charge("alice", 4, 0.25)
        accountant.charge("bob", 2, 0.5)
        # The inherited PrivacyAccountant interface sees the global history.
        assert accountant.queries_charged == 6
        epsilon, delta = accountant.total()
        assert epsilon == pytest.approx(4 * 0.25 + 2 * 0.5)
        assert delta == 0.0

    def test_per_analyst_isolation(self):
        accountant = BasicAccountant(per_analyst_epsilon=1.0)
        accountant.charge("alice", 4, 0.25)
        with pytest.raises(BudgetExhausted) as caught:
            accountant.charge("alice", 1, 0.25)
        assert caught.value.analyst == "alice"
        # Bob's ledger is untouched by Alice's exhaustion.
        accountant.charge("bob", 4, 0.25)
        assert accountant.analyst_epsilon("alice") == pytest.approx(1.0)
        assert accountant.analyst_epsilon("bob") == pytest.approx(1.0)

    def test_global_budget_rolls_back_analyst_ledger(self):
        accountant = BasicAccountant(global_epsilon=1.0)
        accountant.charge("alice", 3, 0.25)
        with pytest.raises(BudgetExhausted) as caught:
            accountant.charge("bob", 2, 0.25)
        assert caught.value.scope == "global"
        # The refused charge must not linger in bob's sub-ledger.
        assert accountant.analyst_queries("bob") == 0
        assert accountant.global_spent() == pytest.approx(0.75)

    def test_advanced_accountant_composes_sublinearly(self):
        accountant = AdvancedAccountant(delta_prime=1e-6)
        count, epsilon = 100, 0.1
        accountant.charge("alice", count, epsilon)
        bound, _delta = advanced_composition(epsilon, count, 1e-6)
        assert accountant.analyst_epsilon("alice") == pytest.approx(
            min(bound, epsilon * count)
        )
        # Sub-linear: far below basic composition at this count.
        assert accountant.analyst_epsilon("alice") < epsilon * count

    def test_advanced_single_charge_is_exact(self):
        accountant = AdvancedAccountant()
        accountant.charge("alice", 1, 0.3)
        assert accountant.analyst_epsilon("alice") == pytest.approx(0.3)

    def test_zero_epsilon_queries_still_counted(self):
        accountant = BasicAccountant(max_queries_per_analyst=3)
        accountant.charge("alice", 3, 0.0)
        assert accountant.analyst_epsilon("alice") == 0.0
        with pytest.raises(BudgetExhausted) as caught:
            accountant.charge("alice", 1, 0.0)
        assert caught.value.scope == "queries"


class TestSpendValidation:
    def test_spend_validation(self):
        with pytest.raises(ValueError):
            PrivacySpend(-0.1)
        with pytest.raises(ValueError):
            PrivacySpend(0.5, delta=1.0)

    def test_accountant_validation(self):
        with pytest.raises(ValueError, match="epsilon_budget"):
            PrivacyAccountant(epsilon_budget=0.0)
        with pytest.raises(ValueError, match="delta_budget"):
            PrivacyAccountant(delta_budget=1.0)
        with pytest.raises(ValueError, match="max_queries"):
            PrivacyAccountant(max_queries=0)
