"""Budget exactness under sharding.

The sharded accountant's contract is *bit-identity*: for any interleaving
of charges across shards, total spend and every ``BudgetExhausted``
verdict (message, scope, and carried numbers) must match the single-ledger
``ServiceAccountant`` running the same sequence.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.accounting import (
    AdvancedAccountant,
    BasicAccountant,
    BudgetExhausted,
    ShardedAccountant,
    stable_shard,
)

ANALYSTS = ["alice", "bob", "carol", "dave", "erin", "frank"]


def replay(accountant, schedule):
    """Run a charge schedule, returning per-step outcomes and final spends."""
    outcomes = []
    for analyst, count, epsilon in schedule:
        try:
            accountant.charge(analyst, count, epsilon)
        except BudgetExhausted as refusal:
            outcomes.append(
                (
                    str(refusal),
                    refusal.analyst,
                    refusal.scope,
                    refusal.requested,
                    refusal.budget,
                    refusal.spent,
                )
            )
        else:
            outcomes.append(None)
    spends = {analyst: accountant.analyst_epsilon(analyst) for analyst in ANALYSTS}
    return outcomes, spends, accountant.global_spent(), accountant.queries_charged


class TestStableShard:
    def test_deterministic_and_in_range(self):
        for name in ANALYSTS:
            index = stable_shard(name, 16)
            assert index == stable_shard(name, 16)
            assert 0 <= index < 16

    def test_single_shard_is_identity(self):
        assert all(stable_shard(name, 1) == 0 for name in ANALYSTS)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            stable_shard("x", 0)


class TestConstruction:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedAccountant(shards=0)
        with pytest.raises(ValueError, match="rule"):
            ShardedAccountant(rule="renyi")
        with pytest.raises(ValueError, match="global_epsilon"):
            ShardedAccountant(global_epsilon=0.0)
        with pytest.raises(ValueError, match="lease_chunk"):
            ShardedAccountant(global_epsilon=1.0, lease_chunk=-1.0)

    def test_charge_validates_inputs(self):
        ledger = ShardedAccountant()
        with pytest.raises(ValueError, match="count"):
            ledger.charge("a", -1, 0.1)
        with pytest.raises(ValueError, match="epsilon"):
            ledger.charge("a", 1, -0.1)

    def test_default_lease_chunk(self):
        ledger = ShardedAccountant(global_epsilon=8.0, shards=4)
        assert ledger.lease_chunk == pytest.approx(0.5)


class TestBitIdentity:
    @given(
        steps=st.lists(
            st.tuples(
                st.sampled_from(ANALYSTS),
                st.integers(min_value=1, max_value=4),
                st.sampled_from([0.1, 0.25, 0.3, 0.5, 0.7]),
            ),
            min_size=1,
            max_size=60,
        ),
        shards=st.sampled_from([1, 2, 3, 8, 16]),
        per_analyst=st.sampled_from([None, 1.5, 3.0]),
        global_eps=st.sampled_from([None, 2.0, 5.0]),
    )
    @settings(max_examples=80, deadline=None)
    def test_any_interleaving_matches_single_ledger(
        self, steps, shards, per_analyst, global_eps
    ):
        single = BasicAccountant(per_analyst, global_eps)
        sharded = ShardedAccountant(per_analyst, global_eps, shards=shards)
        assert replay(single, steps) == replay(sharded, steps)

    @given(
        steps=st.lists(
            st.tuples(
                st.sampled_from(ANALYSTS),
                st.integers(min_value=1, max_value=3),
                st.sampled_from([0.1, 0.2, 0.4]),
            ),
            min_size=1,
            max_size=40,
        ),
        shards=st.sampled_from([2, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_advanced_rule_matches_single_ledger(self, steps, shards):
        single = AdvancedAccountant(2.0, 4.0)
        sharded = ShardedAccountant(2.0, 4.0, shards=shards, rule="advanced")
        assert replay(single, steps) == replay(sharded, steps)

    def test_tiny_lease_chunks_change_nothing(self):
        # Pathologically small leases force a reconciliation on nearly every
        # charge; verdicts and spends must be unchanged.
        schedule = [(a, 1, 0.3) for a in ANALYSTS for _ in range(5)]
        single = BasicAccountant(2.0, 4.0)
        sharded = ShardedAccountant(2.0, 4.0, shards=4, lease_chunk=1e-9)
        assert replay(single, schedule) == replay(sharded, schedule)

    def test_refund_matches_single_ledger(self):
        single = BasicAccountant(5.0, 10.0)
        sharded = ShardedAccountant(5.0, 10.0, shards=4)
        for ledger in (single, sharded):
            ledger.charge("alice", 4, 0.5)
            ledger.charge("bob", 2, 0.5)
            ledger.refund("alice", 2, 0.5)
        assert single.global_spent() == sharded.global_spent()
        assert single.analyst_epsilon("alice") == sharded.analyst_epsilon("alice")
        assert single.queries_charged == sharded.queries_charged

    def test_refund_requires_history(self):
        sharded = ShardedAccountant(5.0)
        with pytest.raises(ValueError, match="no charges"):
            sharded.refund("ghost", 1, 0.5)


class TestGlobalCap:
    def test_global_refusal_is_exact_at_the_boundary(self):
        # 16 x 0.25 = 4.0 exactly fills the budget; the 17th must refuse
        # with the same numbers the single ledger reports.
        single = BasicAccountant(None, 4.0)
        sharded = ShardedAccountant(None, 4.0, shards=8)
        schedule = [(ANALYSTS[i % len(ANALYSTS)], 1, 0.25) for i in range(17)]
        assert replay(single, schedule) == replay(sharded, schedule)
        assert sharded.global_spent() == single.global_spent() == 4.0

    def test_rejected_charge_leaves_no_trace(self):
        sharded = ShardedAccountant(None, 1.0, shards=4)
        sharded.charge("alice", 2, 0.5)
        with pytest.raises(BudgetExhausted):
            sharded.charge("bob", 1, 0.5)
        assert sharded.analyst_epsilon("bob") == 0.0
        assert sharded.analyst_queries("bob") == 0
        assert sharded.global_spent() == 1.0

    def test_leases_never_overcommit(self):
        # Outstanding leases plus exact spend must stay within the budget:
        # exhaust it via one analyst, then every other analyst must refuse.
        sharded = ShardedAccountant(None, 2.0, shards=16, lease_chunk=0.5)
        for _ in range(4):
            sharded.charge("alice", 1, 0.5)
        for analyst in ANALYSTS[1:]:
            with pytest.raises(BudgetExhausted):
                sharded.charge(analyst, 1, 1e-9)

    def test_per_analyst_refusal_scope(self):
        sharded = ShardedAccountant(1.0, None, shards=4)
        sharded.charge("alice", 2, 0.5)
        with pytest.raises(BudgetExhausted) as caught:
            sharded.charge("alice", 1, 0.5)
        assert caught.value.scope == "analyst"

    def test_max_queries_enforced(self):
        sharded = ShardedAccountant(None, None, 3, shards=4)
        sharded.charge("alice", 3, 0.1)
        with pytest.raises(BudgetExhausted) as caught:
            sharded.charge("alice", 1, 0.1)
        assert caught.value.scope == "queries"


class TestConcurrency:
    def test_parallel_charges_conserve_the_budget(self):
        # Hammer one global budget from many threads; regardless of the
        # interleaving, accepted spend must never exceed the cap and the
        # final ledger must be internally consistent.
        sharded = ShardedAccountant(None, 10.0, shards=8, lease_chunk=0.25)
        accepted = []
        errors = []

        def worker(analyst):
            for _ in range(30):
                try:
                    sharded.charge(analyst, 1, 0.1)
                except BudgetExhausted:
                    pass
                except Exception as unexpected:  # pragma: no cover
                    errors.append(unexpected)
                else:
                    accepted.append(analyst)

        threads = [
            threading.Thread(target=worker, args=(f"analyst-{i}",)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        spent = sharded.global_spent()
        assert spent <= 10.0 + 1e-9
        assert spent == pytest.approx(0.1 * len(accepted))
        assert sharded.queries_charged == len(accepted)
