"""Tests for the noise-kernel layer (repro.privacy.kernels)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.accounting import PrivacySpend
from repro.privacy.kernels import (
    BoundedExtremesKernel,
    BoundedUniformKernel,
    GaussianKernel,
    GeometricKernel,
    LaplaceKernel,
    MechanismSpec,
    RandomizedResponseKernel,
    ZeroKernel,
)


class TestZeroKernel:
    def test_scalar_and_vector_are_zero(self):
        kernel = ZeroKernel()
        rng = np.random.default_rng(0)
        assert kernel.sample(rng) == 0.0
        assert np.all(kernel.sample_n(rng, 5) == 0.0)

    def test_consumes_no_randomness(self):
        kernel = ZeroKernel()
        rng = np.random.default_rng(3)
        kernel.sample(rng)
        kernel.sample_n(rng, 100)
        untouched = np.random.default_rng(3)
        assert rng.random() == untouched.random()


class TestLaplaceKernel:
    def test_calibration_theorem_1_3(self):
        assert LaplaceKernel.calibrate(0.5).scale == pytest.approx(2.0)
        assert LaplaceKernel.calibrate(2.0, sensitivity=4.0).scale == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="scale must be positive"):
            LaplaceKernel(0.0)
        with pytest.raises(ValueError, match="epsilon must be positive"):
            LaplaceKernel.calibrate(0.0)
        with pytest.raises(ValueError, match="sensitivity must be positive"):
            LaplaceKernel.calibrate(1.0, sensitivity=-1.0)

    def test_matches_generator_stream(self):
        kernel = LaplaceKernel(1.7)
        assert kernel.sample(np.random.default_rng(5)) == float(
            np.random.default_rng(5).laplace(0.0, 1.7)
        )
        got = kernel.sample_n(np.random.default_rng(5), 9)
        want = np.random.default_rng(5).laplace(0.0, 1.7, size=9)
        assert np.array_equal(got, want)


class TestGaussianKernel:
    def test_classical_calibration(self):
        kernel = GaussianKernel.calibrate(1.0, 1e-5)
        assert kernel.sigma == pytest.approx(np.sqrt(2 * np.log(1.25 / 1e-5)))

    def test_validation(self):
        with pytest.raises(ValueError, match="0 < epsilon <= 1"):
            GaussianKernel.calibrate(2.0, 1e-5)
        with pytest.raises(ValueError, match="delta must lie in"):
            GaussianKernel.calibrate(0.5, 0.0)
        with pytest.raises(ValueError, match="sigma must be positive"):
            GaussianKernel(0.0)

    def test_matches_generator_stream(self):
        kernel = GaussianKernel(2.5)
        assert kernel.sample(np.random.default_rng(8)) == float(
            np.random.default_rng(8).normal(0.0, 2.5)
        )
        got = kernel.sample_n(np.random.default_rng(8), (3, 4))
        want = np.random.default_rng(8).normal(0.0, 2.5, size=(3, 4))
        assert np.array_equal(got, want)


class TestGeometricKernel:
    def test_calibration(self):
        kernel = GeometricKernel.calibrate(1.0)
        assert kernel.p == pytest.approx(1.0 - np.exp(-1.0))

    def test_scalar_matches_interleaved_pair(self):
        # The scalar path draws (positive, negative); the vectorized path
        # must consume the same stream pairwise.
        kernel = GeometricKernel.calibrate(0.8)
        rng = np.random.default_rng(11)
        positive = np.random.default_rng(11).geometric(kernel.p) - 1
        negative_rng = np.random.default_rng(11)
        negative_rng.geometric(kernel.p)
        negative = negative_rng.geometric(kernel.p) - 1
        assert kernel.sample(rng) == float(positive - negative)

    def test_vectorized_matches_scalar_stream(self):
        kernel = GeometricKernel.calibrate(0.8)
        scalar_rng = np.random.default_rng(12)
        scalars = [kernel.sample(scalar_rng) for _ in range(6)]
        vector = kernel.sample_n(np.random.default_rng(12), 6)
        assert np.array_equal(vector, np.array(scalars))

    def test_integer_valued(self):
        draws = GeometricKernel.calibrate(0.5).sample_n(np.random.default_rng(1), 50)
        assert np.array_equal(draws, np.round(draws))


class TestBoundedKernels:
    def test_alpha_zero_consumes_no_randomness(self):
        for kernel in (BoundedUniformKernel(0.0), BoundedExtremesKernel(0.0)):
            rng = np.random.default_rng(7)
            assert kernel.sample(rng) == 0.0
            assert np.all(kernel.sample_n(rng, 8) == 0.0)
            assert rng.random() == np.random.default_rng(7).random()

    def test_uniform_within_bounds(self):
        draws = BoundedUniformKernel(2.0).sample_n(np.random.default_rng(2), 500)
        assert np.all(np.abs(draws) <= 2.0)

    def test_extremes_hit_only_endpoints(self):
        draws = BoundedExtremesKernel(3.0).sample_n(np.random.default_rng(2), 500)
        assert set(np.unique(draws)) == {-3.0, 3.0}

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            BoundedUniformKernel(-1.0)
        with pytest.raises(ValueError):
            BoundedExtremesKernel(-0.5)


class TestRandomizedResponseKernel:
    def test_calibration(self):
        kernel = RandomizedResponseKernel.calibrate(np.log(3.0))
        assert kernel.truth_probability == pytest.approx(0.75)

    def test_huge_epsilon_allowed(self):
        # exp(eps)/(1+exp(eps)) rounds to exactly 1.0 for large epsilon.
        assert RandomizedResponseKernel.calibrate(50.0).truth_probability == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="truth_probability"):
            RandomizedResponseKernel(0.4)
        with pytest.raises(ValueError, match="truth_probability"):
            RandomizedResponseKernel(1.1)

    def test_flip_mask_complements_keep_mask(self):
        # flips (u >= p) must be the exact complement of keeps (u < p) on
        # the same uniform stream.
        kernel = RandomizedResponseKernel(0.75)
        flips = kernel.sample_n(np.random.default_rng(4), 200)
        keeps = np.random.default_rng(4).random(200) < 0.75
        assert np.array_equal(flips.astype(bool), ~keeps)


class TestMechanismSpec:
    def test_defaults(self):
        spec = MechanismSpec(name="exact", kernel=ZeroKernel())
        assert spec.spend.epsilon == 0.0
        assert spec.sensitivity == 1.0
        assert not spec.dp

    def test_epsilon_per_query(self):
        spec = MechanismSpec(
            name="laplace",
            kernel=LaplaceKernel.calibrate(0.5),
            spend=PrivacySpend(0.5),
            dp=True,
        )
        assert spec.epsilon_per_query == 0.5

    def test_dp_claim_requires_positive_epsilon(self):
        with pytest.raises(ValueError):
            MechanismSpec(name="bogus", kernel=ZeroKernel(), dp=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            MechanismSpec(name="x", kernel=ZeroKernel(), sensitivity=0.0)
        with pytest.raises(ValueError):
            MechanismSpec(name="x", kernel=ZeroKernel(), error_bound=-1.0)

    def test_frozen(self):
        spec = MechanismSpec(name="exact", kernel=ZeroKernel())
        with pytest.raises(AttributeError):
            spec.name = "other"


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    scale=st.floats(min_value=1e-3, max_value=1e3),
    count=st.integers(min_value=1, max_value=32),
)
def test_scalar_loop_equals_vectorized_laplace(seed, scale, count):
    """Property: n scalar draws == one vectorized draw of n, any seed."""
    kernel = LaplaceKernel(scale)
    scalar_rng = np.random.default_rng(seed)
    scalars = np.array([kernel.sample(scalar_rng) for _ in range(count)])
    vector = kernel.sample_n(np.random.default_rng(seed), count)
    assert np.array_equal(scalars, vector)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    sigma=st.floats(min_value=1e-3, max_value=1e3),
    count=st.integers(min_value=1, max_value=32),
)
def test_scalar_loop_equals_vectorized_gaussian(seed, sigma, count):
    kernel = GaussianKernel(sigma)
    scalar_rng = np.random.default_rng(seed)
    scalars = np.array([kernel.sample(scalar_rng) for _ in range(count)])
    vector = kernel.sample_n(np.random.default_rng(seed), count)
    assert np.array_equal(scalars, vector)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    epsilon=st.floats(min_value=0.05, max_value=8.0),
    count=st.integers(min_value=1, max_value=32),
)
def test_scalar_loop_equals_vectorized_geometric(seed, epsilon, count):
    kernel = GeometricKernel.calibrate(epsilon)
    scalar_rng = np.random.default_rng(seed)
    scalars = np.array([kernel.sample(scalar_rng) for _ in range(count)])
    vector = kernel.sample_n(np.random.default_rng(seed), count)
    assert np.array_equal(scalars, vector)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    alpha=st.floats(min_value=0.0, max_value=10.0),
    count=st.integers(min_value=1, max_value=32),
)
def test_scalar_loop_equals_vectorized_bounded(seed, alpha, count):
    for kernel in (BoundedUniformKernel(alpha), BoundedExtremesKernel(alpha)):
        scalar_rng = np.random.default_rng(seed)
        scalars = np.array([kernel.sample(scalar_rng) for _ in range(count)])
        vector = kernel.sample_n(np.random.default_rng(seed), count)
        assert np.array_equal(scalars, vector)
