"""Tests for the curated top-level API."""

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_game_flow_via_top_level(self):
        from repro.data.distributions import uniform_bits_distribution

        game = repro.PSOGame(
            uniform_bits_distribution(16),
            50,
            repro.ConstantMechanism(),
            repro.TrivialAttacker("negligible"),
        )
        result = game.run(10, rng=0)
        assert result.success.trials == 10

    def test_all_is_sorted(self):
        symbols = list(repro.__all__)
        assert symbols == sorted(symbols)

    def test_derivation_api_via_top_level(self):
        # The legal derivation surface is a first-class export: a claim
        # derived from an established premise comes back as a verdict.
        check = repro.TheoremCheck(
            theorem="smoke", claim="c", passed=True, measurements={}
        )
        premise = repro.TechnicalPremise(
            identifier="P1", statement="measured", evidence=check
        )
        from repro.legal.claims import LegalClaim

        claim = LegalClaim(identifier="C1", conclusion="ok", rule="P1 => C1")
        verdict = repro.derive(claim, [], [premise])
        assert isinstance(verdict, repro.LegalVerdict)

    def test_compliance_surface_via_top_level(self):
        assert issubclass(repro.ComplianceDenied, RuntimeError)
        for name in (
            "ComplianceCertificate",
            "CompliancePipeline",
            "ComplianceDenied",
        ):
            assert getattr(repro, name) is not None

    def test_subpackages_importable(self):
        import importlib

        for name in (
            "repro.utils",
            "repro.data",
            "repro.privacy",
            "repro.queries",
            "repro.dp",
            "repro.anonymity",
            "repro.reconstruction",
            "repro.core",
            "repro.attacks",
            "repro.legal",
            "repro.lm",
            "repro.ml",
            "repro.compliance",
            "repro.service",
            "repro.synth",
            "repro.telemetry",
            "repro.experiments",
        ):
            module = importlib.import_module(name)
            assert module.__doc__, f"{name} is missing a module docstring"

    def test_subpackage_all_symbols_resolve(self):
        import importlib

        for name in (
            "repro.utils",
            "repro.data",
            "repro.privacy",
            "repro.queries",
            "repro.dp",
            "repro.anonymity",
            "repro.core",
            "repro.attacks",
            "repro.legal",
            "repro.reconstruction",
            "repro.compliance",
            "repro.service",
            "repro.synth",
            "repro.telemetry",
        ):
            module = importlib.import_module(name)
            for symbol in getattr(module, "__all__", []):
                assert hasattr(module, symbol), f"{name}.{symbol}"

    def test_telemetry_surface_via_top_level(self):
        # The observability surface is a first-class export: an isolated
        # registry records, and snapshot() freezes it.
        registry = repro.MetricsRegistry()
        registry.counter("repro_test_total", shard="0").inc(3)
        snap = repro.snapshot(registry)
        assert snap.counter_value("repro_test_total", shard="0") == 3.0
        recorder = repro.SpanRecorder()
        with recorder.span("root"):
            pass
        assert recorder.total_recorded == 1
