"""Tests for the executable theorem checks (reduced scale).

These are the library's own acceptance tests: every theorem of the paper's
Section 2 must hold at small scale.  The benchmark suite re-runs them at
full scale.
"""

import pytest

from repro.core.theorems import (
    check_cohen_singleton_attack,
    check_composition_attack,
    check_count_mechanism_pso_security,
    check_dp_implies_pso_security,
    check_kanonymity_fails_pso,
    check_laplace_is_dp,
    check_post_processing_robustness,
)


@pytest.mark.slow
class TestTheoremChecks:
    def test_laplace_is_dp(self):
        check = check_laplace_is_dp(trials=2_000, rng=0)
        assert check.passed
        assert check.theorem == "1.3"

    def test_count_mechanism_secure(self):
        check = check_count_mechanism_pso_security(trials=60, rng=0)
        assert check.passed

    def test_post_processing_robust(self):
        check = check_post_processing_robustness(trials=60, rng=0)
        assert check.passed

    def test_composition_attack_wins(self):
        check = check_composition_attack(trials=30, rng=0)
        assert check.passed
        assert check.measurements["num_count_mechanisms"] > 8  # omega(log n)

    def test_dp_prevents_pso(self):
        check = check_dp_implies_pso_security(trials=25, rng=0)
        assert check.passed

    def test_kanonymity_fails(self):
        check = check_kanonymity_fails_pso(trials=60, rng=0)
        assert check.passed

    def test_cohen_singleton(self):
        check = check_cohen_singleton_attack(trials=40, rng=0)
        assert check.passed

    def test_check_rendering(self):
        check = check_laplace_is_dp(trials=1_000, rng=1)
        assert "Theorem 1.3" in str(check)
        assert "PASS" in str(check) or "FAIL" in str(check)

    def test_checks_are_deterministic(self):
        a = check_kanonymity_fails_pso(trials=30, rng=5)
        b = check_kanonymity_fails_pso(trials=30, rng=5)
        assert a.measurements == b.measurements
