"""Tests for the closed-form experiment companions."""

import pytest

from repro.core.analysis import (
    composition_attack_success_bound,
    expected_agreement_bits,
    refinement_success_probability,
    required_width_for_negligibility,
    trivial_attacker_ceiling,
)


class TestRefinementSuccess:
    def test_known_values(self):
        assert refinement_success_probability(2) == pytest.approx(0.5)
        assert refinement_success_probability(4) == pytest.approx(0.421875)
        assert refinement_success_probability(1) == 1.0

    def test_limit_is_one_over_e(self):
        import math

        assert refinement_success_probability(10_000) == pytest.approx(
            1.0 / math.e, abs=1e-4
        )

    def test_monotone_decreasing(self):
        values = [refinement_success_probability(k) for k in range(2, 30)]
        assert values == sorted(values, reverse=True)

    def test_invalid(self):
        with pytest.raises(ValueError):
            refinement_success_probability(0)


class TestAgreementBits:
    def test_matches_measured_agreement(self):
        """Analytic agreement tracks the anonymizer's actual behavior."""
        from repro.anonymity.agreement import AgreementAnonymizer
        from repro.data.distributions import uniform_bits_distribution

        width, k, n = 96, 4, 200
        data = uniform_bits_distribution(width).sample(n, rng=0)
        release = AgreementAnonymizer(k).anonymize(data)
        agreed = [
            sum(1 for value in record.values if value.is_singleton)
            for record in release
        ]
        measured = sum(agreed) / len(agreed)
        predicted = expected_agreement_bits(width, k, n)
        assert measured == pytest.approx(predicted, rel=0.35)

    def test_wider_data_more_agreement(self):
        assert expected_agreement_bits(256, 4, 200) > expected_agreement_bits(64, 4, 200)

    def test_larger_k_less_agreement(self):
        assert expected_agreement_bits(128, 8, 200) < expected_agreement_bits(128, 3, 200)

    def test_invalid(self):
        with pytest.raises(ValueError):
            expected_agreement_bits(0, 4, 200)


class TestRequiredWidth:
    def test_e12_schedule_satisfies_requirement(self):
        """The widths used by E12 meet or beat the analytic requirement."""
        for k, width in {2: 96, 3: 128, 4: 192, 6: 1024}.items():
            assert width >= required_width_for_negligibility(k, 250) * 0.5

    def test_grows_exponentially_in_k(self):
        w4 = required_width_for_negligibility(4, 250)
        w8 = required_width_for_negligibility(8, 250)
        assert w8 > 8 * w4

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            required_width_for_negligibility(4, 250, exponent=1.0)


class TestCeilings:
    def test_trivial_ceiling_tiny(self):
        assert trivial_attacker_ceiling(200) < 0.01
        assert trivial_attacker_ceiling(200) == pytest.approx(
            200 * 200.0**-2, rel=0.05
        )

    def test_composition_bound_below_measured(self):
        # E10 measures 0.6-0.9; the crude bound must sit below it.
        assert composition_attack_success_bound(256) <= 0.5

    def test_invalid(self):
        with pytest.raises(ValueError):
            trivial_attacker_ceiling(0)
        with pytest.raises(ValueError):
            composition_attack_success_bound(1)
