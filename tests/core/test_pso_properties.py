"""Property-based tests on the PSO core: predicate algebra and the
isolation/weight laws the framework's soundness rests on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.isolation import isolation_probability, isolates, matching_count
from repro.core.leftover_hash import hash_threshold_predicate
from repro.core.predicate import attribute_predicate, predicate_from_conditions
from repro.data.distributions import uniform_bits_distribution

DIST = uniform_bits_distribution(10)


@st.composite
def bit_conditions(draw):
    """A random conjunctive condition over the 10-bit schema."""
    attributes = draw(
        st.lists(st.integers(0, 9), min_size=1, max_size=4, unique=True)
    )
    return {
        f"b{i}": frozenset(draw(st.sampled_from([{0}, {1}, {0, 1}])))
        for i in attributes
    }


class TestPredicateAlgebra:
    @given(conditions=bit_conditions())
    @settings(max_examples=40, deadline=None)
    def test_conjunction_commutes_semantically(self, conditions):
        items = sorted(conditions.items())
        if len(items) < 2:
            return
        left = attribute_predicate(*items[0])
        for name, allowed in items[1:]:
            left = left & attribute_predicate(name, allowed)
        right = attribute_predicate(*items[-1])
        for name, allowed in reversed(items[:-1]):
            right = right & attribute_predicate(name, allowed)
        data = DIST.sample(64, rng=0)
        for record in data:
            assert left(record) == right(record)

    @given(conditions=bit_conditions())
    @settings(max_examples=40, deadline=None)
    def test_weight_matches_structural_product(self, conditions):
        predicate = predicate_from_conditions(conditions)
        expected = 1.0
        for allowed in conditions.values():
            expected *= len(allowed) / 2.0
        assert predicate.weight(DIST) == pytest.approx(expected)

    @given(conditions=bit_conditions())
    @settings(max_examples=30, deadline=None)
    def test_conjunction_weight_never_increases(self, conditions):
        predicate = predicate_from_conditions(conditions)
        refined = predicate & attribute_predicate("b0", 1)
        assert refined.weight(DIST) <= predicate.weight(DIST) + 1e-12

    @given(conditions=bit_conditions())
    @settings(max_examples=30, deadline=None)
    def test_idempotence(self, conditions):
        predicate = predicate_from_conditions(conditions)
        doubled = predicate & predicate
        assert doubled.weight(DIST) == pytest.approx(predicate.weight(DIST))


class TestIsolationLaws:
    @given(seed=st.integers(0, 200), n=st.integers(2, 60))
    @settings(max_examples=40, deadline=None)
    def test_isolation_iff_count_one(self, seed, n):
        data = DIST.sample(n, rng=seed)
        predicate = hash_threshold_predicate(f"prop-{seed}", 0.1)
        assert isolates(predicate, data) == (matching_count(predicate, data) == 1)

    @given(n=st.integers(2, 5_000), w_scale=st.floats(0.05, 5.0))
    @settings(max_examples=60, deadline=None)
    def test_isolation_probability_bounded_by_optimum(self, n, w_scale):
        weight = min(1.0, w_scale / n)
        assert isolation_probability(n, weight) <= isolation_probability(n, 1.0 / n) + 1e-12

    @given(n=st.integers(2, 1_000))
    @settings(max_examples=40, deadline=None)
    def test_probability_sums_to_binomial_mass(self, n):
        # n*w*(1-w)^(n-1) with w=1/n lies in (1/e, 1/2] for n >= 2.
        value = isolation_probability(n, 1.0 / n)
        assert 0.367 < value <= 0.5 + 1e-12
