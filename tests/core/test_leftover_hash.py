"""Tests for hash-based negligible-weight predicates."""

import pytest

from repro.core.leftover_hash import (
    RecordHasher,
    hash_bit_equals_predicate,
    hash_bit_predicate,
    hash_threshold_predicate,
    isolating_weight_predicate,
)
from repro.data.distributions import uniform_bits_distribution


@pytest.fixture(scope="module")
def distribution():
    return uniform_bits_distribution(48)


class TestRecordHasher:
    def test_deterministic(self, distribution):
        record = distribution.sample_record(rng=0)
        hasher = RecordHasher("salt")
        assert hasher.unit(record) == hasher.unit(record)
        assert hasher.bit(record, 7) == hasher.bit(record, 7)

    def test_salts_give_different_functions(self, distribution):
        records = [distribution.sample_record(rng=i) for i in range(32)]
        a = [RecordHasher("salt-a").bit(r, 0) for r in records]
        b = [RecordHasher("salt-b").bit(r, 0) for r in records]
        assert a != b  # astronomically unlikely to collide on 32 records

    def test_unit_in_interval(self, distribution):
        hasher = RecordHasher("x")
        for i in range(20):
            value = hasher.unit(distribution.sample_record(rng=i))
            assert 0.0 <= value < 1.0

    def test_empty_salt_rejected(self):
        with pytest.raises(ValueError):
            RecordHasher("")

    def test_bit_index_validated(self, distribution):
        hasher = RecordHasher("x")
        record = distribution.sample_record(rng=0)
        with pytest.raises(ValueError):
            hasher.bit(record, 192)
        with pytest.raises(ValueError):
            hasher.bit(record, -1)


class TestHashThresholdPredicate:
    def test_analytic_weight_recorded(self):
        predicate = hash_threshold_predicate("s", 0.01)
        assert predicate.analytic_weight == 0.01

    def test_empirical_weight_matches_analytic(self, distribution):
        predicate = hash_threshold_predicate("s2", 0.25)
        data = distribution.sample(8_000, rng=0)
        frequency = data.count(predicate) / len(data)
        assert frequency == pytest.approx(0.25, abs=0.02)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            hash_threshold_predicate("s", 0.0)
        with pytest.raises(ValueError):
            hash_threshold_predicate("s", 1.5)

    def test_isolating_weight_predicate(self):
        predicate = isolating_weight_predicate("s", 100)
        assert predicate.analytic_weight == pytest.approx(0.01)
        with pytest.raises(ValueError):
            isolating_weight_predicate("s", 0)


class TestHashBitPredicates:
    def test_bit_weight_is_half(self, distribution):
        predicate = hash_bit_predicate("s3", 5)
        data = distribution.sample(8_000, rng=1)
        frequency = data.count(predicate) / len(data)
        assert frequency == pytest.approx(0.5, abs=0.03)

    def test_bit_equals_complement(self, distribution):
        ones = hash_bit_equals_predicate("s4", 3, 1)
        zeros = hash_bit_equals_predicate("s4", 3, 0)
        record = distribution.sample_record(rng=2)
        assert ones(record) != zeros(record)

    def test_invalid_value(self):
        with pytest.raises(ValueError):
            hash_bit_equals_predicate("s", 0, 2)

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            hash_bit_predicate("s", 500)

    def test_threshold_and_high_bits_independent(self, distribution):
        # Conjunction of a threshold cut and a bit from a different salt
        # should have roughly the product weight.
        predicate = hash_threshold_predicate("s5", 0.5) & hash_bit_predicate("s6", 0)
        data = distribution.sample(8_000, rng=3)
        frequency = data.count(predicate) / len(data)
        assert frequency == pytest.approx(0.25, abs=0.03)
        assert predicate.analytic_weight == pytest.approx(0.25)
