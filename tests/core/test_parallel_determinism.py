"""Bit-identical results across execution backends (the engine's contract).

Every Monte-Carlo estimator that takes ``jobs`` must produce exactly the
same numbers for a fixed seed no matter how the trials are scheduled:
serial, thread pool, or forked process pool.  These tests pin that down on
the three wired layers — the PSO game, the isolation estimator, and the
agreement-attack estimator.
"""

import pytest

from repro.anonymity.agreement import estimate_agreement_attack_success
from repro.core.attackers import TrivialAttacker
from repro.core.isolation import estimate_isolation_rate
from repro.core.leftover_hash import hash_threshold_predicate
from repro.core.mechanisms import CountMechanism
from repro.core.pso import PSOGame
from repro.core.leftover_hash import hash_bit_predicate
from repro.data.distributions import uniform_bits_distribution


@pytest.fixture(scope="module")
def distribution():
    return uniform_bits_distribution(48)


class TestGameDeterminism:
    TRIALS = 24

    def _run(self, distribution, jobs, backend="auto"):
        game = PSOGame(
            distribution,
            120,
            CountMechanism(hash_bit_predicate("det-q", 0)),
            TrivialAttacker("negligible"),
        )
        return game.run(self.TRIALS, rng=7, jobs=jobs, backend=backend)

    def test_process_jobs_match_serial_trials_exactly(self, distribution):
        serial = self._run(distribution, jobs=1)
        parallel = self._run(distribution, jobs=4)
        assert parallel.trials == serial.trials
        assert str(parallel.success) == str(serial.success)

    def test_thread_backend_matches_serial_trials_exactly(self, distribution):
        serial = self._run(distribution, jobs=1)
        threaded = self._run(distribution, jobs=3, backend="thread")
        assert threaded.trials == serial.trials

    def test_different_seeds_differ(self, distribution):
        game = PSOGame(
            distribution,
            120,
            CountMechanism(hash_bit_predicate("det-q", 0)),
            TrivialAttacker("optimal"),
        )
        first = game.run(self.TRIALS, rng=1, jobs=2)
        second = game.run(self.TRIALS, rng=2, jobs=2)
        assert first.trials != second.trials


class TestEstimatorDeterminism:
    def test_isolation_rate_across_jobs(self, distribution):
        predicate = hash_threshold_predicate("det-iso", 1.0 / 120)
        runs = [
            estimate_isolation_rate(
                predicate, distribution, n=120, trials=40, rng=11, jobs=jobs
            )
            for jobs in (1, 2, 4)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_agreement_attack_across_jobs_and_backends(self, distribution):
        results = [
            estimate_agreement_attack_success(
                distribution, n=40, k=2, trials=10, rng=3, jobs=jobs, backend=backend
            )
            for jobs, backend in ((1, "serial"), (4, "process"), (3, "thread"))
        ]
        assert results[0].trials == results[1].trials == results[2].trials
