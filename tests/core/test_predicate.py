"""Tests for predicates and weight computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicate import (
    Predicate,
    attribute_predicate,
    generalized_record_predicate,
    predicate_from_conditions,
)
from repro.data.dataset import Record
from repro.data.distributions import (
    AttributeDistribution,
    ProductDistribution,
    uniform_bits_distribution,
)
from repro.data.domain import CategoricalDomain, IntegerDomain
from repro.data.generalized import GeneralizedRecord
from repro.data.hierarchy import GeneralizedValue
from repro.data.schema import Attribute, AttributeKind, Schema


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("zip", CategoricalDomain(["12340", "12341", "23456"]), AttributeKind.QUASI_IDENTIFIER),
            Attribute("age", IntegerDomain(0, 99), AttributeKind.QUASI_IDENTIFIER),
        ]
    )


@pytest.fixture
def distribution(schema) -> ProductDistribution:
    return ProductDistribution.uniform(schema)


class TestAttributePredicate:
    def test_single_value(self, schema):
        predicate = attribute_predicate("age", 30)
        assert predicate(Record(schema, ("12340", 30)))
        assert not predicate(Record(schema, ("12340", 31)))

    def test_value_set(self, schema):
        predicate = attribute_predicate("zip", {"12340", "12341"})
        assert predicate(Record(schema, ("12341", 5)))
        assert not predicate(Record(schema, ("23456", 5)))

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            attribute_predicate("zip", set())

    def test_exact_weight(self, distribution):
        predicate = attribute_predicate("zip", {"12340", "12341"})
        assert predicate.weight(distribution) == pytest.approx(2.0 / 3.0)


class TestConjunction:
    def test_structural_merge(self, schema, distribution):
        a = attribute_predicate("zip", {"12340", "12341"})
        b = attribute_predicate("age", set(range(0, 50)))
        conjunction = a & b
        assert conjunction.conditions is not None
        assert conjunction.weight(distribution) == pytest.approx((2 / 3) * 0.5)

    def test_same_attribute_intersects(self, distribution):
        a = attribute_predicate("age", set(range(0, 50)))
        b = attribute_predicate("age", set(range(25, 75)))
        conjunction = a & b
        assert conjunction.weight(distribution) == pytest.approx(0.25)

    def test_contradiction_has_zero_weight(self, distribution):
        a = attribute_predicate("age", 10)
        b = attribute_predicate("age", 20)
        assert (a & b).weight(distribution) == 0.0

    def test_semantics(self, schema):
        a = attribute_predicate("zip", "12340")
        b = attribute_predicate("age", 30)
        conjunction = a & b
        assert conjunction(Record(schema, ("12340", 30)))
        assert not conjunction(Record(schema, ("12340", 31)))
        assert not conjunction(Record(schema, ("23456", 30)))

    def test_analytic_weights_multiply(self):
        a = Predicate(lambda r: True, "a", analytic_weight=0.25)
        b = Predicate(lambda r: True, "b", analytic_weight=0.5)
        assert (a & b).analytic_weight == pytest.approx(0.125)

    def test_mixed_conjunction_bound_is_min(self, distribution):
        structural = attribute_predicate("zip", "12340")  # weight 1/3
        analytic = Predicate(lambda r: True, "h", analytic_weight=0.01)
        bound = (structural & analytic).weight_bound(distribution)
        assert bound == pytest.approx(0.01)

    @given(bits=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_bit_conjunction_weight(self, bits):
        distribution = uniform_bits_distribution(8)
        predicate = attribute_predicate("b0", 1)
        for i in range(1, bits):
            predicate = predicate & attribute_predicate(f"b{i}", 1)
        assert predicate.weight(distribution) == pytest.approx(0.5**bits)


class TestWeightBound:
    def test_monte_carlo_bound_is_conservative(self, distribution):
        # A non-structural predicate: MC with CP upper bound.
        predicate = Predicate(lambda r: r["age"] == 0, "age==0 (opaque)")
        bound = predicate.weight_bound(distribution, samples=2_000, rng=0)
        assert bound >= 0.01  # true weight
        assert bound <= 0.05

    def test_zero_hits_bound_positive(self, distribution):
        predicate = Predicate(lambda r: False, "never")
        bound = predicate.weight_bound(distribution, samples=1_000, rng=1)
        assert 0.0 < bound < 0.02

    def test_analytic_passthrough(self, distribution):
        predicate = Predicate(lambda r: True, "h", analytic_weight=1e-9)
        assert predicate.weight_bound(distribution) == 1e-9

    def test_invalid_analytic_weight(self):
        with pytest.raises(ValueError):
            Predicate(lambda r: True, "h", analytic_weight=2.0)


class TestConditionsHelpers:
    def test_predicate_from_conditions(self, schema, distribution):
        predicate = predicate_from_conditions(
            {"zip": frozenset(["12340"]), "age": frozenset(range(10))}
        )
        assert predicate(Record(schema, ("12340", 5)))
        assert predicate.weight(distribution) == pytest.approx((1 / 3) * 0.1)

    def test_empty_conditions_rejected(self):
        with pytest.raises(ValueError):
            predicate_from_conditions({})
        with pytest.raises(ValueError):
            predicate_from_conditions({"zip": frozenset()})

    def test_generalized_record_predicate(self, schema, distribution):
        cell = GeneralizedRecord(
            schema,
            [
                GeneralizedValue("1234*", ["12340", "12341"]),
                GeneralizedValue("0-49", range(0, 50)),
            ],
        )
        predicate = generalized_record_predicate(cell)
        assert predicate(Record(schema, ("12341", 25)))
        assert not predicate(Record(schema, ("23456", 25)))
        assert predicate.weight(distribution) == pytest.approx((2 / 3) * 0.5)
