"""Tests for the PSO security game."""

import pytest

from repro.core.attackers import IdentityAttacker, TrivialAttacker
from repro.core.mechanisms import ConstantMechanism, IdentityMechanism
from repro.core.pso import PSOContext, PSOGame, PSOTrial
from repro.data.distributions import uniform_bits_distribution


@pytest.fixture(scope="module")
def distribution():
    return uniform_bits_distribution(48)


class TestContext:
    def test_threshold(self, distribution):
        context = PSOContext(n=100, distribution=distribution)
        assert context.weight_threshold == pytest.approx(1e-4)

    def test_custom_exponent(self, distribution):
        context = PSOContext(n=100, distribution=distribution, negligible_exponent=3.0)
        assert context.weight_threshold == pytest.approx(1e-6)

    def test_invalid_n(self, distribution):
        with pytest.raises(ValueError):
            PSOContext(n=0, distribution=distribution)


class TestTrial:
    def test_success_requires_both_conditions(self):
        assert PSOTrial(True, 1e-9, True, False).succeeded
        assert not PSOTrial(True, 0.5, False, False).succeeded
        assert not PSOTrial(False, 1e-9, True, False).succeeded


class TestGame:
    def test_constant_mechanism_trivial_optimal(self, distribution):
        # ~37% isolation, 0% success (weight too heavy).
        game = PSOGame(distribution, 150, ConstantMechanism(), TrivialAttacker("optimal"))
        result = game.run(120, rng=0)
        assert result.isolation_rate.estimate == pytest.approx(0.37, abs=0.12)
        assert result.success.estimate == 0.0
        assert result.negligible_weight_rate.estimate == 0.0

    def test_constant_mechanism_trivial_negligible(self, distribution):
        # Weight condition satisfied, isolation almost never.
        game = PSOGame(
            distribution, 150, ConstantMechanism(), TrivialAttacker("negligible")
        )
        result = game.run(120, rng=1)
        assert result.negligible_weight_rate.estimate == 1.0
        assert result.success.estimate <= 0.03
        assert not result.beats_baseline()

    def test_identity_mechanism_broken(self, distribution):
        game = PSOGame(distribution, 100, IdentityMechanism(), IdentityAttacker())
        result = game.run(60, rng=2)
        assert result.success.estimate >= 0.95
        assert result.beats_baseline()

    def test_abstention_counts_as_failure(self, distribution):
        class AbstainingAttacker:
            name = "abstain"

            def attack(self, output, context, rng):
                return None

        game = PSOGame(distribution, 50, ConstantMechanism(), AbstainingAttacker())
        result = game.run(20, rng=3)
        assert result.success.estimate == 0.0
        assert all(trial.abstained for trial in result.trials)

    def test_deterministic_given_seed(self, distribution):
        game = PSOGame(distribution, 80, ConstantMechanism(), TrivialAttacker("optimal"))
        a = game.run(30, rng=7)
        b = game.run(30, rng=7)
        assert a.success.successes == b.success.successes

    def test_invalid_trials(self, distribution):
        game = PSOGame(distribution, 50, ConstantMechanism(), TrivialAttacker())
        with pytest.raises(ValueError):
            game.run(0)

    def test_result_string(self, distribution):
        game = PSOGame(distribution, 50, ConstantMechanism(), TrivialAttacker())
        result = game.run(10, rng=4)
        text = str(result)
        assert "constant" in text and "trivial" in text

    def test_baseline_value(self, distribution):
        game = PSOGame(distribution, 365, ConstantMechanism(), TrivialAttacker())
        result = game.run(5, rng=5)
        assert result.baseline == pytest.approx(0.368, abs=0.001)


class TestHeavyMode:
    """Footnote 11: the 'heavy' weight regime, treated analogously."""

    def test_heavy_threshold_scale(self, distribution):
        import math

        context = PSOContext(n=200, distribution=distribution, mode="heavy")
        assert context.heavy_threshold == pytest.approx(4 * math.log(200) / 200)

    def test_weight_qualifies_flips_between_modes(self, distribution):
        light = PSOContext(n=200, distribution=distribution)
        heavy = PSOContext(n=200, distribution=distribution, mode="heavy")
        negligible = 1e-7
        heavy_weight = 0.2
        assert light.weight_qualifies(negligible)
        assert not light.weight_qualifies(heavy_weight)
        assert heavy.weight_qualifies(heavy_weight)
        assert not heavy.weight_qualifies(negligible)

    def test_trivial_attacker_fails_in_heavy_mode_too(self, distribution):
        # A heavy data-independent predicate matches many records, so it
        # (almost) never matches exactly one: no output, no win.
        game = PSOGame(
            distribution,
            150,
            ConstantMechanism(),
            TrivialAttacker(0.25),  # heavy weight
            mode="heavy",
        )
        result = game.run(100, rng=9)
        assert result.negligible_weight_rate.estimate == 1.0  # weight qualifies
        assert result.success.estimate <= 0.02  # but isolation never happens

    def test_identity_attacker_loses_heavy_mode(self, distribution):
        # The identity reader emits negligible-weight predicates, which the
        # heavy-mode condition rejects: the game is mode-faithful.
        game = PSOGame(
            distribution, 100, IdentityMechanism(), IdentityAttacker(), mode="heavy"
        )
        result = game.run(30, rng=10)
        assert result.success.estimate == 0.0
        assert result.isolation_rate.estimate >= 0.9

    def test_invalid_mode(self, distribution):
        with pytest.raises(ValueError):
            PSOContext(n=10, distribution=distribution, mode="medium")
        with pytest.raises(ValueError):
            PSOContext(n=10, distribution=distribution, heavy_coefficient=0.5)
