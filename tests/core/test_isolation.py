"""Tests for isolation (Definition 2.1)."""

import pytest

from repro.core.isolation import isolates, matching_count, matching_indices
from repro.core.predicate import attribute_predicate
from repro.data.dataset import Dataset
from repro.data.domain import IntegerDomain
from repro.data.schema import Attribute, AttributeKind, Schema


@pytest.fixture
def dataset() -> Dataset:
    schema = Schema([Attribute("v", IntegerDomain(0, 9), AttributeKind.QUASI_IDENTIFIER)])
    return Dataset(schema, [(1,), (2,), (2,), (3,)])


class TestIsolation:
    def test_isolates_unique_value(self, dataset):
        assert isolates(attribute_predicate("v", 1), dataset)
        assert isolates(attribute_predicate("v", 3), dataset)

    def test_duplicated_value_not_isolated(self, dataset):
        # Definition 2.1 acts on values: two identical records can never be
        # isolated.
        assert not isolates(attribute_predicate("v", 2), dataset)

    def test_absent_value_not_isolated(self, dataset):
        assert not isolates(attribute_predicate("v", 9), dataset)

    def test_matching_count(self, dataset):
        assert matching_count(attribute_predicate("v", 2), dataset) == 2
        assert matching_count(attribute_predicate("v", {1, 2}), dataset) == 3

    def test_matching_indices(self, dataset):
        assert matching_indices(attribute_predicate("v", 2), dataset) == [1, 2]

    def test_tautology_not_isolating(self, dataset):
        assert not isolates(attribute_predicate("v", set(range(10))), dataset)

    def test_single_record_dataset(self):
        schema = Schema([Attribute("v", IntegerDomain(0, 9))])
        data = Dataset(schema, [(5,)])
        assert isolates(attribute_predicate("v", 5), data)
