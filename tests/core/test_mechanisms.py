"""Tests for the PSO mechanism wrappers."""

import numpy as np
import pytest

from repro.anonymity.agreement import AgreementAnonymizer
from repro.core.leftover_hash import hash_bit_predicate
from repro.core.mechanisms import (
    ComposedMechanism,
    ConstantMechanism,
    CountMechanism,
    DPCountMechanism,
    IdentityMechanism,
    KAnonymityMechanism,
    PostProcessedMechanism,
)
from repro.core.predicate import attribute_predicate
from repro.data.distributions import uniform_bits_distribution
from repro.data.generalized import GeneralizedDataset


@pytest.fixture(scope="module")
def data():
    return uniform_bits_distribution(16).sample(60, rng=0)


class TestCountMechanism:
    def test_counts_exactly(self, data):
        mechanism = CountMechanism(attribute_predicate("b0", 1))
        truth = sum(1 for record in data if record["b0"] == 1)
        assert mechanism.release(data) == truth

    def test_deterministic(self, data):
        mechanism = CountMechanism(hash_bit_predicate("q", 0))
        assert mechanism.release(data) == mechanism.release(data)

    def test_name_mentions_query(self):
        mechanism = CountMechanism(attribute_predicate("b0", 1))
        assert "b0" in mechanism.name


class TestDPCountMechanism:
    def test_noisy_but_centered(self, data):
        mechanism = DPCountMechanism(attribute_predicate("b0", 1), epsilon=1.0)
        truth = sum(1 for record in data if record["b0"] == 1)
        rng = np.random.default_rng(1)
        releases = [mechanism.release(data, rng) for _ in range(2_000)]
        assert np.mean(releases) == pytest.approx(truth, abs=0.2)

    def test_epsilon_property(self):
        mechanism = DPCountMechanism(attribute_predicate("b0", 1), epsilon=0.5)
        assert mechanism.epsilon == 0.5


class TestPostProcessed:
    def test_applies_function(self, data):
        base = CountMechanism(attribute_predicate("b0", 1))
        parity = PostProcessedMechanism(base, lambda c: c % 2, label="parity")
        assert parity.release(data) == base.release(data) % 2
        assert parity.name.startswith("parity(")


class TestComposed:
    def test_tuple_of_components(self, data):
        components = [
            CountMechanism(attribute_predicate(f"b{i}", 1)) for i in range(3)
        ]
        composed = ComposedMechanism(components)
        output = composed.release(data, rng=0)
        assert len(output) == 3
        assert output == tuple(m.release(data) for m in components)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ComposedMechanism([])

    def test_len(self):
        composed = ComposedMechanism([ConstantMechanism()] * 5)
        assert len(composed) == 5

    def test_name_truncates(self):
        composed = ComposedMechanism([ConstantMechanism()] * 5)
        assert "x5" in composed.name


class TestKAnonymityMechanism:
    def test_releases_generalized_dataset(self, data):
        mechanism = KAnonymityMechanism(AgreementAnonymizer(4))
        release = mechanism.release(data)
        assert isinstance(release, GeneralizedDataset)
        assert release.is_k_anonymous(4)

    def test_rejects_non_anonymizer(self):
        with pytest.raises(TypeError):
            KAnonymityMechanism(object())

    def test_name_includes_k(self):
        mechanism = KAnonymityMechanism(AgreementAnonymizer(4), label="agree")
        assert mechanism.name == "agree(k=4)"


class TestExtremes:
    def test_constant_ignores_data(self, data):
        mechanism = ConstantMechanism("nothing")
        assert mechanism.release(data) == "nothing"

    def test_identity_returns_data(self, data):
        mechanism = IdentityMechanism()
        assert mechanism.release(data) is data
