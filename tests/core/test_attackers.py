"""Tests for the PSO adversaries."""

import numpy as np
import pytest

from repro.anonymity.agreement import AgreementAnonymizer
from repro.core.attackers import (
    CompositionAttacker,
    IdentityAttacker,
    KAnonymityPSOAttacker,
    TrivialAttacker,
    build_composition_suite,
)
from repro.core.pso import PSOContext
from repro.data.distributions import ProductDistribution, uniform_bits_distribution, uniform_bits_schema
from repro.data.domain import CategoricalDomain
from repro.data.schema import Attribute, AttributeKind, Schema


@pytest.fixture(scope="module")
def distribution():
    return uniform_bits_distribution(64)


@pytest.fixture
def context(distribution):
    return PSOContext(n=200, distribution=distribution)


def _rng():
    return np.random.default_rng(0)


class TestTrivialAttacker:
    def test_optimal_weight(self, context):
        predicate = TrivialAttacker("optimal").attack(None, context, _rng())
        assert predicate.analytic_weight == pytest.approx(1.0 / 200)

    def test_negligible_weight(self, context):
        predicate = TrivialAttacker("negligible").attack(None, context, _rng())
        assert predicate.analytic_weight == pytest.approx(context.weight_threshold)

    def test_explicit_float(self, context):
        predicate = TrivialAttacker(0.125).attack(None, context, _rng())
        assert predicate.analytic_weight == 0.125

    def test_fresh_salts_per_attack(self, context, distribution):
        attacker = TrivialAttacker("optimal")
        rng = _rng()
        a = attacker.attack(None, context, rng)
        b = attacker.attack(None, context, rng)
        record = distribution.sample_record(rng=1)
        # Different salts: descriptions differ.
        assert a.description != b.description

    def test_invalid_presets(self):
        with pytest.raises(ValueError):
            TrivialAttacker("huge")
        with pytest.raises(ValueError):
            TrivialAttacker(0.0)


class TestIdentityAttacker:
    def test_reads_unique_record(self, context, distribution):
        data = distribution.sample(50, rng=2)
        predicate = IdentityAttacker().attack(data, context, _rng())
        assert predicate is not None
        assert data.count(predicate) == 1

    def test_abstains_on_non_dataset(self, context):
        assert IdentityAttacker().attack(42, context, _rng()) is None

    def test_abstains_when_all_duplicated(self, context):
        from repro.data.dataset import Dataset

        schema = uniform_bits_schema(4)
        data = Dataset(schema, [(0, 0, 0, 0), (0, 0, 0, 0)], validate=False)
        assert IdentityAttacker().attack(data, context, _rng()) is None


class TestCompositionSuite:
    def test_suite_sizes(self):
        suite = build_composition_suite(256)
        levels = len(suite.adversary.thresholds)
        assert suite.num_counts == levels * (1 + suite.adversary.bits)
        assert suite.adversary.bits >= 2 * np.log2(256)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            build_composition_suite(1)

    def test_attack_round_trip(self, distribution):
        n = 128
        suite = build_composition_suite(n)
        context = PSOContext(n=n, distribution=distribution)
        rng = _rng()
        wins = 0
        for seed in range(10):
            data = distribution.sample(n, rng=seed)
            output = suite.mechanism.release(data, rng)
            predicate = suite.adversary.attack(output, context, rng)
            if predicate is None:
                continue
            # The predicate must carry a negligible analytic weight.
            assert predicate.analytic_weight <= context.weight_threshold
            if data.count(predicate) == 1:
                wins += 1
        assert wins >= 3  # well above the ~n^-1 secure ceiling

    def test_abstains_on_malformed_output(self, context):
        suite = build_composition_suite(128)
        assert suite.adversary.attack("bogus", context, _rng()) is None
        assert suite.adversary.attack((1, 2, 3), context, _rng()) is None

    def test_abstains_without_singleton_level(self, context):
        suite = build_composition_suite(128)
        levels = len(suite.adversary.thresholds)
        fake = tuple([0] * levels + [0] * (levels * suite.adversary.bits))
        assert suite.adversary.attack(fake, context, _rng()) is None

    def test_attacker_validation(self):
        with pytest.raises(ValueError):
            CompositionAttacker("s", (), 4)
        with pytest.raises(ValueError):
            CompositionAttacker("s", (0.5, 0.1), 4)  # not ascending
        with pytest.raises(ValueError):
            CompositionAttacker("s", (0.1, 0.5), 0)


class TestKAnonymityAttacker:
    def test_refine_mode_produces_negligible_conjunction(self):
        distribution = uniform_bits_distribution(128)
        context = PSOContext(n=250, distribution=distribution)
        data = distribution.sample(250, rng=3)
        release = AgreementAnonymizer(4).anonymize(data)
        predicate = KAnonymityPSOAttacker("refine").attack(release, context, _rng())
        assert predicate is not None
        bound = predicate.weight_bound(distribution)
        assert bound <= context.weight_threshold

    def test_singleton_mode_needs_singletons(self):
        # All-QI data: agreement groups are exact classes of size k, so no
        # singleton exists and the attacker abstains.
        distribution = uniform_bits_distribution(64)
        context = PSOContext(n=100, distribution=distribution)
        data = distribution.sample(100, rng=4)
        release = AgreementAnonymizer(4).anonymize(data)
        assert KAnonymityPSOAttacker("singleton").attack(release, context, _rng()) is None

    def test_singleton_mode_with_raw_sensitive(self):
        bits = uniform_bits_schema(96)
        schema = Schema(
            list(bits.attributes)
            + [Attribute("secret", CategoricalDomain(range(50)), AttributeKind.SENSITIVE)]
        )
        distribution = ProductDistribution.uniform(schema)
        context = PSOContext(n=200, distribution=distribution)
        data = distribution.sample(200, rng=5)
        release = AgreementAnonymizer(4).anonymize(data)
        predicate = KAnonymityPSOAttacker("singleton").attack(release, context, _rng())
        assert predicate is not None
        assert data.count(predicate) == 1  # isolates the singleton's source

    def test_abstains_on_non_release(self, context):
        assert KAnonymityPSOAttacker().attack(42, context, _rng()) is None

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            KAnonymityPSOAttacker("aggressive")


class TestCountExploitingAttacker:
    def test_predicate_depends_on_output(self, context):
        from repro.core.attackers import CountExploitingAttacker

        attacker = CountExploitingAttacker()
        rng = _rng()
        a = attacker.attack(17, context, np.random.default_rng(0))
        b = attacker.attack(18, context, np.random.default_rng(0))
        assert a.description != b.description  # output folded into the salt

    def test_weight_presets(self, context):
        from repro.core.attackers import CountExploitingAttacker

        negligible = CountExploitingAttacker("negligible").attack(5, context, _rng())
        assert negligible.analytic_weight == pytest.approx(context.weight_threshold)
        optimal = CountExploitingAttacker("optimal").attack(5, context, _rng())
        assert optimal.analytic_weight == pytest.approx(1.0 / context.n)
        with pytest.raises(ValueError):
            CountExploitingAttacker("heavy")
