"""Tests for the Monte-Carlo weight-bound cache (Predicate.weight_bound)."""

import pytest

from repro.core.predicate import (
    Predicate,
    attribute_predicate,
    clear_weight_bound_cache,
    weight_bound_cache_info,
)
from repro.data.distributions import uniform_bits_distribution


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_weight_bound_cache()
    yield
    clear_weight_bound_cache()


class SamplingSpy:
    """Wraps a distribution and records every ``sample`` call."""

    def __init__(self, inner):
        self.inner = inner
        self.sample_calls = 0

    @property
    def schema(self):
        return self.inner.schema

    @property
    def cache_token(self):
        return self.inner.cache_token

    def sample(self, n, rng=None):
        self.sample_calls += 1
        return self.inner.sample(n, rng)

    def conjunction_weight(self, conditions):
        return self.inner.conjunction_weight(conditions)


def opaque_predicate(label: str) -> Predicate:
    """A predicate with no structure, so weight_bound must Monte-Carlo it."""
    return Predicate(lambda record: record["b0"] == 1, f"opaque[{label}]")


SAMPLES = 400


class TestCacheHits:
    def test_hit_returns_same_bound_without_resampling(self):
        spy = SamplingSpy(uniform_bits_distribution(4))
        predicate = opaque_predicate("p")
        first = predicate.weight_bound(spy, samples=SAMPLES)
        assert spy.sample_calls == 1
        second = predicate.weight_bound(spy, samples=SAMPLES)
        assert spy.sample_calls == 1  # served from cache, no new sampling
        assert second == first
        info = weight_bound_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1

    def test_equal_predicate_objects_share_an_entry(self):
        spy = SamplingSpy(uniform_bits_distribution(4))
        opaque_predicate("same").weight_bound(spy, samples=SAMPLES)
        opaque_predicate("same").weight_bound(spy, samples=SAMPLES)
        assert spy.sample_calls == 1

    def test_rng_argument_does_not_change_a_cached_value(self):
        # Cached values are pure functions of the key (key-derived RNG), so
        # callers passing different rngs still agree — the property that
        # keeps parallel and serial runs bit-identical.
        spy = SamplingSpy(uniform_bits_distribution(4))
        first = opaque_predicate("p").weight_bound(spy, samples=SAMPLES, rng=1)
        second = opaque_predicate("p").weight_bound(spy, samples=SAMPLES, rng=2)
        assert first == second


class TestCacheKeying:
    def test_distinct_predicates_do_not_collide(self):
        spy = SamplingSpy(uniform_bits_distribution(4))
        opaque_predicate("a").weight_bound(spy, samples=SAMPLES)
        opaque_predicate("b").weight_bound(spy, samples=SAMPLES)
        assert spy.sample_calls == 2
        assert weight_bound_cache_info()["size"] == 2

    def test_distinct_distributions_do_not_collide(self):
        narrow = SamplingSpy(uniform_bits_distribution(4))
        wide = SamplingSpy(uniform_bits_distribution(6))
        predicate = opaque_predicate("p")
        predicate.weight_bound(narrow, samples=SAMPLES)
        predicate.weight_bound(wide, samples=SAMPLES)
        assert narrow.sample_calls == 1 and wide.sample_calls == 1
        assert weight_bound_cache_info()["size"] == 2

    def test_distinct_sampling_parameters_do_not_collide(self):
        spy = SamplingSpy(uniform_bits_distribution(4))
        predicate = opaque_predicate("p")
        predicate.weight_bound(spy, samples=SAMPLES)
        predicate.weight_bound(spy, samples=2 * SAMPLES)
        predicate.weight_bound(spy, samples=SAMPLES, confidence=0.9)
        assert spy.sample_calls == 3


class TestCacheBypass:
    def test_cache_false_always_resamples(self):
        spy = SamplingSpy(uniform_bits_distribution(4))
        predicate = opaque_predicate("p")
        predicate.weight_bound(spy, samples=SAMPLES, cache=False)
        predicate.weight_bound(spy, samples=SAMPLES, cache=False)
        assert spy.sample_calls == 2
        assert weight_bound_cache_info()["size"] == 0

    def test_distribution_without_token_is_not_cached(self):
        class Tokenless(SamplingSpy):
            @property
            def cache_token(self):
                return None

        spy = Tokenless(uniform_bits_distribution(4))
        predicate = opaque_predicate("p")
        predicate.weight_bound(spy, samples=SAMPLES)
        predicate.weight_bound(spy, samples=SAMPLES)
        assert spy.sample_calls == 2
        assert weight_bound_cache_info()["size"] == 0

    def test_structural_predicates_never_touch_the_cache(self):
        spy = SamplingSpy(uniform_bits_distribution(4))
        structural = attribute_predicate("b0", 1)
        assert structural.weight_bound(spy) == pytest.approx(0.5)
        assert spy.sample_calls == 0
        assert weight_bound_cache_info()["size"] == 0
