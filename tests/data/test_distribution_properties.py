"""Property-based tests on the distribution layer's probability laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.distributions import (
    AttributeDistribution,
    ProductDistribution,
    uniform_bits_distribution,
)
from repro.data.domain import CategoricalDomain, IntegerDomain
from repro.data.schema import Attribute, AttributeKind, Schema


@st.composite
def categorical_distributions(draw):
    """A random categorical distribution over 2-8 values."""
    size = draw(st.integers(2, 8))
    weights = draw(
        st.lists(st.floats(0.01, 10.0), min_size=size, max_size=size)
    )
    total = sum(weights)
    domain = CategoricalDomain([f"v{i}" for i in range(size)])
    return AttributeDistribution(
        domain, {f"v{i}": w / total for i, w in enumerate(weights)}
    )


class TestAttributeDistributionLaws:
    @given(dist=categorical_distributions())
    @settings(max_examples=40, deadline=None)
    def test_probabilities_sum_to_one(self, dist):
        total = sum(dist.probability(v) for v in dist.domain)
        assert total == pytest.approx(1.0)

    @given(dist=categorical_distributions())
    @settings(max_examples=40, deadline=None)
    def test_set_probability_is_additive(self, dist):
        values = list(dist.domain)
        half = set(values[: len(values) // 2])
        rest = set(values) - half
        assert dist.probability_of_set(half) + dist.probability_of_set(rest) == (
            pytest.approx(1.0)
        )

    @given(dist=categorical_distributions())
    @settings(max_examples=40, deadline=None)
    def test_min_entropy_bounds(self, dist):
        import math

        entropy = dist.min_entropy()
        assert 0.0 <= entropy <= math.log2(len(dist.domain)) + 1e-9

    @given(dist=categorical_distributions(), seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_samples_stay_in_support(self, dist, seed):
        support = set(dist.support)
        for value in dist.sample(50, rng=seed):
            assert value in support


class TestProductDistributionLaws:
    @given(width=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_record_probabilities_product(self, width):
        dist = uniform_bits_distribution(width)
        record = dist.sample_record(rng=0)
        assert dist.record_probability(record) == pytest.approx(0.5**width)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_conjunction_weight_monotone_in_conditions(self, seed):
        schema = Schema(
            [
                Attribute("a", IntegerDomain(0, 9), AttributeKind.QUASI_IDENTIFIER),
                Attribute("b", IntegerDomain(0, 9), AttributeKind.QUASI_IDENTIFIER),
            ]
        )
        dist = ProductDistribution.uniform(schema)
        loose = dist.conjunction_weight({"a": set(range(5))})
        tight = dist.conjunction_weight({"a": set(range(5)), "b": set(range(3))})
        assert tight <= loose
        assert tight == pytest.approx(0.5 * 0.3)
