"""Tests for generalization hierarchies and GeneralizedValue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.domain import CategoricalDomain, IntegerDomain
from repro.data.hierarchy import (
    GeneralizedValue,
    IntervalHierarchy,
    SuppressionHierarchy,
    TaxonomyHierarchy,
    ZipPrefixHierarchy,
    default_hierarchy,
)


class TestGeneralizedValue:
    def test_raw_singleton(self):
        value = GeneralizedValue.raw(42)
        assert value.is_singleton
        assert value.matches(42)
        assert not value.matches(43)

    def test_equality_by_cover_set(self):
        a = GeneralizedValue("30-39", range(30, 40))
        b = GeneralizedValue("thirties", range(30, 40))
        assert a == b
        assert hash(a) == hash(b)

    def test_labels_are_display_only(self):
        a = GeneralizedValue("x", [1, 2])
        b = GeneralizedValue("x", [1, 3])
        assert a != b

    def test_empty_cover_rejected(self):
        with pytest.raises(ValueError):
            GeneralizedValue("*", [])

    def test_str_is_label(self):
        assert str(GeneralizedValue("1234*", ["12340"])) == "1234*"


class TestSuppressionHierarchy:
    def test_two_levels(self):
        hierarchy = SuppressionHierarchy(CategoricalDomain(["a", "b"]))
        assert hierarchy.levels == 2
        assert hierarchy.generalize("a", 0).is_singleton
        top = hierarchy.generalize("a", 1)
        assert top.covers == frozenset(["a", "b"])

    def test_invalid_level(self):
        hierarchy = SuppressionHierarchy(CategoricalDomain(["a"]))
        with pytest.raises(ValueError):
            hierarchy.generalize("a", 2)

    def test_invalid_value(self):
        hierarchy = SuppressionHierarchy(CategoricalDomain(["a"]))
        with pytest.raises(ValueError):
            hierarchy.generalize("z", 0)


class TestZipPrefixHierarchy:
    @pytest.fixture
    def hierarchy(self):
        zips = CategoricalDomain(["12340", "12341", "12999", "23456"])
        return ZipPrefixHierarchy(zips)

    def test_levels(self, hierarchy):
        assert hierarchy.levels == 6  # 5 digits + raw

    def test_paper_example_masking(self, hierarchy):
        value = hierarchy.generalize("12340", 1)
        assert value.label == "1234*"
        assert value.covers == frozenset(["12340", "12341"])

    def test_wider_prefix(self, hierarchy):
        value = hierarchy.generalize("12340", 3)
        assert value.label == "12***"
        assert value.covers == frozenset(["12340", "12341", "12999"])

    def test_top_level_is_suppression(self, hierarchy):
        value = hierarchy.generalize("12340", 5)
        assert value.covers == frozenset(["12340", "12341", "12999", "23456"])

    def test_nesting(self, hierarchy):
        lower = hierarchy.generalize("12340", 1)
        higher = hierarchy.generalize("12340", 2)
        assert lower.covers <= higher.covers

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            ZipPrefixHierarchy(CategoricalDomain(["123", "12345"]))


class TestIntervalHierarchy:
    @pytest.fixture
    def hierarchy(self):
        return IntervalHierarchy(IntegerDomain(0, 100), widths=(5, 10, 20))

    def test_levels(self, hierarchy):
        assert hierarchy.levels == 5  # raw + 3 widths + suppression

    def test_paper_example_decade(self, hierarchy):
        value = hierarchy.generalize(33, 2)
        assert value.label == "30-39"
        assert value.covers == frozenset(range(30, 40))

    def test_clipping_at_domain_edge(self):
        hierarchy = IntervalHierarchy(IntegerDomain(0, 7), widths=(5,))
        value = hierarchy.generalize(6, 1)
        assert value.covers == frozenset({5, 6, 7})

    def test_nesting(self, hierarchy):
        for level in range(hierarchy.levels - 1):
            lower = hierarchy.generalize(42, level)
            higher = hierarchy.generalize(42, level + 1)
            assert lower.covers <= higher.covers

    def test_non_nesting_widths_rejected(self):
        with pytest.raises(ValueError):
            IntervalHierarchy(IntegerDomain(0, 100), widths=(4, 10))

    def test_empty_widths_rejected(self):
        with pytest.raises(ValueError):
            IntervalHierarchy(IntegerDomain(0, 100), widths=())

    @given(value=st.integers(0, 100), level=st.integers(0, 4))
    @settings(max_examples=60, deadline=None)
    def test_value_always_covered(self, value, level):
        hierarchy = IntervalHierarchy(IntegerDomain(0, 100), widths=(5, 10, 20))
        assert hierarchy.generalize(value, level).matches(value)


class TestTaxonomyHierarchy:
    @pytest.fixture
    def hierarchy(self):
        domain = CategoricalDomain(["covid", "flu", "cf", "asthma"])
        parents = {
            "covid": "RESP", "flu": "RESP",
            "cf": "PULM", "asthma": "PULM",
            "RESP": "ANY", "PULM": "ANY",
        }
        return TaxonomyHierarchy(domain, parents)

    def test_paper_example_pulm(self, hierarchy):
        value = hierarchy.generalize("cf", 1)
        assert value.label == "PULM"
        assert value.covers == frozenset(["cf", "asthma"])

    def test_root_level(self, hierarchy):
        value = hierarchy.generalize("cf", 2)
        assert value.covers == frozenset(["covid", "flu", "cf", "asthma"])

    def test_top_is_suppression(self, hierarchy):
        assert hierarchy.generalize("cf", hierarchy.levels - 1).label == "*"

    def test_unequal_depths_rejected(self):
        domain = CategoricalDomain(["a", "b"])
        with pytest.raises(ValueError):
            TaxonomyHierarchy(domain, {"a": "P", "P": "ANY"})  # b is a bare leaf

    def test_cycle_rejected(self):
        domain = CategoricalDomain(["a"])
        with pytest.raises(ValueError):
            TaxonomyHierarchy(domain, {"a": "b", "b": "a"})


class TestDefaultHierarchy:
    def test_integer_gets_intervals(self):
        hierarchy = default_hierarchy(IntegerDomain(0, 50))
        assert isinstance(hierarchy, IntervalHierarchy)

    def test_categorical_gets_suppression(self):
        hierarchy = default_hierarchy(CategoricalDomain(["a"]))
        assert isinstance(hierarchy, SuppressionHierarchy)
