"""Tests for the immutable Dataset and Record types."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset, Record
from repro.data.domain import CategoricalDomain, IntegerDomain
from repro.data.schema import Attribute, AttributeKind, Schema


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("zip", CategoricalDomain(["12345", "12346", "23456"]), AttributeKind.QUASI_IDENTIFIER),
            Attribute("age", IntegerDomain(0, 120), AttributeKind.QUASI_IDENTIFIER),
            Attribute("sex", CategoricalDomain(["F", "M"]), AttributeKind.QUASI_IDENTIFIER),
            Attribute("disease", CategoricalDomain(["covid", "cf", "asthma"]), AttributeKind.SENSITIVE),
        ]
    )


@pytest.fixture
def toy(schema) -> Dataset:
    # The paper's toy example, Section 1.1.
    return Dataset(
        schema,
        [
            ("23456", 55, "F", "covid"),
            ("23456", 42, "F", "covid"),
            ("12345", 30, "M", "cf"),
            ("12346", 33, "F", "asthma"),
        ],
    )


class TestRecord:
    def test_name_access(self, toy):
        record = toy[0]
        assert record["zip"] == "23456"
        assert record["age"] == 55

    def test_equality_by_values(self, toy):
        assert toy[0] == toy[0]
        assert toy[0] != toy[1]
        assert toy[0] == ("23456", 55, "F", "covid")

    def test_hashable(self, toy):
        assert len({toy[0], toy[1], toy[0]}) == 2

    def test_as_dict(self, toy):
        assert toy[0].as_dict() == {
            "zip": "23456", "age": 55, "sex": "F", "disease": "covid",
        }

    def test_replace(self, toy):
        changed = toy[0].replace(age=56)
        assert changed["age"] == 56
        assert toy[0]["age"] == 55  # original untouched

    def test_get_with_default(self, toy):
        assert toy[0].get("height", -1) == -1
        assert toy[0].get("age") == 55

    def test_len_and_iter(self, toy):
        assert len(toy[0]) == 4
        assert list(toy[0]) == ["23456", 55, "F", "covid"]


class TestDatasetBasics:
    def test_len_and_indexing(self, toy):
        assert len(toy) == 4
        assert toy[2]["disease"] == "cf"

    def test_validation_on_construction(self, schema):
        with pytest.raises(ValueError):
            Dataset(schema, [("99999", 10, "F", "covid")])

    def test_from_dicts(self, schema, toy):
        rebuilt = Dataset.from_dicts(schema, [record.as_dict() for record in toy])
        assert rebuilt == toy

    def test_column(self, toy):
        assert toy.column("sex") == ("F", "F", "M", "F")

    def test_equality_and_hash(self, schema, toy):
        clone = Dataset(schema, toy.rows)
        assert clone == toy
        assert hash(clone) == hash(toy)


class TestRelationalOps:
    def test_project(self, toy):
        projected = toy.project(["sex", "age"])
        assert projected.schema.names == ("sex", "age")
        assert projected[0].values == ("F", 55)

    def test_drop(self, toy):
        dropped = toy.drop(["disease"])
        assert "disease" not in dropped.schema
        assert len(dropped) == 4

    def test_drop_unknown_raises(self, toy):
        with pytest.raises(KeyError):
            toy.drop(["height"])

    def test_filter(self, toy):
        women = toy.filter(lambda r: r["sex"] == "F")
        assert len(women) == 3

    def test_count(self, toy):
        assert toy.count(lambda r: r["disease"] == "covid") == 2

    def test_multiplicity(self, toy):
        assert toy.multiplicity(toy[0]) == 1
        assert toy.multiplicity(("00000", 1, "F", "cf")) == 0


class TestGroupingAndUniqueness:
    def test_group_by(self, toy):
        groups = toy.group_by(["sex"])
        assert sorted(groups[("F",)]) == [0, 1, 3]
        assert groups[("M",)] == [2]

    def test_value_counts(self, toy):
        counts = toy.value_counts("disease")
        assert counts["covid"] == 2

    def test_unique_fraction(self, toy):
        assert toy.unique_fraction(["zip", "age", "sex"]) == 1.0
        assert toy.unique_fraction(["sex"]) == 0.25  # only M is unique

    def test_unique_fraction_empty_raises(self, schema):
        with pytest.raises(ValueError):
            Dataset(schema, []).unique_fraction(["sex"])

    def test_head(self, toy):
        assert len(toy.head(2)) == 2


@given(
    ages=st.lists(st.integers(0, 120), min_size=1, max_size=30),
)
@settings(max_examples=40, deadline=None)
def test_group_sizes_partition_dataset(ages):
    schema = Schema([Attribute("age", IntegerDomain(0, 120))])
    dataset = Dataset(schema, [(a,) for a in ages])
    groups = dataset.group_by(["age"])
    assert sum(len(v) for v in groups.values()) == len(dataset)
    # Every index appears exactly once.
    indices = sorted(i for rows in groups.values() for i in rows)
    assert indices == list(range(len(dataset)))
