"""Tests for generalized records and datasets (anonymized releases)."""

import pytest

from repro.data.dataset import Dataset
from repro.data.domain import CategoricalDomain, IntegerDomain
from repro.data.generalized import GeneralizedDataset, GeneralizedRecord
from repro.data.hierarchy import GeneralizedValue
from repro.data.schema import Attribute, AttributeKind, Schema


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("zip", CategoricalDomain(["12345", "12346", "23456"]), AttributeKind.QUASI_IDENTIFIER),
            Attribute("age", IntegerDomain(0, 99), AttributeKind.QUASI_IDENTIFIER),
            Attribute("disease", CategoricalDomain(["covid", "cf", "asthma"]), AttributeKind.SENSITIVE),
        ]
    )


def _cell(schema, zips, ages, diseases) -> GeneralizedRecord:
    return GeneralizedRecord(
        schema,
        [
            GeneralizedValue("z", zips),
            GeneralizedValue("a", ages),
            GeneralizedValue("d", diseases),
        ],
    )


class TestGeneralizedRecord:
    def test_matches_covered_record(self, schema):
        cell = _cell(schema, ["12345", "12346"], range(30, 40), ["cf", "asthma"])
        assert cell.matches(("12345", 33, "cf"))
        assert not cell.matches(("23456", 33, "cf"))
        assert not cell.matches(("12345", 50, "cf"))

    def test_matches_rejects_wrong_arity(self, schema):
        cell = _cell(schema, ["12345"], [30], ["cf"])
        assert not cell.matches(("12345", 30))

    def test_from_raw(self, schema):
        dataset = Dataset(schema, [("12345", 30, "cf")])
        wrapped = GeneralizedRecord.from_raw(dataset[0])
        assert wrapped.matches(dataset[0])
        assert all(value.is_singleton for value in wrapped.values)

    def test_equality_by_cover_sets(self, schema):
        a = _cell(schema, ["12345"], [30], ["cf"])
        b = _cell(schema, ["12345"], [30], ["cf"])
        assert a == b and hash(a) == hash(b)

    def test_wrong_arity_rejected(self, schema):
        with pytest.raises(ValueError):
            GeneralizedRecord(schema, [GeneralizedValue.raw("12345")])

    def test_raw_values_rejected(self, schema):
        with pytest.raises(TypeError):
            GeneralizedRecord(schema, ["12345", 30, "cf"])

    def test_getitem(self, schema):
        cell = _cell(schema, ["12345"], [30], ["cf"])
        assert cell["zip"].covers == frozenset(["12345"])


class TestGeneralizedDataset:
    def test_paper_toy_example_is_2_anonymous(self, schema):
        # Section 1.1's anonymized table: two classes of two.
        top = _cell(schema, ["23456"], range(0, 100), ["covid"])
        bottom = _cell(schema, ["12345", "12346"], range(30, 40), ["cf", "asthma"])
        release = GeneralizedDataset(schema, [top, top, bottom, bottom])
        assert release.is_k_anonymous(2)
        assert not release.is_k_anonymous(3)
        assert release.smallest_class_size() == 2
        assert len(release.equivalence_classes()) == 2

    def test_class_sizes_sorted(self, schema):
        a = _cell(schema, ["12345"], [1], ["cf"])
        b = _cell(schema, ["12346"], [2], ["cf"])
        release = GeneralizedDataset(schema, [a, a, a, b])
        assert release.class_sizes() == [3, 1]

    def test_empty_release(self, schema):
        release = GeneralizedDataset(schema, [])
        assert release.is_k_anonymous(5)
        with pytest.raises(ValueError):
            release.smallest_class_size()

    def test_invalid_k(self, schema):
        release = GeneralizedDataset(schema, [])
        with pytest.raises(ValueError):
            release.is_k_anonymous(0)

    def test_negative_suppressed_rejected(self, schema):
        with pytest.raises(ValueError):
            GeneralizedDataset(schema, [], suppressed_count=-1)

    def test_consistency_with_source(self, schema):
        raw = Dataset(schema, [("23456", 55, "covid"), ("12345", 30, "cf")])
        release = GeneralizedDataset(
            schema,
            [
                _cell(schema, ["23456"], range(0, 100), ["covid"]),
                _cell(schema, ["12345", "12346"], range(30, 40), ["cf"]),
            ],
        )
        assert release.is_consistent_with(raw)

    def test_inconsistency_detected(self, schema):
        raw = Dataset(schema, [("23456", 55, "covid")])
        release = GeneralizedDataset(schema, [_cell(schema, ["12345"], [1], ["cf"])])
        assert not release.is_consistent_with(raw)

    def test_consistency_with_suppression(self, schema):
        raw = Dataset(schema, [("23456", 55, "covid"), ("12345", 30, "cf")])
        release = GeneralizedDataset(
            schema,
            [_cell(schema, ["12345"], [30], ["cf"])],
            suppressed_count=1,
        )
        assert release.is_consistent_with(raw)

    def test_length_mismatch_is_inconsistent(self, schema):
        raw = Dataset(schema, [("23456", 55, "covid")])
        release = GeneralizedDataset(schema, [], suppressed_count=0)
        assert not release.is_consistent_with(raw)
