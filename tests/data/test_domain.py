"""Tests for attribute domains."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.domain import CategoricalDomain, IntegerDomain, TupleDomain


class TestCategoricalDomain:
    def test_membership_and_order(self):
        domain = CategoricalDomain(["F", "M"])
        assert "F" in domain and "M" in domain
        assert "X" not in domain
        assert list(domain) == ["F", "M"]
        assert len(domain) == 2

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            CategoricalDomain(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CategoricalDomain([])

    def test_index_of(self):
        domain = CategoricalDomain(["x", "y", "z"])
        assert domain.index_of("y") == 1
        with pytest.raises(ValueError):
            domain.index_of("w")

    def test_equality_and_hash(self):
        a = CategoricalDomain(["x", "y"])
        b = CategoricalDomain(["x", "y"])
        c = CategoricalDomain(["y", "x"])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_validate(self):
        domain = CategoricalDomain(["a"])
        domain.validate("a")
        with pytest.raises(ValueError):
            domain.validate("b")


class TestIntegerDomain:
    def test_membership(self):
        domain = IntegerDomain(0, 10)
        assert 0 in domain and 10 in domain and 5 in domain
        assert -1 not in domain and 11 not in domain

    def test_booleans_are_not_members(self):
        # bool is an int subclass; domains treat it as a distinct type.
        assert True not in IntegerDomain(0, 10)

    def test_non_integers_not_members(self):
        domain = IntegerDomain(0, 10)
        assert 5.0 not in domain
        assert "5" not in domain

    def test_iteration_and_len(self):
        domain = IntegerDomain(3, 6)
        assert list(domain) == [3, 4, 5, 6]
        assert len(domain) == 4

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            IntegerDomain(5, 4)

    def test_singleton_range(self):
        domain = IntegerDomain(7, 7)
        assert list(domain) == [7]

    @given(low=st.integers(-1000, 1000), span=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_len_matches_iteration(self, low, span):
        domain = IntegerDomain(low, low + span)
        assert len(domain) == span + 1


class TestTupleDomain:
    def test_membership(self):
        domain = TupleDomain([IntegerDomain(0, 1), CategoricalDomain(["a", "b"])])
        assert (0, "a") in domain
        assert (1, "b") in domain
        assert (2, "a") not in domain
        assert (0,) not in domain
        assert "nope" not in domain

    def test_size_is_product(self):
        domain = TupleDomain([IntegerDomain(0, 4), CategoricalDomain(["a", "b", "c"])])
        assert len(domain) == 15

    def test_enumeration(self):
        domain = TupleDomain([IntegerDomain(0, 1), IntegerDomain(0, 1)])
        assert sorted(domain) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_enumeration_cap(self):
        big = TupleDomain([IntegerDomain(0, 2_000)] * 3)
        assert not big.is_enumerable
        with pytest.raises(ValueError):
            list(big)

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            TupleDomain([])
