"""Tests for schemas and privacy-role annotations."""

import pytest

from repro.data.domain import CategoricalDomain, IntegerDomain
from repro.data.schema import Attribute, AttributeKind, Schema


@pytest.fixture
def medical_schema() -> Schema:
    return Schema(
        [
            Attribute("name", CategoricalDomain(["alice", "bob"]), AttributeKind.IDENTIFIER),
            Attribute("zip", CategoricalDomain(["12345", "23456"]), AttributeKind.QUASI_IDENTIFIER),
            Attribute("age", IntegerDomain(0, 120), AttributeKind.QUASI_IDENTIFIER),
            Attribute("disease", CategoricalDomain(["flu", "cf"]), AttributeKind.SENSITIVE),
        ]
    )


class TestSchemaBasics:
    def test_names_in_order(self, medical_schema):
        assert medical_schema.names == ("name", "zip", "age", "disease")

    def test_index_of(self, medical_schema):
        assert medical_schema.index_of("age") == 2
        with pytest.raises(KeyError):
            medical_schema.index_of("height")

    def test_contains(self, medical_schema):
        assert "zip" in medical_schema
        assert "height" not in medical_schema

    def test_duplicate_names_rejected(self):
        attribute = Attribute("x", IntegerDomain(0, 1))
        with pytest.raises(ValueError):
            Schema([attribute, attribute])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Schema([])

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(ValueError):
            Attribute("", IntegerDomain(0, 1))

    def test_equality(self, medical_schema):
        clone = Schema(list(medical_schema.attributes))
        assert clone == medical_schema
        assert hash(clone) == hash(medical_schema)


class TestPrivacyRoles:
    def test_identifiers(self, medical_schema):
        assert medical_schema.identifiers == ("name",)

    def test_quasi_identifiers(self, medical_schema):
        assert medical_schema.quasi_identifiers == ("zip", "age")

    def test_sensitive(self, medical_schema):
        assert medical_schema.sensitive == ("disease",)

    def test_default_kind_is_insensitive(self):
        attribute = Attribute("x", IntegerDomain(0, 1))
        assert attribute.kind is AttributeKind.INSENSITIVE


class TestRecordValidation:
    def test_valid_record(self, medical_schema):
        medical_schema.validate_record(("alice", "12345", 30, "flu"))

    def test_wrong_arity(self, medical_schema):
        with pytest.raises(ValueError):
            medical_schema.validate_record(("alice", "12345", 30))

    def test_out_of_domain_value(self, medical_schema):
        with pytest.raises(ValueError):
            medical_schema.validate_record(("alice", "99999", 30, "flu"))


class TestProjection:
    def test_project(self, medical_schema):
        projected = medical_schema.project(["age", "zip"])
        assert projected.names == ("age", "zip")

    def test_drop(self, medical_schema):
        dropped = medical_schema.drop(["name"])
        assert dropped.names == ("zip", "age", "disease")

    def test_drop_unknown_raises(self, medical_schema):
        with pytest.raises(KeyError):
            medical_schema.drop(["height"])

    def test_record_domain_size(self, medical_schema):
        domain = medical_schema.record_domain()
        assert len(domain) == 2 * 2 * 121 * 2
