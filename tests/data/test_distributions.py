"""Tests for attribute and product distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.distributions import (
    AttributeDistribution,
    ProductDistribution,
    bernoulli_distribution,
    uniform_bits_distribution,
    uniform_distribution,
)
from repro.data.domain import CategoricalDomain, IntegerDomain
from repro.data.schema import Attribute, AttributeKind, Schema


class TestAttributeDistribution:
    def test_uniform(self):
        dist = AttributeDistribution.uniform(CategoricalDomain(["a", "b", "c", "d"]))
        assert dist.probability("a") == pytest.approx(0.25)
        assert dist.probability("zzz") == 0.0

    def test_probabilities_must_sum_to_one(self):
        domain = CategoricalDomain(["a", "b"])
        with pytest.raises(ValueError):
            AttributeDistribution(domain, {"a": 0.7, "b": 0.7})

    def test_missing_value_rejected(self):
        domain = CategoricalDomain(["a", "b"])
        with pytest.raises(ValueError):
            AttributeDistribution(domain, {"a": 1.0})

    def test_extra_value_rejected(self):
        domain = CategoricalDomain(["a"])
        with pytest.raises(ValueError):
            AttributeDistribution(domain, {"a": 0.5, "b": 0.5})

    def test_negative_probability_rejected(self):
        domain = CategoricalDomain(["a", "b"])
        with pytest.raises(ValueError):
            AttributeDistribution(domain, {"a": 1.5, "b": -0.5})

    def test_zipf_is_decreasing_in_rank(self):
        dist = AttributeDistribution.zipf(CategoricalDomain(list("abcdef")), exponent=1.0)
        probs = [dist.probability(v) for v in "abcdef"]
        assert probs == sorted(probs, reverse=True)

    def test_zipf_zero_exponent_is_uniform(self):
        dist = AttributeDistribution.zipf(CategoricalDomain(["a", "b"]), exponent=0.0)
        assert dist.probability("a") == pytest.approx(0.5)

    def test_probability_of_set(self):
        dist = AttributeDistribution.uniform(IntegerDomain(1, 10))
        assert dist.probability_of_set({1, 2, 3}) == pytest.approx(0.3)
        assert dist.probability_of_set(lambda v: v > 8) == pytest.approx(0.2)

    def test_min_entropy_uniform(self):
        dist = AttributeDistribution.uniform(IntegerDomain(0, 255))
        assert dist.min_entropy() == pytest.approx(8.0)

    def test_sampling_respects_probabilities(self):
        domain = CategoricalDomain(["rare", "common"])
        dist = AttributeDistribution(domain, {"rare": 0.1, "common": 0.9})
        samples = dist.sample(5_000, rng=0)
        frequency = samples.count("rare") / len(samples)
        assert frequency == pytest.approx(0.1, abs=0.02)

    def test_support(self):
        domain = CategoricalDomain(["a", "b"])
        dist = AttributeDistribution(domain, {"a": 1.0, "b": 0.0})
        assert dist.support == ["a"]


class TestProductDistribution:
    @pytest.fixture
    def schema(self) -> Schema:
        return Schema(
            [
                Attribute("color", CategoricalDomain(["r", "g"]), AttributeKind.QUASI_IDENTIFIER),
                Attribute("size", IntegerDomain(1, 4), AttributeKind.QUASI_IDENTIFIER),
            ]
        )

    def test_uniform_construction(self, schema):
        dist = uniform_distribution(schema)
        assert dist.record_probability(("r", 1)) == pytest.approx(1 / 8)

    def test_missing_marginal_rejected(self, schema):
        with pytest.raises(ValueError):
            ProductDistribution(
                schema, {"color": AttributeDistribution.uniform(schema.attribute("color").domain)}
            )

    def test_wrong_domain_rejected(self, schema):
        marginals = {
            "color": AttributeDistribution.uniform(CategoricalDomain(["x"])),
            "size": AttributeDistribution.uniform(schema.attribute("size").domain),
        }
        with pytest.raises(ValueError):
            ProductDistribution(schema, marginals)

    def test_sampling_shape_and_validity(self, schema):
        dist = uniform_distribution(schema)
        data = dist.sample(100, rng=0)
        assert len(data) == 100
        for record in data:
            schema.validate_record(record.values)

    def test_sample_deterministic(self, schema):
        dist = uniform_distribution(schema)
        assert dist.sample(10, rng=1).rows == dist.sample(10, rng=1).rows

    def test_conjunction_weight_exact(self, schema):
        dist = uniform_distribution(schema)
        weight = dist.conjunction_weight({"color": {"r"}, "size": {1, 2}})
        assert weight == pytest.approx(0.5 * 0.5)

    def test_conjunction_weight_unconstrained_attribute(self, schema):
        dist = uniform_distribution(schema)
        assert dist.conjunction_weight({"color": {"r", "g"}}) == pytest.approx(1.0)

    def test_conjunction_weight_unknown_attribute(self, schema):
        dist = uniform_distribution(schema)
        with pytest.raises(KeyError):
            dist.conjunction_weight({"height": {1}})

    def test_estimate_weight_matches_exact(self, schema):
        dist = uniform_distribution(schema)
        exact = dist.conjunction_weight({"color": {"r"}})
        estimate = dist.estimate_weight(lambda r: r["color"] == "r", samples=4_000, rng=0)
        assert estimate == pytest.approx(exact, abs=0.03)

    def test_min_entropy_sums(self, schema):
        dist = uniform_distribution(schema)
        assert dist.min_entropy() == pytest.approx(1.0 + 2.0)

    @given(n=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_sample_size(self, n):
        dist = uniform_bits_distribution(4)
        assert len(dist.sample(n, rng=0)) == n


class TestHelpers:
    def test_bernoulli(self):
        dist = bernoulli_distribution(0.3)
        data = dist.sample(4_000, rng=0)
        mean = sum(data.column("bit")) / len(data)
        assert mean == pytest.approx(0.3, abs=0.03)

    def test_bernoulli_invalid_p(self):
        with pytest.raises(ValueError):
            bernoulli_distribution(1.5)

    def test_uniform_bits(self):
        dist = uniform_bits_distribution(16)
        assert dist.min_entropy() == pytest.approx(16.0)
        record = dist.sample_record(rng=0)
        assert all(value in (0, 1) for value in record.values)

    def test_uniform_bits_invalid_width(self):
        with pytest.raises(ValueError):
            uniform_bits_distribution(0)
