"""Tests for the synthetic SNP panel generator."""

import numpy as np
import pytest

from repro.data.genomes import GenomePanel, GenomePanelConfig


class TestConfig:
    def test_invalid_frequency_range(self):
        with pytest.raises(ValueError):
            GenomePanelConfig(frequency_range=(0.5, 0.1))
        with pytest.raises(ValueError):
            GenomePanelConfig(frequency_range=(0.0, 0.5))

    def test_invalid_snp_count(self):
        with pytest.raises(ValueError):
            GenomePanelConfig(snps=0)


class TestPanel:
    def test_generate_respects_config(self):
        panel = GenomePanel.generate(GenomePanelConfig(snps=100), rng=0)
        assert panel.snps == 100
        assert np.all((panel.frequencies > 0) & (panel.frequencies < 1))

    def test_frequencies_validated(self):
        with pytest.raises(ValueError):
            GenomePanel(np.array([0.0, 0.5]))
        with pytest.raises(ValueError):
            GenomePanel(np.array([]))
        with pytest.raises(ValueError):
            GenomePanel(np.zeros((2, 2)))

    def test_genotypes_in_allele_counts(self):
        panel = GenomePanel.generate(GenomePanelConfig(snps=50), rng=1)
        genotypes = panel.sample_genotypes(20, rng=2)
        assert genotypes.shape == (20, 50)
        assert set(np.unique(genotypes)) <= {0, 1, 2}

    def test_sampling_matches_frequencies(self):
        panel = GenomePanel(np.full(200, 0.3))
        genotypes = panel.sample_genotypes(500, rng=3)
        observed = genotypes.mean() / 2.0
        assert observed == pytest.approx(0.3, abs=0.02)

    def test_invalid_sample_count(self):
        panel = GenomePanel.generate(rng=4)
        with pytest.raises(ValueError):
            panel.sample_genotypes(0)

    def test_aggregate_frequencies(self):
        panel = GenomePanel(np.array([0.2, 0.8]))
        cohort = np.array([[0, 2], [2, 2]])
        aggregate = panel.aggregate_frequencies(cohort)
        assert aggregate == pytest.approx([0.5, 1.0])

    def test_aggregate_validates_shape(self):
        panel = GenomePanel(np.array([0.2, 0.8]))
        with pytest.raises(ValueError):
            panel.aggregate_frequencies(np.array([[0, 1, 2]]))
        with pytest.raises(ValueError):
            panel.aggregate_frequencies(np.empty((0, 2)))
