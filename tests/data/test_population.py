"""Tests for the synthetic population generator (GIC/voter-file stand-in)."""

import pytest

from repro.data.population import (
    QUASI_IDENTIFIERS,
    PopulationConfig,
    generate_population,
    gic_release,
    population_distribution,
    population_schema,
    voter_registry,
)


@pytest.fixture(scope="module")
def population():
    return generate_population(PopulationConfig(size=1_000, zip_count=50), rng=0)


class TestConfig:
    def test_defaults_valid(self):
        PopulationConfig()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            PopulationConfig(size=0)

    def test_invalid_zip_count(self):
        with pytest.raises(ValueError):
            PopulationConfig(zip_count=0)

    def test_invalid_year_range(self):
        with pytest.raises(ValueError):
            PopulationConfig(birth_year_range=(2000, 1990))


class TestSchema:
    def test_roles(self):
        schema = population_schema()
        assert schema.identifiers == ("name",)
        assert schema.quasi_identifiers == QUASI_IDENTIFIERS
        assert schema.sensitive == ("disease",)


class TestGeneration:
    def test_size(self, population):
        assert len(population) == 1_000

    def test_names_are_distinct(self, population):
        names = population.column("name")
        assert len(set(names)) == len(names)

    def test_records_fit_schema(self, population):
        for record in list(population)[:50]:
            population.schema.validate_record(record.values)

    def test_deterministic(self):
        config = PopulationConfig(size=100, zip_count=10)
        a = generate_population(config, rng=7)
        b = generate_population(config, rng=7)
        assert a.rows == b.rows

    def test_qi_uniqueness_is_high(self, population):
        # The Sweeney property the generator is calibrated for.
        assert population.unique_fraction(QUASI_IDENTIFIERS) > 0.9

    def test_single_attributes_not_unique(self, population):
        assert population.unique_fraction(("sex",)) == 0.0

    def test_zip_marginal_is_skewed(self, population):
        counts = population.value_counts("zip")
        most = counts.most_common(1)[0][1]
        least = min(counts.values())
        assert most > 3 * least  # Zipf head vs tail


class TestDistribution:
    def test_matches_generator_marginals(self):
        config = PopulationConfig(size=4_000, zip_count=20)
        dist = population_distribution(config)
        data = generate_population(config, rng=1)
        # Sex should be ~uniform in both.
        frequency = data.value_counts("sex")["F"] / len(data)
        assert frequency == pytest.approx(0.5, abs=0.03)
        assert dist.marginals["sex"].probability("F") == pytest.approx(0.5)

    def test_min_entropy_positive(self):
        assert population_distribution().min_entropy() > 20


class TestReleases:
    def test_gic_release_drops_name_only(self, population):
        release = gic_release(population)
        assert "name" not in release.schema
        assert "disease" in release.schema
        assert len(release) == len(population)

    def test_voter_registry_coverage(self, population):
        voters = voter_registry(population, coverage=0.5, rng=2)
        assert len(voters) == 500
        assert set(voters.schema.names) == {"name", *QUASI_IDENTIFIERS}

    def test_voter_registry_full_coverage(self, population):
        voters = voter_registry(population, coverage=1.0, rng=3)
        assert len(voters) == len(population)

    def test_voter_registry_invalid_coverage(self, population):
        with pytest.raises(ValueError):
            voter_registry(population, coverage=0.0)
        with pytest.raises(ValueError):
            voter_registry(population, coverage=1.5)

    def test_voters_are_real_people(self, population):
        voters = voter_registry(population, coverage=0.3, rng=4)
        names = set(population.column("name"))
        assert all(row["name"] in names for row in voters)
