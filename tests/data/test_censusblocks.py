"""Tests for the synthetic census microdata generator."""

import pytest

from repro.data.censusblocks import (
    CensusConfig,
    commercial_database,
    generate_census,
)


@pytest.fixture(scope="module")
def census():
    return generate_census(CensusConfig(blocks=10, mean_block_size=10), rng=0)


class TestConfig:
    def test_invalid_blocks(self):
        with pytest.raises(ValueError):
            CensusConfig(blocks=0)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            CensusConfig(mean_block_size=50, max_block_size=40)

    def test_invalid_age_range(self):
        with pytest.raises(ValueError):
            CensusConfig(age_range=(50, 10))


class TestGeneration:
    def test_every_block_inhabited(self, census):
        blocks = set(census.column("block"))
        assert blocks == set(range(10))

    def test_person_ids_unique(self, census):
        ids = census.column("person_id")
        assert len(set(ids)) == len(ids)

    def test_block_sizes_bounded(self, census):
        config = CensusConfig(blocks=10, mean_block_size=10)
        groups = census.group_by(["block"])
        for rows in groups.values():
            assert 1 <= len(rows) <= config.max_block_size

    def test_ages_in_range(self, census):
        low, high = CensusConfig().age_range
        assert all(low <= age <= high for age in census.column("age"))

    def test_deterministic(self):
        config = CensusConfig(blocks=5)
        assert generate_census(config, rng=3).rows == generate_census(config, rng=3).rows


class TestCommercialDatabase:
    def test_coverage(self, census):
        commercial = commercial_database(census, coverage=0.5, rng=1)
        assert len(commercial) == round(0.5 * len(census))

    def test_schema(self, census):
        commercial = commercial_database(census, rng=2)
        assert set(commercial.schema.names) == {"person_id", "block", "sex", "age"}

    def test_age_noise_bounded(self, census):
        commercial = commercial_database(census, coverage=1.0, age_error=2, rng=3)
        truth = {row["person_id"]: row["age"] for row in census}
        for row in commercial:
            assert abs(row["age"] - truth[row["person_id"]]) <= 2

    def test_race_is_absent(self, census):
        commercial = commercial_database(census, rng=4)
        assert "race" not in commercial.schema

    def test_invalid_coverage(self, census):
        with pytest.raises(ValueError):
            commercial_database(census, coverage=0.0)
