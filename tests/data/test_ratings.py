"""Tests for the sparse-ratings generator (Netflix stand-in)."""

import numpy as np
import pytest

from repro.data.ratings import (
    Rating,
    RatingsConfig,
    RatingsData,
    auxiliary_knowledge,
    generate_ratings,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_ratings(RatingsConfig(users=200, movies=300), rng=0)


class TestConfig:
    def test_invalid_users(self):
        with pytest.raises(ValueError):
            RatingsConfig(users=0)

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            RatingsConfig(mean_ratings_per_user=0)

    def test_invalid_days(self):
        with pytest.raises(ValueError):
            RatingsConfig(days=0)


class TestGeneration:
    def test_all_users_present(self, corpus):
        assert corpus.users == list(range(200))

    def test_minimum_profile_length(self, corpus):
        config = RatingsConfig()
        for user in corpus.users:
            assert len(corpus.profile(user)) >= config.min_ratings_per_user

    def test_no_duplicate_movies_per_user(self, corpus):
        for user in corpus.users:
            movies = [r.movie for r in corpus.profile(user)]
            assert len(set(movies)) == len(movies)

    def test_values_in_range(self, corpus):
        for user in corpus.users[:20]:
            for rating in corpus.profile(user):
                assert 1 <= rating.stars <= 5
                assert 0 <= rating.day < corpus.days
                assert 0 <= rating.movie < corpus.movies

    def test_popularity_is_long_tailed(self, corpus):
        counts = corpus.movie_popularity()
        assert counts[0] > 10 * max(counts[-10:].max(), 1) or counts[0] > counts[-1]
        # Zipf head: the top movie dominates the tail median.
        assert counts[0] >= np.median(counts[counts > 0]) * 3

    def test_duplicate_movie_rejected_in_constructor(self):
        with pytest.raises(ValueError):
            RatingsData({0: [Rating(1, 5, 0), Rating(1, 4, 2)]}, movies=5, days=10)

    def test_deterministic(self):
        config = RatingsConfig(users=30, movies=50)
        a = generate_ratings(config, rng=5)
        b = generate_ratings(config, rng=5)
        assert a.profile(7) == b.profile(7)


class TestAnonymization:
    def test_pseudonyms_permute_users(self, corpus):
        release, identity = corpus.anonymized(rng=1)
        assert sorted(identity.values()) == corpus.users
        assert len(release) == len(corpus)

    def test_profiles_preserved(self, corpus):
        release, identity = corpus.anonymized(rng=2)
        for pseudonym, user in list(identity.items())[:20]:
            assert release.profile(pseudonym) == corpus.profile(user)

    def test_identity_map_is_secret_permutation(self, corpus):
        _release, identity_a = corpus.anonymized(rng=3)
        _release, identity_b = corpus.anonymized(rng=4)
        assert identity_a != identity_b  # different shuffles


class TestAuxiliaryKnowledge:
    def test_size(self, corpus):
        aux = auxiliary_knowledge(corpus, 0, known=3, rng=0)
        assert len(aux) == 3

    def test_movies_come_from_profile(self, corpus):
        aux = auxiliary_knowledge(corpus, 5, known=4, rng=1)
        profile_movies = {r.movie for r in corpus.profile(5)}
        assert all(obs.movie in profile_movies for obs in aux)

    def test_noise_bounds(self, corpus):
        aux = auxiliary_knowledge(corpus, 5, known=4, star_error=1, day_error=7, rng=2)
        by_movie = {r.movie: r for r in corpus.profile(5)}
        for obs in aux:
            true = by_movie[obs.movie]
            assert obs.stars is not None and abs(obs.stars - true.stars) <= 1
            assert obs.day is not None and abs(obs.day - true.day) <= 7

    def test_omission(self, corpus):
        aux = auxiliary_knowledge(
            corpus, 5, known=4, omit_stars=1.0, omit_days=1.0, rng=3
        )
        assert all(obs.stars is None and obs.day is None for obs in aux)

    def test_too_much_knowledge_rejected(self, corpus):
        profile_length = len(corpus.profile(0))
        with pytest.raises(ValueError):
            auxiliary_knowledge(corpus, 0, known=profile_length + 1)

    def test_zero_knowledge_rejected(self, corpus):
        with pytest.raises(ValueError):
            auxiliary_knowledge(corpus, 0, known=0)
