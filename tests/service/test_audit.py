"""Audit log structure and the reconstruction auditor's verdicts."""

import json

import numpy as np
import pytest

from repro.queries.mechanism import ExactAnswerer
from repro.queries.workload import Workload
from repro.reconstruction.l2_decode import l2_decode
from repro.service import (
    AuditLog,
    CircuitBreakerTripped,
    ReconstructionAuditor,
    query_fingerprint,
)
from repro.utils.rng import derive_rng


def _log_workload(log, analyst, workload, answers, cached=False, epsilon=0.0):
    for query, answer in zip(workload, answers):
        log.append(
            analyst, query_fingerprint(query), query.mask, answer, cached, epsilon
        )


class TestAuditLog:
    def test_append_assigns_sequence_and_round_trips_mask(self):
        log = AuditLog()
        workload = Workload.random(12, 3, rng=0)
        _log_workload(log, "a", workload, [1.0, 2.0, 3.0])
        records = log.records()
        assert [record.seq for record in records] == [0, 1, 2]
        for record, query in zip(records, workload):
            assert np.array_equal(record.mask(), query.mask)
            assert record.n == 12
            assert record.query_size == query.size

    def test_per_analyst_views(self):
        log = AuditLog()
        workload = Workload.random(8, 2, rng=1)
        _log_workload(log, "a", workload, [1.0, 2.0])
        _log_workload(log, "b", workload, [1.0, 2.0])
        assert len(log) == 4
        assert len(log.records("a")) == 2
        assert all(record.analyst == "b" for record in log.records("b"))

    def test_unique_records_collapse_repeats(self):
        log = AuditLog()
        workload = Workload.random(8, 3, rng=2)
        _log_workload(log, "a", workload, [1.0, 2.0, 3.0])
        _log_workload(log, "a", workload, [1.0, 2.0, 3.0], cached=True)
        unique = log.unique_records("a")
        assert len(unique) == 3
        # First release wins: the retained records are the uncached ones.
        assert all(not record.cached for record in unique)

    def test_export_jsonl(self, tmp_path):
        log = AuditLog()
        workload = Workload.random(6, 2, rng=3)
        _log_workload(log, "a", workload, [1.0, 2.0], epsilon=0.5)
        path = tmp_path / "audit.jsonl"
        assert log.export_jsonl(path) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["analyst"] == "a"
        assert lines[0]["epsilon"] == 0.5
        assert bytes.fromhex(lines[0]["fingerprint"]) == log.records()[0].fingerprint


class TestReconstructionAuditor:
    def _attack_transcript(self, n=64, m=None, seed=0):
        """An exact-answer Dinur-Nissim transcript: fully reconstructible."""
        data = derive_rng(seed, "data").integers(0, 2, size=n)
        workload = Workload.random(n, m or 2 * n, rng=derive_rng(seed, "w"))
        answers = ExactAnswerer(data).answer_workload(workload)
        log = AuditLog()
        _log_workload(log, "attacker", workload, answers)
        return data, log

    def test_flags_scripted_attacker(self):
        data, log = self._attack_transcript()
        auditor = ReconstructionAuditor(
            data, agreement_threshold=0.9, audit_every=16, min_queries=32, alpha=0.0
        )
        report = auditor.audit(log, "attacker")
        assert report is not None
        assert report.agreement >= 0.9
        assert report.flagged
        assert auditor.is_tripped("attacker")
        with pytest.raises(CircuitBreakerTripped) as excinfo:
            auditor.check("attacker")
        assert excinfo.value.analyst == "attacker"
        assert excinfo.value.report.agreement == report.agreement

    def test_below_min_queries_not_audited(self):
        data, log = self._attack_transcript(m=10)
        auditor = ReconstructionAuditor(data, min_queries=32, audit_every=8, alpha=0.0)
        assert auditor.audit(log, "attacker") is None
        assert auditor.maybe_audit(log, "attacker") is None
        assert not auditor.is_tripped("attacker")

    def test_maybe_audit_respects_cadence(self):
        # m = n/2: auditable but nowhere near reconstructible, so the pass
        # runs and leaves the breaker closed.
        data, log = self._attack_transcript(n=128, m=64)
        auditor = ReconstructionAuditor(
            data, agreement_threshold=0.9, audit_every=64, min_queries=64, alpha=0.0
        )
        first = auditor.maybe_audit(log, "attacker")
        assert first is not None
        assert not first.flagged
        # No new queries since the checkpoint: nothing to do.
        assert auditor.maybe_audit(log, "attacker") is None

    def test_tripped_analyst_not_reaudited(self):
        data, log = self._attack_transcript()
        auditor = ReconstructionAuditor(
            data, agreement_threshold=0.9, audit_every=1, min_queries=16, alpha=0.0
        )
        auditor.audit(log, "attacker")
        assert auditor.is_tripped("attacker")
        assert auditor.maybe_audit(log, "attacker") is None

    def test_benign_analyst_unflagged(self):
        # A small transcript far below m ~ n cannot support reconstruction.
        data = derive_rng(7, "data").integers(0, 2, size=128)
        workload = Workload.random(128, 40, rng=derive_rng(7, "w"))
        answers = ExactAnswerer(data).answer_workload(workload)
        log = AuditLog()
        _log_workload(log, "benign", workload, answers)
        auditor = ReconstructionAuditor(
            data, agreement_threshold=0.9, audit_every=8, min_queries=32, alpha=0.0
        )
        report = auditor.audit(log, "benign")
        assert report is not None
        assert not report.flagged
        assert not auditor.is_tripped("benign")
        auditor.check("benign")  # does not raise

    def test_duplicate_queries_add_nothing(self):
        data, log = self._attack_transcript(n=32, m=64)
        # Replay the same transcript again as cached hits.
        for record in list(log.records("attacker")):
            log.append(
                "attacker", record.fingerprint, record.mask(), record.answer, True, 0.0
            )
        auditor = ReconstructionAuditor(data, audit_every=8, min_queries=16, alpha=0.0)
        report = auditor.audit(log, "attacker")
        assert report.unique_queries == 64
        assert report.queries_logged == 128

    def test_parameter_validation(self):
        data = np.zeros(8, dtype=int)
        with pytest.raises(ValueError):
            ReconstructionAuditor(data, agreement_threshold=0.4)
        with pytest.raises(ValueError):
            ReconstructionAuditor(data, audit_every=0)
        with pytest.raises(ValueError):
            ReconstructionAuditor(data, min_queries=0)
        with pytest.raises(ValueError, match="screen mode"):
            ReconstructionAuditor(data, screen="l1")
        with pytest.raises(ValueError, match="screen_margin"):
            ReconstructionAuditor(data, screen_margin=-0.1)


class TestL2Screening:
    """The l2 screening pass: cheap by default, LP-identical when it counts."""

    def _attack_transcript(self, n=64, m=None, seed=0):
        data = derive_rng(seed, "data").integers(0, 2, size=n)
        workload = Workload.random(n, m or 2 * n, rng=derive_rng(seed, "w"))
        answers = ExactAnswerer(data).answer_workload(workload)
        log = AuditLog()
        _log_workload(log, "attacker", workload, answers)
        return data, log

    def _auditors(self, data, **overrides):
        kwargs = dict(
            agreement_threshold=0.9, audit_every=16, min_queries=32, alpha=0.0
        )
        kwargs.update(overrides)
        return (
            ReconstructionAuditor(data, screen="lp", **kwargs),
            ReconstructionAuditor(data, screen="l2", **kwargs),
        )

    def test_verdict_matches_lp_auditor_on_attacker(self):
        # A reconstructible transcript lands near the threshold, so the
        # screen escalates and the verdict is decided by the exact same LP
        # solve — same agreement, same flag.
        data, log = self._attack_transcript()
        lp_auditor, l2_auditor = self._auditors(data)
        lp_report = lp_auditor.audit(log, "attacker")
        l2_report = l2_auditor.audit(log, "attacker")
        assert l2_report.flagged == lp_report.flagged is True
        assert l2_report.agreement == lp_report.agreement
        assert l2_report.mode == lp_report.mode  # the LP's mode, not l2-screen
        assert l2_report.escalated is True
        assert lp_report.escalated is False

    def test_cheap_pass_skips_the_lp(self):
        # m = n/4: nowhere near reconstructible, so the l2 agreement stays
        # clear of the threshold-minus-margin bar and the pass never runs
        # an LP.
        data = derive_rng(11, "data").integers(0, 2, size=256)
        workload = Workload.random(256, 64, rng=derive_rng(11, "w"))
        answers = ExactAnswerer(data).answer_workload(workload)
        log = AuditLog()
        _log_workload(log, "benign", workload, answers)
        _, l2_auditor = self._auditors(data, min_queries=48)
        report = l2_auditor.audit(log, "benign")
        assert report.mode == "l2-screen"
        assert report.escalated is False
        assert not report.flagged

    def test_margin_zero_still_escalates_at_the_bar(self):
        # screen_margin=0 trusts the screen right up to the threshold, but
        # an at-threshold screen must still be confirmed by the LP.
        data, log = self._attack_transcript(seed=1)
        _, l2_auditor = self._auditors(data, screen_margin=0.0)
        report = l2_auditor.audit(log, "attacker")
        assert report.escalated is True
        assert report.flagged


class TestWarmStartPasses:
    """Warm-started auditor passes: same verdicts, carried-over state."""

    def _growing_log(self, n=64, batches=4, seed=0):
        data = derive_rng(seed, "data").integers(0, 2, size=n)
        rng = derive_rng(seed, "w")
        log = AuditLog()
        checkpoints = []
        for _ in range(batches):
            workload = Workload.random(n, n // 2, rng=rng)
            answers = ExactAnswerer(data).answer_workload(workload)
            _log_workload(log, "attacker", workload, answers)
            checkpoints.append(len(log.unique_records("attacker")))
        return data, log, checkpoints

    def _replay_passes(self, data, log, **kwargs):
        auditor = ReconstructionAuditor(
            data,
            agreement_threshold=0.99,
            audit_every=1,
            min_queries=16,
            alpha=0.0,
            screen="l2",
            **kwargs,
        )
        # Audit the same analyst repeatedly as the transcript grows is
        # simulated by repeated full audits (cadence reset by audit()).
        reports = [auditor.audit(log, "attacker") for _ in range(3)]
        return auditor, reports

    def test_verdicts_match_cold_passes(self):
        data, log, _ = self._growing_log()
        _, cold = self._replay_passes(data, log, warm_start_passes=False)
        _, warm = self._replay_passes(data, log, warm_start_passes=True)
        for cold_report, warm_report in zip(cold, warm):
            assert warm_report.flagged == cold_report.flagged
            assert warm_report.agreement == cold_report.agreement

    def test_warm_state_is_stored_per_analyst(self):
        data, log, _ = self._growing_log()
        auditor, _ = self._replay_passes(data, log, warm_start_passes=True)
        assert set(auditor._warm) == {"attacker"}
        assert auditor._warm["attacker"].shape == data.shape

    def test_cold_auditor_keeps_no_state(self):
        data, log, _ = self._growing_log()
        auditor, _ = self._replay_passes(data, log, warm_start_passes=False)
        assert auditor._warm == {}

    def test_warm_repass_converges_immediately(self):
        # Re-auditing an unchanged exact transcript from the previous
        # solution: the warm candidate certifies without iterating, so the
        # second pass is far faster than the first.
        data, log, _ = self._growing_log(n=128)
        auditor = ReconstructionAuditor(
            data,
            agreement_threshold=1.0,
            audit_every=1,
            min_queries=16,
            alpha=0.0,
            screen="l2",
            screen_margin=0.0,
            warm_start_passes=True,
        )
        first = auditor.audit(log, "attacker")
        second = auditor.audit(log, "attacker")
        assert second.agreement == first.agreement
        # The stored solution certifies the unchanged transcript upfront:
        # the repass costs one matvec, not a solve.  (Asserted via the
        # decoder rather than wall clock, which is noisy under load.)
        records = log.unique_records("attacker")
        workload = Workload(np.stack([record.mask() for record in records]))
        answers = np.array([record.answer for record in records])
        replay = l2_decode(workload, answers, 0.0, x0=auditor._warm["attacker"])
        assert replay.iterations == 0
