"""Telemetry across the serve stack: instruments fill, answers never change.

Two contracts are pinned here.  First, the *observability* contract: with
telemetry enabled, every pipeline stage's latency histogram fills, admission
rejects are counted by reason, cache and audit and budget state is visible
in one snapshot.  Second — the one that matters for the paper — the
*bit-identity* contract: telemetry must be a pure observer.  Answers,
budget-exhaustion points, and audit verdicts are byte-for-byte identical
with telemetry on or off, because the instrumentation never touches RNG
streams, lock ordering, or served values.
"""

import numpy as np
import pytest

from repro.compliance import ComplianceDenied, ComplianceGate
from repro.privacy.accounting import BudgetExhausted, ShardedAccountant
from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload
from repro.service import (
    QueryServer,
    RateLimit,
    ReconstructionAuditor,
    Rejected,
    ShardedQueryServer,
)
from repro.service.audit_worker import AuditWorkerPool
from repro.telemetry import NULL_TELEMETRY, Telemetry, to_prometheus
from repro.telemetry.instrument import (
    ADMISSION_REJECTS,
    AUDIT_PASS_SECONDS,
    AUDIT_QUEUE_DEPTH,
    BUDGET_EPSILON_REMAINING,
    BUDGET_EPSILON_SPENT,
    CACHE_EVICTIONS,
    CACHE_HITS,
    COMPLIANCE_DENIALS,
    COMPLIANCE_REQUIRE_SECONDS,
    LEASE_RECONCILIATIONS,
    REQUESTS_TOTAL,
    STAGE_SECONDS,
    analyst_digest_prefix,
)
from repro.utils.rng import derive_rng

N = 96
STAGES = (
    "compliance",
    "cache_lookup",
    "budget_reserve",
    "execute",
    "cache_put",
    "audit_append",
)


def make_data(seed=11):
    return derive_rng(seed, "telemetry-test").integers(0, 2, size=N)


def make_queries(count, seed=5):
    rng = derive_rng(seed, "telemetry-queries")
    return [SubsetQuery(rng.random(N) < 0.5) for _ in range(count)]


class TestPipelineInstrumentation:
    def test_workload_fills_every_stage_histogram(self):
        telemetry = Telemetry()
        server = QueryServer(make_data(), telemetry=telemetry)
        server.ask_workload("alice", Workload.random(N, 8, rng=0))
        snap = telemetry.snapshot()
        for stage in STAGES:
            point = snap.histogram_point(
                STAGE_SECONDS, stage=stage, shard="0", mechanism="laplace"
            )
            assert point is not None and point.count > 0, stage

    def test_single_miss_and_fused_hit_paths(self):
        telemetry = Telemetry()
        server = QueryServer(make_data(), telemetry=telemetry)
        query = make_queries(1)[0]
        server.ask("alice", query)
        server.ask("alice", query)
        snap = telemetry.snapshot()
        miss = snap.histogram_point(
            STAGE_SECONDS, stage="single_miss", shard="0", mechanism="laplace"
        )
        hit = snap.histogram_point(
            STAGE_SECONDS, stage="cache_hit_fastpath", shard="0", mechanism="laplace"
        )
        assert miss.count == 1
        assert hit.count == 1
        assert miss.sum > 0 and hit.sum > 0

    def test_requests_counted_per_analyst_digest(self):
        telemetry = Telemetry()
        server = QueryServer(make_data(), telemetry=telemetry)
        queries = make_queries(3)
        for query in queries:
            server.ask("alice", query)
        snap = telemetry.snapshot()
        value = snap.counter_value(
            REQUESTS_TOTAL,
            analyst=analyst_digest_prefix("alice"),
            shard="0",
            mechanism="laplace",
        )
        assert value == 3.0

    def test_stage_names_and_repr_unchanged(self):
        instrumented = QueryServer(make_data(), telemetry=Telemetry())
        plain = QueryServer(make_data())
        assert [s.name for s in instrumented.pipeline.stages] == [
            s.name for s in plain.pipeline.stages
        ]
        assert repr(instrumented.pipeline) == repr(plain.pipeline)

    def test_disabled_pipeline_carries_no_wrappers(self):
        server = QueryServer(make_data(), telemetry=False)
        assert server.pipeline._telemetry is None
        for stage in server.pipeline._serving:
            assert type(stage).__name__ != "TelemetryStage"


class TestAdmissionInstrumentation:
    def test_rate_limit_rejects_counted_by_reason(self):
        telemetry = Telemetry()
        now = [0.0]
        server = ShardedQueryServer(
            make_data(),
            seed=3,
            shards=2,
            rate_limit=RateLimit(rate=1.0, burst=1),
            clock=lambda: now[0],
            telemetry=telemetry,
        )
        queries = make_queries(3)
        server.ask("alice", queries[0])
        with pytest.raises(Rejected):
            server.ask("alice", queries[1])
        shard = str(server.shard_of("alice"))
        snap = telemetry.snapshot()
        assert (
            snap.counter_value(ADMISSION_REJECTS, reason="rate_limit", shard=shard)
            == 1.0
        )
        # Families are pre-created at zero: overload is present untouched.
        assert (
            snap.counter_value(ADMISSION_REJECTS, reason="overload", shard=shard)
            == 0.0
        )

    def test_admission_stage_latency_recorded(self):
        telemetry = Telemetry()
        server = ShardedQueryServer(
            make_data(),
            seed=3,
            shards=2,
            rate_limit=RateLimit(rate=1000.0, burst=100),
            telemetry=telemetry,
        )
        server.ask("alice", make_queries(1)[0])
        shard = str(server.shard_of("alice"))
        point = telemetry.snapshot().histogram_point(
            STAGE_SECONDS, stage="admission", shard=shard, mechanism="laplace"
        )
        assert point.count == 1


class TestCacheInstrumentation:
    def test_stripe_counters_visible_in_snapshot(self):
        telemetry = Telemetry()
        server = ShardedQueryServer(make_data(), seed=3, shards=2, telemetry=telemetry)
        query = make_queries(1)[0]
        server.ask("alice", query)
        server.ask("alice", query)
        snap = telemetry.snapshot()
        total_hits = sum(
            point.value for point in snap.counters if point.name == CACHE_HITS
        )
        assert total_hits == 1.0

    def test_evictions_counted_and_aggregated(self):
        telemetry = Telemetry()
        server = ShardedQueryServer(
            make_data(),
            seed=3,
            shards=1,
            cache_entries=2,
            cache_stripes=1,
            telemetry=telemetry,
        )
        for query in make_queries(5):
            server.ask("alice", query)
        stats = server.stats()
        assert stats["evictions"] == 3
        assert stats["entries"] == 2
        assert stats["misses"] == 5
        snap = telemetry.snapshot()
        total_evictions = sum(
            point.value for point in snap.counters if point.name == CACHE_EVICTIONS
        )
        assert total_evictions == 3.0

    def test_stats_drills_down_per_shard_and_stripe(self):
        server = ShardedQueryServer(make_data(), shards=2, cache_stripes=4)
        server.ask("alice", make_queries(1)[0])
        stats = server.stats()
        assert len(stats["per_shard"]) == 2
        assert len(stats["per_shard"][0]["per_stripe"]) == 4
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.0


class TestAuditInstrumentation:
    @staticmethod
    def make_auditor(data):
        return ReconstructionAuditor(
            data,
            agreement_threshold=0.99,
            audit_every=N // 8,
            min_queries=N // 4,
            alpha=None,
            screen="l2",
        )

    def test_pool_reports_depth_and_pass_latency(self):
        telemetry = Telemetry()
        data = make_data()
        auditor = self.make_auditor(data)
        pool = AuditWorkerPool(auditor, workers=2, telemetry=telemetry)
        server = QueryServer(
            data, auditor=auditor, audit_dispatch=pool, telemetry=telemetry
        )
        rng = derive_rng(0, "audit-traffic")
        for _ in range(4):
            server.ask_workload("alice", Workload.random(N, N // 4, rng=rng))
        assert pool.flush(timeout=10.0)
        snap = telemetry.snapshot()
        depth = [p for p in snap.gauges if p.name == AUDIT_QUEUE_DEPTH]
        assert depth and depth[0].value == 0.0  # drained
        assert pool.depth_peak >= 1
        passes = [p for p in snap.histograms if p.name == AUDIT_PASS_SECONDS]
        assert sum(p.count for p in passes) >= 1
        server.close()

    def test_bind_telemetry_is_idempotent(self):
        telemetry = Telemetry()
        auditor = self.make_auditor(make_data())
        pool = AuditWorkerPool(auditor, workers=1)
        pool.bind_telemetry(telemetry)
        first = pool._pass_hist
        pool.bind_telemetry(telemetry)  # every shard server calls in
        assert pool._pass_hist is first
        pool.close()


class TestComplianceInstrumentation:
    def test_require_timed_and_denials_counted(self):
        telemetry = Telemetry()
        gate = ComplianceGate(telemetry=telemetry)
        with pytest.raises(ComplianceDenied):
            gate.require(None, subject="mechanism-spec")
        snap = telemetry.snapshot()
        hist = snap.histogram_point(COMPLIANCE_REQUIRE_SECONDS)
        assert hist.count == 1
        assert (
            snap.counter_value(
                COMPLIANCE_DENIALS,
                reason="unspecified-release",
                requirement="unspecified-release",
            )
            == 1.0
        )

    def test_untelemetered_gate_has_no_overhead_path(self):
        gate = ComplianceGate()
        assert gate._telemetry is None
        with pytest.raises(ComplianceDenied):
            gate.require(None)


class TestAccountantInstrumentation:
    def test_budget_gauges_and_reconciliations(self):
        telemetry = Telemetry()
        accountant = ShardedAccountant(None, 4.0, shards=2, lease_chunk=0.5)
        server = ShardedQueryServer(
            make_data(),
            "laplace",
            {"epsilon_per_query": 0.5},
            accountant=accountant,
            seed=3,
            shards=2,
            telemetry=telemetry,
        )
        for query in make_queries(4):
            server.ask("alice", query)
        snap = telemetry.snapshot()
        spent = snap.gauge_value(BUDGET_EPSILON_SPENT)
        remaining = snap.gauge_value(BUDGET_EPSILON_REMAINING)
        assert spent == pytest.approx(accountant.global_spent())
        assert remaining == pytest.approx(4.0 - accountant.global_spent())
        assert accountant.reconciliations >= 1
        assert snap.counter_value(LEASE_RECONCILIATIONS) == float(
            accountant.reconciliations
        )


class TestBitIdentity:
    def test_answers_identical_with_telemetry_on_or_off(self):
        data = make_data()
        instrumented = ShardedQueryServer(
            data, "laplace", seed=3, shards=4, telemetry=Telemetry()
        )
        plain = ShardedQueryServer(data, "laplace", seed=3, shards=4, telemetry=False)
        queries = make_queries(10)
        for analyst in ("alice", "bob"):
            for query in queries:
                assert instrumented.ask(analyst, query) == plain.ask(analyst, query)
        workload = Workload.random(N, 20, rng=derive_rng(1, "wl"))
        np.testing.assert_array_equal(
            instrumented.ask_workload("carol", workload),
            plain.ask_workload("carol", workload),
        )

    def test_exhaustion_points_identical(self):
        data = make_data()
        outcomes = []
        for telemetry in (Telemetry(), False):
            server = ShardedQueryServer(
                data,
                "laplace",
                {"epsilon_per_query": 0.5},
                accountant=ShardedAccountant(3.0, 8.0, shards=4),
                seed=3,
                shards=4,
                telemetry=telemetry,
            )
            log = []
            for query in make_queries(30):
                try:
                    log.append(server.ask("alice", query))
                except BudgetExhausted as refusal:
                    log.append((str(refusal), refusal.scope))
            outcomes.append(log)
        assert outcomes[0] == outcomes[1]

    def test_env_var_enablement_is_bit_identical(self, monkeypatch):
        data = make_data()
        queries = make_queries(6)
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        reference = QueryServer(data, seed=3)
        plain = [reference.ask("alice", q) for q in queries]
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        server = QueryServer(data, seed=3)
        assert server.telemetry.enabled
        assert [server.ask("alice", q) for q in queries] == plain

    def test_null_telemetry_snapshot_is_empty_after_traffic(self):
        server = QueryServer(make_data(), telemetry=NULL_TELEMETRY)
        server.ask("alice", make_queries(1)[0])
        assert to_prometheus(NULL_TELEMETRY.snapshot()) == ""
