"""Accountant semantics: composition rules, budgets, all-or-nothing charges."""

import importlib.util

import pytest

from repro.privacy.accounting import advanced_composition
from repro.service import AdvancedAccountant, BasicAccountant, BudgetExhausted


class TestShimRemoved:
    def test_deprecated_module_is_gone(self):
        # The PR-4 re-export shim finished its deprecation window; the
        # canonical home is repro.privacy.accounting and the old path
        # must no longer resolve.
        assert importlib.util.find_spec("repro.service.accountant") is None


class TestRefund:
    def test_refund_reverses_charge(self):
        accountant = BasicAccountant(per_analyst_epsilon=1.0)
        accountant.charge("a", 2, 0.5)
        accountant.refund("a", 2, 0.5)
        assert accountant.analyst_epsilon("a") == pytest.approx(0.0)
        assert accountant.analyst_queries("a") == 0
        assert accountant.global_spent() == pytest.approx(0.0)
        # The budget is whole again.
        accountant.charge("a", 2, 0.5)

    def test_refund_unknown_analyst_refused(self):
        accountant = BasicAccountant()
        with pytest.raises(ValueError):
            accountant.refund("ghost", 1, 0.5)


class TestBasicAccountant:
    def test_epsilons_add(self):
        accountant = BasicAccountant()
        accountant.charge("a", 4, 0.5)
        accountant.charge("a", 2, 0.25)
        assert accountant.analyst_epsilon("a") == pytest.approx(2.5)
        assert accountant.analyst_queries("a") == 6

    def test_global_is_sum_over_analysts(self):
        accountant = BasicAccountant()
        accountant.charge("a", 2, 1.0)
        accountant.charge("b", 3, 1.0)
        assert accountant.global_spent() == pytest.approx(5.0)

    def test_per_analyst_budget_refuses(self):
        accountant = BasicAccountant(per_analyst_epsilon=1.0)
        accountant.charge("a", 3, 0.25)
        with pytest.raises(BudgetExhausted) as excinfo:
            accountant.charge("a", 2, 0.25)
        assert excinfo.value.scope == "analyst"
        assert excinfo.value.analyst == "a"
        assert excinfo.value.budget == 1.0

    def test_all_or_nothing_leaves_ledger_unchanged(self):
        accountant = BasicAccountant(per_analyst_epsilon=1.0)
        accountant.charge("a", 1, 0.5)
        with pytest.raises(BudgetExhausted):
            accountant.charge("a", 10, 0.5)
        # Nothing from the refused batch was recorded.
        assert accountant.analyst_epsilon("a") == pytest.approx(0.5)
        assert accountant.analyst_queries("a") == 1
        # An exactly-fitting charge still goes through afterwards.
        accountant.charge("a", 1, 0.5)
        assert accountant.remaining_epsilon("a") == pytest.approx(0.0)

    def test_global_budget_spans_analysts(self):
        accountant = BasicAccountant(global_epsilon=1.0)
        accountant.charge("a", 3, 0.25)
        with pytest.raises(BudgetExhausted) as excinfo:
            accountant.charge("b", 2, 0.25)
        assert excinfo.value.scope == "global"
        accountant.charge("b", 1, 0.25)  # exactly fills the global budget

    def test_query_count_budget(self):
        accountant = BasicAccountant(max_queries_per_analyst=5)
        accountant.charge("a", 5, 0.0)
        with pytest.raises(BudgetExhausted) as excinfo:
            accountant.charge("a", 1, 0.0)
        assert excinfo.value.scope == "queries"
        # Other analysts are unaffected.
        accountant.charge("b", 5, 0.0)

    def test_zero_count_is_free(self):
        accountant = BasicAccountant(per_analyst_epsilon=0.1)
        accountant.charge("a", 0, 10.0)
        assert accountant.analyst_epsilon("a") == 0.0

    def test_unlimited_remaining_is_none(self):
        assert BasicAccountant().remaining_epsilon("a") is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BasicAccountant(per_analyst_epsilon=0.0)
        with pytest.raises(ValueError):
            BasicAccountant(global_epsilon=-1.0)
        with pytest.raises(ValueError):
            BasicAccountant(max_queries_per_analyst=0)
        accountant = BasicAccountant()
        with pytest.raises(ValueError):
            accountant.charge("a", -1, 0.5)
        with pytest.raises(ValueError):
            accountant.charge("a", 1, -0.5)


class TestAdvancedAccountant:
    def test_matches_dp_composition_bound(self):
        accountant = AdvancedAccountant(delta_prime=1e-6)
        accountant.charge("a", 100, 0.1)
        expected, _delta = advanced_composition(0.1, 100, 1e-6)
        assert accountant.analyst_epsilon("a") == pytest.approx(expected)

    def test_sublinear_beats_basic_at_scale(self):
        advanced = AdvancedAccountant(delta_prime=1e-6)
        basic = BasicAccountant()
        advanced.charge("a", 1000, 0.05)
        basic.charge("a", 1000, 0.05)
        assert advanced.analyst_epsilon("a") < basic.analyst_epsilon("a")

    def test_never_looser_than_basic(self):
        # For tiny k the sqrt bound exceeds k*eps; the accountant caps at basic.
        accountant = AdvancedAccountant(delta_prime=1e-6)
        accountant.charge("a", 2, 0.1)
        assert accountant.analyst_epsilon("a") <= 0.2 + 1e-12

    def test_single_spend_is_exact(self):
        accountant = AdvancedAccountant()
        accountant.charge("a", 1, 0.3)
        assert accountant.analyst_epsilon("a") == pytest.approx(0.3)

    def test_budget_admits_more_queries_than_basic(self):
        budget = 2.0
        basic = BasicAccountant(per_analyst_epsilon=budget)
        advanced = AdvancedAccountant(per_analyst_epsilon=budget, delta_prime=1e-6)
        basic_queries = 0
        try:
            while True:
                basic.charge("a", 50, 0.01)
                basic_queries += 50
        except BudgetExhausted:
            pass
        advanced_queries = 0
        try:
            while advanced_queries < 100_000:
                advanced.charge("a", 50, 0.01)
                advanced_queries += 50
        except BudgetExhausted:
            pass
        assert advanced_queries > basic_queries

    def test_invalid_delta_prime(self):
        with pytest.raises(ValueError):
            AdvancedAccountant(delta_prime=0.0)
        with pytest.raises(ValueError):
            AdvancedAccountant(delta_prime=1.0)
