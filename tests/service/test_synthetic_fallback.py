"""The budget-exhaustion fallback: answers from a pre-paid synthetic release.

Contract: once an analyst's ledger refuses a charge, the server answers
from one MWEM-synthesized binary dataset instead of refusing outright.
The release is synthesized exactly once (charged to its own account), its
spec lands in the audit log's release register, every fallback answer is
logged with ``source="synthetic"`` at zero marginal epsilon, and the
answers are bit-deterministic functions of the server seed.
"""

import numpy as np
import pytest

from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload
from repro.service import (
    BasicAccountant,
    BudgetExhausted,
    QueryServer,
    SyntheticFallback,
)
from repro.utils.rng import derive_rng


def _data(n: int = 48) -> np.ndarray:
    return derive_rng(11, "fallback-data").integers(0, 2, size=n)


def _server(n: int = 48, *, fallback=None, budget: float = 1.0) -> QueryServer:
    return QueryServer(
        _data(n),
        mechanism="laplace",
        mechanism_params={"epsilon_per_query": 0.5},
        accountant=BasicAccountant(per_analyst_epsilon=budget),
        seed=5,
        synthetic_fallback=fallback,
    )


class TestConfig:
    def test_true_means_default_config(self):
        server = _server(fallback=True)
        assert isinstance(server.synthetic_fallback, SyntheticFallback)

    def test_false_and_none_disable(self):
        assert _server(fallback=False).synthetic_fallback is None
        assert _server(fallback=None).synthetic_fallback is None

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SyntheticFallback(epsilon=0.0)
        with pytest.raises(ValueError):
            SyntheticFallback(rounds=0)
        with pytest.raises(ValueError):
            SyntheticFallback(density=1.5)


class TestWithoutFallback:
    def test_exhaustion_still_refuses(self):
        server = _server(fallback=None)
        session = server.session("alice")
        workload = Workload.random(48, 8, rng=derive_rng(0, "wl"))
        with pytest.raises(BudgetExhausted):
            session.ask_workload(workload)


class TestFallbackAnswers:
    def test_workload_answers_are_bit_deterministic(self):
        workload = Workload.random(48, 8, rng=derive_rng(0, "wl"))
        first = _server(fallback=True).session("alice").ask_workload(workload)
        second = _server(fallback=True).session("alice").ask_workload(workload)
        assert np.array_equal(first, second)
        # Exact counts on a binary vector: non-negative integers.
        assert np.array_equal(first, np.round(first))
        assert np.all(first >= 0)

    def test_single_query_falls_back(self):
        server = _server(fallback=True)
        session = server.session("alice")
        # Two affordable queries exhaust the 1.0 budget at 0.5 each...
        session.ask(SubsetQuery.from_indices([0, 1], 48))
        session.ask(SubsetQuery.from_indices([2, 3], 48))
        # ...so the third is answered synthetically, as an exact count.
        answer = session.ask(SubsetQuery.from_indices([4, 5, 6], 48))
        assert answer == float(int(answer))
        record = server.audit_log.records("alice")[-1]
        assert record.source == "synthetic"
        assert record.epsilon == 0.0

    def test_release_synthesized_once_and_registered(self):
        # The pseudo-account pays out of the same per-analyst policy, so
        # the budget must admit the release's one-time charge.
        server = _server(fallback=SyntheticFallback(epsilon=2.0, rounds=4), budget=2.0)
        session = server.session("alice")
        workload = Workload.random(48, 8, rng=derive_rng(0, "wl"))
        assert server.fallback_release is None
        session.ask_workload(workload)
        release = server.fallback_release
        assert release is not None
        session.ask_workload(Workload.random(48, 6, rng=derive_rng(1, "wl")))
        assert server.fallback_release is release  # not regenerated
        releases = server.audit_log.releases
        assert len(releases) == 1
        assert releases[0].analyst == "synthetic-release"
        assert releases[0].spec.dp is True
        assert releases[0].spec.spend.epsilon == 2.0
        assert "mwem-binary" in releases[0].spec.name

    def test_release_charged_to_its_own_account(self):
        server = _server(fallback=SyntheticFallback(epsilon=2.0), budget=2.0)
        session = server.session("alice")
        workload = Workload.random(48, 8, rng=derive_rng(0, "wl"))
        session.ask_workload(workload)
        assert server.accountant.analyst_epsilon("synthetic-release") == pytest.approx(2.0)
        # The analyst paid nothing for the refused batch.
        assert server.accountant.analyst_epsilon("alice") == pytest.approx(0.0)

    def test_mechanism_answers_precede_fallback(self):
        server = _server(fallback=True, budget=4.0)
        session = server.session("alice")
        # 8 queries x 0.5 fit the 4.0 budget: all answered by the mechanism.
        workload = Workload.random(48, 8, rng=derive_rng(2, "wl"))
        session.ask_workload(workload)
        sources = {record.source for record in server.audit_log.records("alice")}
        assert sources == {"mechanism"}
        # The next batch no longer fits and flips to synthetic.
        session.ask_workload(Workload.random(48, 8, rng=derive_rng(3, "wl")))
        sources = [record.source for record in server.audit_log.records("alice")]
        assert sources.count("mechanism") == 8
        assert sources.count("synthetic") == 8

    def test_synthetic_answers_not_cached(self):
        server = _server(fallback=True)
        session = server.session("alice")
        workload = Workload.random(48, 5, rng=derive_rng(4, "wl"))
        first = session.ask_workload(workload)
        second = session.ask_workload(workload)
        assert np.array_equal(first, second)
        # Every synthetic answer is logged with its true source — replays
        # are re-answered and re-logged, never served as cache hits.
        records = [r for r in server.audit_log.records("alice") if r.source == "synthetic"]
        assert len(records) == 10
        assert all(not record.cached for record in records)
