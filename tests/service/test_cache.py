"""Fingerprint canonicality and answer-cache behavior."""

import numpy as np
import pytest

from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload
from repro.service import (
    AnalystCacheView,
    AnswerCache,
    StripedAnswerCache,
    query_fingerprint,
    workload_fingerprints,
)


class TestFingerprints:
    def test_same_subset_same_fingerprint(self):
        a = SubsetQuery(np.array([True, False, True, False]))
        b = SubsetQuery.from_indices([0, 2], 4)
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_different_subsets_differ(self):
        a = SubsetQuery.from_indices([0, 2], 4)
        b = SubsetQuery.from_indices([0, 3], 4)
        assert query_fingerprint(a) != query_fingerprint(b)

    def test_n_disambiguates_packed_padding(self):
        # [1,0,1] and [1,0,1,0,...,0] pack to the same byte; the length
        # prefix must keep their fingerprints distinct.
        short = SubsetQuery(np.array([True, False, True]))
        padded = SubsetQuery.from_indices([0, 2], 8)
        assert query_fingerprint(short) != query_fingerprint(padded)

    def test_accepts_raw_masks(self):
        mask = np.array([True, False, True])
        assert query_fingerprint(mask) == query_fingerprint(SubsetQuery(mask))

    def test_workload_fingerprints_match_per_query(self):
        workload = Workload.random(33, 20, rng=0)
        batched = workload_fingerprints(workload)
        assert batched == [query_fingerprint(query) for query in workload]

    def test_fingerprint_is_16_bytes(self):
        assert len(query_fingerprint(SubsetQuery.from_indices([1], 5))) == 16


class TestAnswerCache:
    def test_miss_then_hit(self):
        cache = AnswerCache()
        fp = b"\x00" * 16
        assert cache.get(fp) is None
        cache.put(fp, 3.5)
        assert cache.get(fp) == 3.5
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lookup_many_counts_stats(self):
        cache = AnswerCache()
        cache.put(b"a" * 16, 1.0)
        results = cache.lookup_many([b"a" * 16, b"b" * 16, b"a" * 16])
        assert results == [1.0, None, 1.0]
        assert cache.hits == 2 and cache.misses == 1

    def test_lru_eviction(self):
        cache = AnswerCache(max_entries=2)
        cache.put(b"a", 1.0)
        cache.put(b"b", 2.0)
        assert cache.get(b"a") == 1.0  # refresh "a"; "b" is now LRU
        cache.put(b"c", 3.0)
        assert cache.get(b"b") is None
        assert cache.get(b"a") == 1.0
        assert cache.get(b"c") == 3.0
        assert len(cache) == 2

    def test_unbounded_by_default(self):
        cache = AnswerCache()
        for value in range(1000):
            cache.put(value.to_bytes(4, "little"), float(value))
        assert len(cache) == 1000

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AnswerCache(max_entries=0)

    def test_empty_hit_rate_is_zero(self):
        assert AnswerCache().hit_rate == 0.0

    def test_put_many_matches_sequential_puts(self):
        batched = AnswerCache(max_entries=3)
        sequential = AnswerCache(max_entries=3)
        entries = [(bytes([i]) * 16, float(i)) for i in range(5)]
        batched.put_many(entries)
        for fingerprint, answer in entries:
            sequential.put(fingerprint, answer)
        probes = [fingerprint for fingerprint, _ in entries]
        assert batched.lookup_many(probes) == sequential.lookup_many(probes)
        assert len(batched) == 3

    def test_put_many_empty_is_noop(self):
        cache = AnswerCache()
        cache.put_many([])
        assert len(cache) == 0


class TestStripedAnswerCache:
    def test_behaves_like_one_cache(self):
        striped = StripedAnswerCache(stripes=4)
        plain = AnswerCache()
        entries = [(bytes([i, i + 1]) * 8, float(i)) for i in range(32)]
        for cache in (striped, plain):
            cache.put_many(entries[:16])
            for fingerprint, answer in entries[16:24]:
                cache.put(fingerprint, answer)
        probes = [fingerprint for fingerprint, _ in entries]
        assert striped.lookup_many(probes) == plain.lookup_many(probes)
        assert striped.get(entries[0][0]) == plain.get(entries[0][0])
        assert len(striped) == len(plain) == 24
        assert striped.hits == plain.hits and striped.misses == plain.misses
        assert striped.hit_rate == plain.hit_rate

    def test_lookup_many_preserves_order_across_stripes(self):
        striped = StripedAnswerCache(stripes=8)
        entries = [(bytes([i]) * 16, float(i)) for i in range(20)]
        striped.put_many(entries)
        probes = [fingerprint for fingerprint, _ in reversed(entries)]
        assert striped.lookup_many(probes) == [float(i) for i in range(19, -1, -1)]

    def test_global_bound_splits_across_stripes(self):
        striped = StripedAnswerCache(max_entries=8, stripes=4)
        # Worst case one stripe gets everything: its share is ceil(8/4)=2.
        same_stripe = [(b"\x00" * 8 + bytes([i]) * 8, float(i)) for i in range(6)]
        striped.put_many(same_stripe)
        assert len(striped) == 2

    def test_invalid_args(self):
        with pytest.raises(ValueError, match="stripes"):
            StripedAnswerCache(stripes=0)
        with pytest.raises(ValueError, match="max_entries"):
            StripedAnswerCache(max_entries=0)

    def test_stripe_index_is_stable_and_in_range(self):
        striped = StripedAnswerCache(stripes=8)
        for i in range(64):
            fingerprint = bytes([i]) * 16
            index = striped.stripe_index(fingerprint)
            assert 0 <= index < 8
            assert striped.stripe_index(fingerprint) == index
            striped.put(fingerprint, float(i))
            assert len(striped._stripes[index]) > 0


class TestStripedCacheConcurrency:
    """Eviction under concurrent ``put_many`` from many analyst views.

    Each analyst's view prefixes keys with an 8-byte analyst digest, so a
    whole per-analyst batch lands in one stripe; concurrent batches from
    different analysts interleave on different stripe locks.  Whatever the
    interleaving: the global bound holds (worst case ``max_entries +
    stripes`` during a race, settling to per-stripe caps), every surviving
    entry maps back to exactly the analyst who wrote it, and no analyst
    ever observes another analyst's answer through their own view.
    """

    ANALYSTS = [f"analyst-{i}" for i in range(6)]
    MAX_ENTRIES = 48
    STRIPES = 8

    def _storm(self, rounds=8, batch=16):
        import threading

        striped = StripedAnswerCache(max_entries=self.MAX_ENTRIES, stripes=self.STRIPES)
        views = {name: AnalystCacheView(striped, name) for name in self.ANALYSTS}
        barrier = threading.Barrier(len(self.ANALYSTS))
        errors = []

        def encode(name, i):
            # Value encodes (analyst, fingerprint) so any hit proves who
            # wrote it.
            return float(self.ANALYSTS.index(name) * 10_000 + i)

        def pound(name):
            try:
                barrier.wait(timeout=10.0)
                view = views[name]
                for r in range(rounds):
                    entries = [
                        (bytes([r, i]) * 8, encode(name, (r * batch + i) % 256))
                        for i in range(batch)
                    ]
                    view.put_many(entries)
                    for fingerprint, answer in entries:
                        got = view.get(fingerprint)
                        assert got is None or got == answer, (name, r, got)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=pound, args=(name,), name=f"cache-{name}")
            for name in self.ANALYSTS
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors, errors
        return striped, views

    def test_capacity_invariant_under_interleaving(self):
        striped, _ = self._storm()
        per_stripe_cap = -(-self.MAX_ENTRIES // self.STRIPES)
        for stripe in striped._stripes:
            assert len(stripe) <= per_stripe_cap
        assert len(striped) <= self.MAX_ENTRIES + self.STRIPES

    def test_no_cross_analyst_leaks(self):
        striped, views = self._storm()
        # Probe every fingerprint the storm used through every view: a hit
        # must decode to the probing analyst's own value.
        for name, view in views.items():
            analyst_id = self.ANALYSTS.index(name)
            for r in range(8):
                fingerprints = [bytes([r, i]) * 8 for i in range(16)]
                for answer in view.lookup_many(fingerprints):
                    if answer is not None:
                        assert int(answer) // 10_000 == analyst_id

    def test_surviving_entries_all_attributable(self):
        striped, _ = self._storm()
        prefixes = {
            name: AnalystCacheView(striped, name)._prefix for name in self.ANALYSTS
        }
        for stripe in striped._stripes:
            for key in list(stripe._entries):
                owner = [n for n, p in prefixes.items() if key.startswith(p)]
                assert len(owner) == 1  # exactly one analyst owns each key


class TestAnalystCacheView:
    def test_views_are_isolated_per_analyst(self):
        shared = StripedAnswerCache(stripes=4)
        alice = AnalystCacheView(shared, "alice")
        bob = AnalystCacheView(shared, "bob")
        fingerprint = b"\x07" * 16
        alice.put(fingerprint, 1.5)
        assert alice.get(fingerprint) == 1.5
        assert bob.get(fingerprint) is None  # same query, different analyst

    def test_view_stats_are_per_analyst(self):
        shared = StripedAnswerCache(stripes=4)
        alice = AnalystCacheView(shared, "alice")
        bob = AnalystCacheView(shared, "bob")
        fingerprint = b"\x07" * 16
        alice.put(fingerprint, 1.0)
        alice.get(fingerprint)
        bob.get(fingerprint)
        assert alice.hits == 1 and alice.misses == 0
        assert bob.hits == 0 and bob.misses == 1
        assert alice.hit_rate == 1.0 and bob.hit_rate == 0.0

    def test_batched_ops_round_trip(self):
        shared = StripedAnswerCache(stripes=8)
        view = AnalystCacheView(shared, "alice")
        entries = [(bytes([i]) * 16, float(i)) for i in range(10)]
        probes = [fingerprint for fingerprint, _ in entries]
        assert view.lookup_many(probes) == [None] * 10
        view.put_many(entries)
        assert view.lookup_many(probes) == [float(i) for i in range(10)]
        assert view.hits == 10 and view.misses == 10
        assert view.hit_rate == pytest.approx(0.5)

    def test_analyst_batch_lands_in_one_stripe(self):
        # The scoped key starts with the analyst digest, so one analyst's
        # whole workload maps to a single stripe (one lock per batch).
        shared = StripedAnswerCache(stripes=8)
        view = AnalystCacheView(shared, "alice")
        view.put_many([(bytes([i]) * 16, float(i)) for i in range(50)])
        occupied = [len(stripe) for stripe in shared._stripes if len(stripe)]
        assert occupied == [50]

    def test_works_over_plain_answer_cache(self):
        view = AnalystCacheView(AnswerCache(), "alice")
        view.put(b"\x01" * 16, 2.0)
        assert view.get(b"\x01" * 16) == 2.0
