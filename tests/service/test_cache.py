"""Fingerprint canonicality and answer-cache behavior."""

import numpy as np
import pytest

from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload
from repro.service import AnswerCache, query_fingerprint, workload_fingerprints


class TestFingerprints:
    def test_same_subset_same_fingerprint(self):
        a = SubsetQuery(np.array([True, False, True, False]))
        b = SubsetQuery.from_indices([0, 2], 4)
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_different_subsets_differ(self):
        a = SubsetQuery.from_indices([0, 2], 4)
        b = SubsetQuery.from_indices([0, 3], 4)
        assert query_fingerprint(a) != query_fingerprint(b)

    def test_n_disambiguates_packed_padding(self):
        # [1,0,1] and [1,0,1,0,...,0] pack to the same byte; the length
        # prefix must keep their fingerprints distinct.
        short = SubsetQuery(np.array([True, False, True]))
        padded = SubsetQuery.from_indices([0, 2], 8)
        assert query_fingerprint(short) != query_fingerprint(padded)

    def test_accepts_raw_masks(self):
        mask = np.array([True, False, True])
        assert query_fingerprint(mask) == query_fingerprint(SubsetQuery(mask))

    def test_workload_fingerprints_match_per_query(self):
        workload = Workload.random(33, 20, rng=0)
        batched = workload_fingerprints(workload)
        assert batched == [query_fingerprint(query) for query in workload]

    def test_fingerprint_is_16_bytes(self):
        assert len(query_fingerprint(SubsetQuery.from_indices([1], 5))) == 16


class TestAnswerCache:
    def test_miss_then_hit(self):
        cache = AnswerCache()
        fp = b"\x00" * 16
        assert cache.get(fp) is None
        cache.put(fp, 3.5)
        assert cache.get(fp) == 3.5
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lookup_many_counts_stats(self):
        cache = AnswerCache()
        cache.put(b"a" * 16, 1.0)
        results = cache.lookup_many([b"a" * 16, b"b" * 16, b"a" * 16])
        assert results == [1.0, None, 1.0]
        assert cache.hits == 2 and cache.misses == 1

    def test_lru_eviction(self):
        cache = AnswerCache(max_entries=2)
        cache.put(b"a", 1.0)
        cache.put(b"b", 2.0)
        assert cache.get(b"a") == 1.0  # refresh "a"; "b" is now LRU
        cache.put(b"c", 3.0)
        assert cache.get(b"b") is None
        assert cache.get(b"a") == 1.0
        assert cache.get(b"c") == 3.0
        assert len(cache) == 2

    def test_unbounded_by_default(self):
        cache = AnswerCache()
        for value in range(1000):
            cache.put(value.to_bytes(4, "little"), float(value))
        assert len(cache) == 1000

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AnswerCache(max_entries=0)

    def test_empty_hit_rate_is_zero(self):
        assert AnswerCache().hit_rate == 0.0
