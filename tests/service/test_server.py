"""QueryServer integration: routing, caching, budgets, breaker semantics."""

import numpy as np
import pytest

from repro.queries.mechanism import LaplaceAnswerer
from repro.queries.workload import Workload
from repro.service import (
    AdvancedAccountant,
    BasicAccountant,
    BudgetExhausted,
    CircuitBreakerTripped,
    QueryServer,
    ReconstructionAuditor,
    make_answerer,
    per_query_epsilon,
)
from repro.utils.rng import derive_rng


def _data(n=32, seed=11):
    return derive_rng(seed, "data").integers(0, 2, size=n)


def _server(n=32, **kwargs):
    kwargs.setdefault("mechanism", "laplace")
    kwargs.setdefault("mechanism_params", {"epsilon_per_query": 0.5})
    return QueryServer(_data(n), **kwargs)


class TestMechanismFactory:
    @pytest.mark.parametrize(
        "spec", ["exact", "laplace", "gaussian", "subsample", "bounded", "rounding"]
    )
    def test_every_spec_builds_and_answers(self, spec):
        server = QueryServer(_data(), mechanism=spec, seed=3)
        workload = Workload.random(32, 5, rng=0)
        answers = server.session("a").ask_workload(workload)
        assert answers.shape == (5,)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown mechanism"):
            make_answerer("bogus", _data())

    def test_callable_mechanism(self):
        server = QueryServer(
            _data(), mechanism=lambda data, rng, **p: LaplaceAnswerer(data, 0.3, rng=rng)
        )
        assert server._state("a").epsilon_per_query == pytest.approx(0.3)

    def test_per_query_epsilon_only_for_dp_mechanisms(self):
        data = _data()
        assert per_query_epsilon(make_answerer("laplace", data)) == 0.5
        assert per_query_epsilon(make_answerer("gaussian", data)) == 0.5
        assert per_query_epsilon(make_answerer("exact", data)) == 0.0
        assert per_query_epsilon(make_answerer("rounding", data)) == 0.0


class TestCaching:
    def test_repeat_is_bit_identical_and_free(self):
        server = _server()
        session = server.session("a")
        workload = Workload.random(32, 10, rng=1)
        first = session.ask_workload(workload)
        assert session.queries_charged == 10
        again = session.ask_workload(workload)
        assert np.array_equal(first, again)  # bitwise, no tolerance
        assert session.queries_charged == 10  # no recharge
        assert session.epsilon_spent == pytest.approx(5.0)

    def test_scalar_and_workload_paths_share_cache(self):
        server = _server()
        session = server.session("a")
        workload = Workload.random(32, 6, rng=2)
        batched = session.ask_workload(workload)
        for index, query in enumerate(workload):
            assert session.ask(query) == batched[index]
        assert session.queries_charged == 6

    def test_within_workload_duplicates_charged_once(self):
        server = _server()
        session = server.session("a")
        masks = Workload.random(32, 4, rng=3).masks
        doubled = Workload(np.vstack([masks, masks]))
        answers = session.ask_workload(doubled)
        assert np.array_equal(answers[:4], answers[4:])
        assert session.queries_charged == 4

    def test_analysts_have_independent_noise_streams(self):
        server = _server()
        workload = Workload.random(32, 8, rng=4)
        a = server.session("a").ask_workload(workload)
        b = server.session("b").ask_workload(workload)
        assert not np.array_equal(a, b)

    def test_fixed_seed_reproducible_across_servers(self):
        workload = Workload.random(32, 8, rng=5)
        first = _server(seed=9).session("a").ask_workload(workload)
        second = _server(seed=9).session("a").ask_workload(workload)
        assert np.array_equal(first, second)


class TestBudgets:
    def test_mid_workload_exhaustion_is_all_or_nothing(self):
        server = _server(accountant=BasicAccountant(per_analyst_epsilon=3.0))
        session = server.session("a")
        session.ask_workload(Workload.random(32, 4, rng=6))  # spends 2.0
        log_before = len(server.audit_log)
        oversized = Workload.random(32, 5, rng=7)  # needs 2.5 > 1.0 left
        with pytest.raises(BudgetExhausted) as excinfo:
            session.ask_workload(oversized)
        assert excinfo.value.scope == "analyst"
        # Nothing was answered, charged, cached, or logged.
        assert session.queries_charged == 4
        assert session.epsilon_spent == pytest.approx(2.0)
        assert len(server.audit_log) == log_before
        assert session.cache.lookup_many([]) == []
        # A fitting workload still succeeds afterwards.
        session.ask_workload(Workload.random(32, 2, rng=8))
        assert session.queries_charged == 6

    def test_cached_rows_do_not_count_against_budget(self):
        server = _server(accountant=BasicAccountant(per_analyst_epsilon=2.0))
        session = server.session("a")
        workload = Workload.random(32, 4, rng=9)
        session.ask_workload(workload)  # exactly exhausts the budget
        # Replaying the same workload needs no fresh budget.
        session.ask_workload(workload)
        with pytest.raises(BudgetExhausted):
            session.ask(Workload.random(32, 1, rng=10)[0])

    def test_scalar_refusal(self):
        server = _server(accountant=BasicAccountant(per_analyst_epsilon=0.5))
        session = server.session("a")
        query = Workload.random(32, 2, rng=11)[0]
        session.ask(query)
        with pytest.raises(BudgetExhausted):
            session.ask(Workload.random(32, 2, rng=11)[1])
        # The refused query was not logged.
        assert len(server.audit_log.records("a")) == 1

    def test_advanced_accountant_plugs_in(self):
        # 1000 x eps=0.01 is 10.0 under basic composition (refused at budget
        # 5) but ~1.8 under advanced composition — the sqrt(k) ledger is what
        # makes high-query-count sessions fit.
        server = _server(
            mechanism_params={"epsilon_per_query": 0.01},
            accountant=AdvancedAccountant(per_analyst_epsilon=5.0, delta_prime=1e-6),
        )
        session = server.session("a")
        session.ask_workload(Workload.random(32, 1000, rng=12))
        assert session.queries_charged == 1000
        assert session.epsilon_spent < 5.0

    def test_exact_mechanism_bounded_by_query_count(self):
        server = QueryServer(
            _data(),
            mechanism="exact",
            accountant=BasicAccountant(max_queries_per_analyst=5),
        )
        session = server.session("a")
        session.ask_workload(Workload.random(32, 5, rng=13))
        with pytest.raises(BudgetExhausted) as excinfo:
            session.ask_workload(Workload.random(32, 1, rng=14))
        assert excinfo.value.scope == "queries"


class TestAuditorIntegration:
    def test_breaker_blocks_next_call_and_refusal_is_typed(self):
        n = 64
        data = _data(n)
        auditor = ReconstructionAuditor(
            data, agreement_threshold=0.9, audit_every=16, min_queries=32, alpha=0.0
        )
        server = QueryServer(data, mechanism="exact", auditor=auditor, seed=0)
        session = server.session("attacker")
        tripped = None
        for index in range(20):
            workload = Workload.random(n, 16, rng=derive_rng(0, "atk", index))
            try:
                session.ask_workload(workload)
            except CircuitBreakerTripped as refusal:
                tripped = refusal
                break
        assert tripped is not None
        assert tripped.analyst == "attacker"
        assert tripped.report.agreement >= 0.9
        with pytest.raises(CircuitBreakerTripped):
            session.ask(Workload.random(n, 1, rng=99)[0])

    def test_benign_sessions_unaffected_by_tripped_peer(self):
        n = 64
        data = _data(n)
        auditor = ReconstructionAuditor(
            data, agreement_threshold=0.9, audit_every=16, min_queries=32, alpha=0.0
        )
        server = QueryServer(data, mechanism="exact", auditor=auditor, seed=0)
        attacker = server.session("attacker")
        with pytest.raises(CircuitBreakerTripped):
            for index in range(20):
                attacker.ask_workload(
                    Workload.random(n, 16, rng=derive_rng(1, "atk", index))
                )
        benign = server.session("benign")
        answers = benign.ask_workload(Workload.random(n, 8, rng=2))
        assert answers.shape == (8,)
        assert not auditor.is_tripped("benign")


class TestServerBasics:
    def test_wrong_n_rejected(self):
        server = _server(n=16)
        with pytest.raises(ValueError):
            server.session("a").ask_workload(Workload.random(17, 2, rng=0))
        with pytest.raises(ValueError):
            server.session("a").ask(Workload.random(17, 2, rng=0)[0])

    def test_non_binary_data_rejected(self):
        with pytest.raises(ValueError):
            QueryServer(np.array([0, 1, 2]))

    def test_sessions_are_reenterable(self):
        server = _server()
        first = server.session("a")
        second = server.session("a")
        query = Workload.random(32, 1, rng=15)[0]
        assert first.ask(query) == second.ask(query)
        assert server.analysts == ("a",)

    def test_audit_log_records_everything(self):
        server = _server()
        session = server.session("a")
        workload = Workload.random(32, 3, rng=16)
        session.ask_workload(workload)
        session.ask_workload(workload)
        records = server.audit_log.records("a")
        assert len(records) == 6
        assert [record.cached for record in records] == [False] * 3 + [True] * 3
        assert all(
            record.epsilon == (0.0 if record.cached else 0.5) for record in records
        )

    def test_repr_smoke(self):
        server = _server()
        server.session("a").ask(Workload.random(32, 1, rng=17)[0])
        assert "QueryServer" in repr(server)
