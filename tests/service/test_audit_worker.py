"""AuditWorkerPool lifecycle: flush timeouts, post-close fallback, errors.

The pool's contract under stress: a flush that cannot drain in time says
so (``False``) instead of hanging forever; signals arriving after
``close()`` still get their verdicts (inline, like the pre-refactor
path); and a failing background pass surfaces as a ``RuntimeWarning``
plus a retrievable exception — never a silently dead worker.
"""

import threading

import pytest

from repro.service import QueryServer, ReconstructionAuditor
from repro.service.audit_worker import AuditWorkerPool
from repro.utils.rng import derive_rng

N = 64


def make_data(seed=21):
    return derive_rng(seed, "audit-worker-test").integers(0, 2, size=N)


def make_log(data):
    return QueryServer(data, "exact").audit_log


class TestFlushTimeout:
    def test_flush_times_out_while_pass_blocks_then_succeeds(self):
        data = make_data()
        auditor = ReconstructionAuditor(data)
        pool = AuditWorkerPool(auditor, workers=1)
        release = threading.Event()
        original = auditor.maybe_audit

        def blocking_maybe_audit(log, analyst):
            release.wait(10.0)
            return original(log, analyst)

        auditor.maybe_audit = blocking_maybe_audit
        pool.after_append(make_log(data), "alice")
        # The pass is parked on the event: a bounded flush must expire...
        assert pool.flush(timeout=0.05) is False
        # ...and an unbounded one must succeed once the pass can finish.
        release.set()
        assert pool.flush(timeout=10.0) is True
        pool.close()

    def test_flush_with_nothing_pending_returns_immediately(self):
        pool = AuditWorkerPool(ReconstructionAuditor(make_data()), workers=1)
        assert pool.flush(timeout=0.0) is True
        pool.close()


class TestPostCloseFallback:
    def test_late_signals_run_inline(self):
        data = make_data()
        auditor = ReconstructionAuditor(data)
        pool = AuditWorkerPool(auditor, workers=1)
        pool.close()
        calls = []
        original = auditor.maybe_audit
        auditor.maybe_audit = lambda log, analyst: (
            calls.append((threading.get_ident(), analyst)),
            original(log, analyst),
        )[1]
        pool.after_append(make_log(data), "alice")
        # The verdict was produced synchronously on the calling thread.
        assert calls == [(threading.get_ident(), "alice")]

    def test_close_is_idempotent(self):
        pool = AuditWorkerPool(ReconstructionAuditor(make_data()), workers=2)
        pool.close()
        pool.close()  # second close must be a no-op, not a hang


class TestErrorSurfacing:
    def test_failed_pass_warns_and_is_retrievable(self):
        data = make_data()
        auditor = ReconstructionAuditor(data)
        auditor.maybe_audit = lambda log, analyst: (_ for _ in ()).throw(
            ValueError("solver exploded")
        )
        pool = AuditWorkerPool(auditor, workers=1)
        with pytest.warns(RuntimeWarning, match="background audit pass"):
            pool.after_append(make_log(data), "alice")
            assert pool.flush(timeout=10.0)
        assert len(pool.errors) == 1
        assert isinstance(pool.errors[0], ValueError)

    def test_failed_pass_does_not_kill_the_worker(self):
        data = make_data()
        auditor = ReconstructionAuditor(data)
        original = auditor.maybe_audit
        fail_once = [True]

        def flaky(log, analyst):
            if fail_once[0]:
                fail_once[0] = False
                raise ValueError("transient")
            return original(log, analyst)

        auditor.maybe_audit = flaky
        pool = AuditWorkerPool(auditor, workers=1)
        log = make_log(data)
        with pytest.warns(RuntimeWarning):
            pool.after_append(log, "alice")
            assert pool.flush(timeout=10.0)
        # The same worker thread must still process fresh signals.
        pool.after_append(log, "alice")
        assert pool.flush(timeout=10.0)
        assert len(pool.errors) == 1
        pool.close()
