"""Thread-safety: concurrent sessions, atomic budgets, per-analyst determinism."""

import threading

import numpy as np
import pytest

from repro.queries.mechanism import (
    BudgetedAnswerer,
    ExactAnswerer,
    LaplaceAnswerer,
    QueryBudgetExceeded,
)
from repro.queries.workload import Workload
from repro.service import BasicAccountant, BudgetExhausted, QueryServer
from repro.utils.rng import derive_rng


def _run_threads(targets):
    threads = [threading.Thread(target=target) for target in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestAnswererThreadSafety:
    def test_concurrent_workloads_never_lose_counts(self):
        data = derive_rng(0, "d").integers(0, 2, size=16)
        answerer = LaplaceAnswerer(data, epsilon_per_query=0.5, rng=0)
        workload = Workload.random(16, 25, rng=1)

        def worker():
            for _ in range(8):
                answerer.answer_workload(workload)

        _run_threads([worker] * 8)
        assert answerer.queries_answered == 8 * 8 * 25

    def test_budgeted_answerer_never_overshoots(self):
        data = derive_rng(1, "d").integers(0, 2, size=16)
        budgeted = BudgetedAnswerer(ExactAnswerer(data), max_queries=100)
        query = Workload.random(16, 1, rng=2)[0]
        successes = []
        refusals = []

        def worker():
            for _ in range(40):
                try:
                    budgeted.answer(query)
                    successes.append(1)
                except QueryBudgetExceeded:
                    refusals.append(1)

        _run_threads([worker] * 8)
        # The atomic reserve admits exactly max_queries answers, ever.
        assert len(successes) == 100
        assert budgeted.queries_answered == 100
        assert len(refusals) == 8 * 40 - 100

    def test_budgeted_workloads_all_or_nothing_under_contention(self):
        data = derive_rng(2, "d").integers(0, 2, size=16)
        budgeted = BudgetedAnswerer(ExactAnswerer(data), max_queries=60)
        workload = Workload.random(16, 7, rng=3)
        admitted = []

        def worker():
            for _ in range(20):
                try:
                    budgeted.answer_workload(workload)
                    admitted.append(len(workload))
                except QueryBudgetExceeded:
                    pass

        _run_threads([worker] * 6)
        assert sum(admitted) == budgeted.queries_answered
        assert budgeted.queries_answered <= 60
        # 7 does not divide 60: the atomic charge leaves a remainder unspent.
        assert budgeted.queries_answered == 56

    def test_reservation_released_when_inner_fails(self):
        data = derive_rng(3, "d").integers(0, 2, size=8)
        budgeted = BudgetedAnswerer(ExactAnswerer(data), max_queries=10)
        bad_workload = Workload.random(9, 3, rng=4)  # wrong n: inner raises
        with pytest.raises(ValueError):
            budgeted.answer_workload(bad_workload)
        assert budgeted.queries_answered == 0
        assert budgeted.remaining == 10


class TestConcurrentSessions:
    def _serial_reference(self, n, seed, analyst_workloads):
        server = QueryServer(
            np.asarray(derive_rng(seed, "data").integers(0, 2, size=n)),
            mechanism="laplace",
            mechanism_params={"epsilon_per_query": 0.5},
            seed=seed,
        )
        return {
            analyst: [server.ask_workload(analyst, w) for w in workloads]
            for analyst, workloads in analyst_workloads.items()
        }

    def test_concurrent_answers_match_serial_bitwise(self):
        n, seed = 24, 42
        analyst_workloads = {
            f"analyst-{index}": [
                Workload.random(n, 9, rng=derive_rng(seed, "w", index, round_))
                for round_ in range(5)
            ]
            for index in range(8)
        }
        reference = self._serial_reference(n, seed, analyst_workloads)

        server = QueryServer(
            np.asarray(derive_rng(seed, "data").integers(0, 2, size=n)),
            mechanism="laplace",
            mechanism_params={"epsilon_per_query": 0.5},
            seed=seed,
        )
        results = {analyst: [] for analyst in analyst_workloads}
        barrier = threading.Barrier(len(analyst_workloads))

        def worker(analyst):
            session = server.session(analyst)
            barrier.wait()  # maximize interleaving
            for workload in analyst_workloads[analyst]:
                results[analyst].append(session.ask_workload(workload))

        _run_threads(
            [
                (lambda a: (lambda: worker(a)))(analyst)
                for analyst in analyst_workloads
            ]
        )
        for analyst, rounds in reference.items():
            for round_index, expected in enumerate(rounds):
                assert np.array_equal(results[analyst][round_index], expected), (
                    f"{analyst} round {round_index} diverged under concurrency"
                )

    def test_global_budget_never_oversubscribed(self):
        n, seed = 16, 7
        # 10 queries * 0.5 eps fit; each analyst tries to claim 8.
        accountant = BasicAccountant(global_epsilon=5.0)
        server = QueryServer(
            np.asarray(derive_rng(seed, "data").integers(0, 2, size=n)),
            mechanism="laplace",
            mechanism_params={"epsilon_per_query": 0.5},
            accountant=accountant,
            seed=seed,
        )
        outcomes = []

        def worker(index):
            workload = Workload.random(n, 8, rng=derive_rng(seed, "w", index))
            try:
                server.ask_workload(f"analyst-{index}", workload)
                outcomes.append("ok")
            except BudgetExhausted:
                outcomes.append("refused")

        _run_threads([(lambda i: (lambda: worker(i)))(index) for index in range(4)])
        assert outcomes.count("ok") == 1  # only one 8-query claim fits in 10
        assert accountant.global_spent() <= 5.0 + 1e-9

    def test_audit_log_complete_under_concurrency(self):
        n, seed = 16, 3
        server = QueryServer(
            np.asarray(derive_rng(seed, "data").integers(0, 2, size=n)),
            mechanism="exact",
            seed=seed,
        )

        def worker(index):
            session = server.session(f"analyst-{index}")
            for round_ in range(10):
                session.ask_workload(
                    Workload.random(n, 5, rng=derive_rng(seed, "w", index, round_))
                )

        _run_threads([(lambda i: (lambda: worker(i)))(index) for index in range(6)])
        records = server.audit_log.records()
        assert len(records) == 6 * 10 * 5
        assert [record.seq for record in records] == list(range(len(records)))
