"""ShardedQueryServer: bit-identity with the single-lock server, admission
control, and shared-state wiring.

The golden contract of the sharded front end is that sharding is *pure
mechanics*: for a fixed seed and analyst schedule, answers, audit verdicts,
and budget-exhaustion points are bit-identical to :class:`QueryServer`
with a single-ledger accountant.
"""

import numpy as np
import pytest

from repro.privacy.accounting import BudgetExhausted
from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload
from repro.service import (
    AnalystCacheView,
    BasicAccountant,
    CircuitBreakerTripped,
    QueryServer,
    RateLimit,
    ReconstructionAuditor,
    Rejected,
    ShardedAccountant,
    ShardedQueryServer,
    StripedAnswerCache,
)
from repro.utils.rng import derive_rng

N = 96
ANALYSTS = ["alice", "bob", "carol", "dave", "erin"]


def make_data(seed=11):
    return derive_rng(seed, "sharded-test").integers(0, 2, size=N)


def make_queries(count, seed=5):
    rng = derive_rng(seed, "sharded-queries")
    return [SubsetQuery(rng.random(N) < 0.5) for _ in range(count)]


class TestAnswerBitIdentity:
    @pytest.mark.parametrize("shards", [1, 4, 16])
    def test_single_asks_match_single_server(self, shards):
        data = make_data()
        single = QueryServer(data, "laplace", seed=3)
        sharded = ShardedQueryServer(data, "laplace", seed=3, shards=shards)
        queries = make_queries(12)
        for analyst in ANALYSTS:
            reference = single.session(analyst)
            session = sharded.session(analyst)
            for query in queries:
                assert session.ask(query) == reference.ask(query)

    def test_workloads_match_single_server(self):
        data = make_data()
        single = QueryServer(data, "gaussian", seed=7)
        sharded = ShardedQueryServer(data, "gaussian", seed=7, shards=8)
        workload = Workload.random(N, 30, rng=derive_rng(1, "wl"))
        for analyst in ANALYSTS:
            expected = single.session(analyst).ask_workload(workload)
            got = sharded.session(analyst).ask_workload(workload)
            np.testing.assert_array_equal(got, expected)

    def test_cache_replay_is_bit_identical_and_free(self):
        sharded = ShardedQueryServer(make_data(), "laplace", seed=3, shards=4)
        session = sharded.session("alice")
        workload = Workload.random(N, 20, rng=derive_rng(2, "wl"))
        first = session.ask_workload(workload)
        charged = session.queries_charged
        np.testing.assert_array_equal(session.ask_workload(workload), first)
        assert session.queries_charged == charged  # replay charged nothing

    def test_answers_independent_of_shard_count(self):
        data = make_data()
        queries = make_queries(8)
        by_shards = {}
        for shards in (1, 3, 16):
            server = ShardedQueryServer(data, "laplace", seed=9, shards=shards)
            by_shards[shards] = [server.session("alice").ask(q) for q in queries]
        assert by_shards[1] == by_shards[3] == by_shards[16]


class TestBudgetBitIdentity:
    def test_exhaustion_points_match_single_server(self):
        data = make_data()
        single = QueryServer(
            data,
            "laplace",
            {"epsilon_per_query": 0.5},
            accountant=BasicAccountant(3.0, 8.0),
            seed=3,
        )
        sharded = ShardedQueryServer(
            data,
            "laplace",
            {"epsilon_per_query": 0.5},
            accountant=ShardedAccountant(3.0, 8.0, shards=8),
            seed=3,
            shards=8,
        )
        queries = make_queries(30)
        for analyst in ANALYSTS:
            reference = single.session(analyst)
            session = sharded.session(analyst)
            for query in queries:
                expected = refused = None
                try:
                    expected = reference.ask(query)
                except BudgetExhausted as caught:
                    refused = (str(caught), caught.scope)
                if refused is None:
                    assert session.ask(query) == expected
                else:
                    with pytest.raises(BudgetExhausted) as got:
                        session.ask(query)
                    assert (str(got.value), got.value.scope) == refused
        assert sharded.accountant.global_spent() == single.accountant.global_spent()

    def test_workload_charges_are_all_or_nothing(self):
        sharded = ShardedQueryServer(
            make_data(),
            "laplace",
            {"epsilon_per_query": 0.5},
            accountant=ShardedAccountant(2.0, None, shards=4),
            shards=4,
        )
        session = sharded.session("alice")
        with pytest.raises(BudgetExhausted):
            session.ask_workload(Workload.random(N, 10, rng=0))
        assert session.queries_charged == 0
        assert sharded.served == 0


class TestAuditBitIdentity:
    @staticmethod
    def run_attack(server):
        session = server.session("attacker")
        rng = derive_rng(0, "audit-attack")
        served = 0
        for _ in range(40):
            workload = Workload.random(N, N // 8, rng=rng)
            try:
                session.ask_workload(workload)
                served += len(workload)
            except CircuitBreakerTripped as refusal:
                return served, refusal.report.agreement, refusal.report.unique_queries
        return served, None, None

    def test_trip_point_matches_single_server(self):
        data = make_data()
        verdicts = []
        for factory in (
            lambda auditor: QueryServer(data, "laplace", auditor=auditor, seed=3),
            lambda auditor: ShardedQueryServer(
                data, "laplace", auditor=auditor, seed=3, shards=8
            ),
        ):
            auditor = ReconstructionAuditor(
                data,
                agreement_threshold=0.8,
                audit_every=N // 8,
                min_queries=N // 4,
                alpha=None,
                screen="l2",
            )
            verdicts.append(self.run_attack(factory(auditor)))
        assert verdicts[0] == verdicts[1]
        assert verdicts[0][1] is not None  # the attack genuinely tripped


class TestAdmissionControl:
    def test_rate_limit_rejects_then_refills(self):
        now = [0.0]
        sharded = ShardedQueryServer(
            make_data(),
            "laplace",
            seed=3,
            shards=4,
            rate_limit=RateLimit(rate=5.0, burst=2),
            clock=lambda: now[0],
        )
        session = sharded.session("alice")
        query = make_queries(1)[0]
        session.ask(query)
        session.ask(query)
        with pytest.raises(Rejected) as caught:
            session.ask(query)
        assert caught.value.reason == "rate_limit"
        assert caught.value.analyst == "alice"
        assert caught.value.retry_after == pytest.approx(0.2)
        now[0] += 0.25
        session.ask(query)  # refilled
        assert sharded.rejections == {"rate_limit": 1, "overload": 0}

    def test_backwards_clock_step_never_drains_tokens(self):
        # Regression: with a wall clock stepping backwards (NTP slew), the
        # old bucket added a *negative* elapsed refill, draining tokens the
        # analyst never spent and inflating retry_after past one refill
        # interval.  The bucket now clamps elapsed at zero and defaults to
        # time.monotonic.
        import time as time_module

        from repro.service.sharded import _TokenBucket

        now = [100.0]
        bucket = _TokenBucket(RateLimit(rate=2.0, burst=2), clock=lambda: now[0])
        bucket.admit("alice")
        now[0] -= 50.0  # wall clock jumps back
        bucket.admit("alice")  # second burst token must still be there
        with pytest.raises(Rejected) as caught:
            bucket.admit("alice")
        # Worst case for an empty bucket is one full token at rate 2/s.
        assert 0.0 < caught.value.retry_after <= 0.5 + 1e-9
        now[0] += 0.5  # refills resume from the stepped-back stamp
        bucket.admit("alice")
        # And the default server clock is monotonic, immune to wall steps.
        sharded = ShardedQueryServer(
            make_data(), "laplace", seed=3, rate_limit=RateLimit(rate=5.0, burst=2)
        )
        assert sharded._clock is time_module.monotonic

    def test_admitted_invalid_query_still_consumes_a_token(self):
        # Admission runs before validation (pre-refactor ordering): a
        # malformed query from an admitted request burned its token.
        now = [0.0]
        sharded = ShardedQueryServer(
            make_data(),
            "laplace",
            seed=3,
            shards=2,
            rate_limit=RateLimit(rate=1.0, burst=1),
            clock=lambda: now[0],
        )
        session = sharded.session("alice")
        with pytest.raises(ValueError):
            session.ask(SubsetQuery(np.ones(N + 1, dtype=bool)))
        with pytest.raises(Rejected):  # the bad ask consumed the only token
            session.ask(make_queries(1)[0])

    def test_rate_limits_are_per_analyst(self):
        now = [0.0]
        sharded = ShardedQueryServer(
            make_data(),
            "laplace",
            seed=3,
            shards=4,
            rate_limit=RateLimit(rate=1.0, burst=1),
            clock=lambda: now[0],
        )
        query = make_queries(1)[0]
        sharded.session("alice").ask(query)
        sharded.session("bob").ask(query)  # bob's bucket is untouched
        with pytest.raises(Rejected):
            sharded.session("alice").ask(query)

    def test_rejection_has_no_privacy_or_audit_footprint(self):
        now = [0.0]
        sharded = ShardedQueryServer(
            make_data(),
            "laplace",
            seed=3,
            shards=4,
            rate_limit=RateLimit(rate=1.0, burst=1),
            clock=lambda: now[0],
        )
        session = sharded.session("alice")
        queries = make_queries(2)
        session.ask(queries[0])
        served, charged = sharded.served, session.queries_charged
        with pytest.raises(Rejected):
            session.ask(queries[1])
        assert sharded.served == served
        assert session.queries_charged == charged

    def test_overload_gate_rejects_at_capacity(self):
        sharded = ShardedQueryServer(
            make_data(), "laplace", seed=3, shards=1, max_inflight_per_shard=1
        )
        query = make_queries(1)[0]
        gate = sharded._gates[0]
        with gate.slot("occupant"):
            with pytest.raises(Rejected) as caught:
                sharded.session("alice").ask(query)
        assert caught.value.reason == "overload"
        sharded.session("alice").ask(query)  # slot released
        assert sharded.rejections["overload"] == 1

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            RateLimit(rate=0.0, burst=1)
        with pytest.raises(ValueError, match="burst"):
            RateLimit(rate=1.0, burst=0)
        with pytest.raises(ValueError, match="shards"):
            ShardedQueryServer(make_data(), shards=0)


class TestSharedStateWiring:
    def test_analysts_use_shard_local_striped_caches(self):
        sharded = ShardedQueryServer(make_data(), "laplace", seed=3, shards=4)
        session = sharded.session("alice")
        assert isinstance(session.cache, AnalystCacheView)
        shard_cache = sharded.shard_cache(sharded.shard_of("alice"))
        assert isinstance(shard_cache, StripedAnswerCache)
        session.ask_workload(Workload.random(N, 10, rng=0))
        assert len(shard_cache) == 10
        assert session.cache.hit_rate == 0.0
        session.ask_workload(Workload.random(N, 10, rng=0))
        assert session.cache.hit_rate == 0.5

    def test_default_accountant_is_sharded_and_shared(self):
        sharded = ShardedQueryServer(make_data(), "laplace", shards=4)
        assert isinstance(sharded.accountant, ShardedAccountant)
        assert all(
            sharded.shard_server(i).accountant is sharded.accountant for i in range(4)
        )

    def test_synthetic_fallback_release_is_shared_across_shards(self):
        data = make_data()
        accountant = ShardedAccountant(1.0, None, shards=4)
        sharded = ShardedQueryServer(
            data,
            "laplace",
            {"epsilon_per_query": 0.6},
            accountant=accountant,
            seed=3,
            shards=4,
            synthetic_fallback=True,
        )
        query = make_queries(1)[0]
        # Exhaust two analysts on different shards; both fall back.
        answers = {}
        for analyst in ("alice", "bob"):
            session = sharded.session(analyst)
            session.ask(query)
            answers[analyst] = session.ask(make_queries(2)[1])
        release = sharded.fallback_release
        assert release is not None
        # One release, one charge, shared by every shard server.
        assert all(
            sharded.shard_server(i).fallback_release is release for i in range(4)
        )
        assert accountant.analyst_queries("synthetic-release") == 1

    def test_audit_logs_partition_by_analyst(self):
        sharded = ShardedQueryServer(make_data(), "laplace", seed=3, shards=4)
        query = make_queries(1)[0]
        for analyst in ANALYSTS:
            sharded.session(analyst).ask(query)
        assert sharded.served == len(ANALYSTS)
        for analyst in ANALYSTS:
            log = sharded.audit_log_for(analyst)
            assert len(log.records(analyst)) == 1
        assert sorted(sharded.analysts) == sorted(ANALYSTS)

    def test_sessionless_ask_routes_through_admission(self):
        now = [0.0]
        sharded = ShardedQueryServer(
            make_data(),
            "laplace",
            seed=3,
            shards=4,
            rate_limit=RateLimit(rate=1.0, burst=1),
            clock=lambda: now[0],
        )
        query = make_queries(1)[0]
        sharded.ask("alice", query)
        with pytest.raises(Rejected):
            sharded.ask("alice", query)

    def test_mechanism_spec_matches_single_server(self):
        data = make_data()
        single = QueryServer(data, "laplace", seed=3)
        sharded = ShardedQueryServer(data, "laplace", seed=3, shards=4)
        single.session("alice")
        sharded.session("alice")
        spec = sharded.mechanism_spec("alice")
        reference = single.mechanism_spec("alice")
        assert spec.name == reference.name
        assert spec.spend == reference.spend
        assert spec.sensitivity == reference.sensitivity
