"""The staged serve pipeline: stage wiring, execution backends, audit
dispatch, and the bit-identity contract across all of them.

The refactor's promise is that the pipeline is pure mechanics: for a fixed
seed, served answers, budget-exhaustion points, and audit verdicts are
bit-identical whatever the execution backend (inline/thread/process),
whatever the audit dispatch (inline/background, after a flush), and
whether the fused single-ask fast path or the generic staged reference
path served the request.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.accounting import BudgetExhausted, BudgetLease
from repro.queries.query import SubsetQuery
from repro.queries.workload import Workload
from repro.service import (
    AuditWorkerPool,
    BasicAccountant,
    InlineExecutionBackend,
    ProcessExecutionBackend,
    QueryServer,
    ReconstructionAuditor,
    Request,
    ShardedQueryServer,
    ThreadExecutionBackend,
)
from repro.service.pipeline import resolve_execution_backend
from repro.utils.parallel import fork_available
from repro.utils.rng import derive_rng

N = 64
BACKENDS = ["inline", "thread", "process"]


def make_data(seed=21):
    return derive_rng(seed, "pipeline-test").integers(0, 2, size=N)


def make_queries(count, seed=4, density=0.5):
    rng = derive_rng(seed, "pipeline-queries")
    return [SubsetQuery(rng.random(N) < density) for _ in range(count)]


class TestStageList:
    def test_fixed_sequence(self):
        server = QueryServer(make_data(), "laplace", seed=1)
        names = [stage.name for stage in server.pipeline.stages]
        assert names == [
            "compliance",
            "cache_lookup",
            "budget_reserve",
            "execute",
            "cache_put",
            "audit_append",
        ]

    def test_admission_leads_when_composed(self):
        sharded = ShardedQueryServer(
            make_data(), "laplace", seed=1, shards=2, max_inflight_per_shard=4
        )
        session = sharded.session("alice")
        names = [stage.name for stage in session._pipeline.stages]
        assert names[0] == "admission"
        assert "ServePipeline(admission -> " in repr(session._pipeline)

    def test_sessions_share_the_shard_stages(self):
        sharded = ShardedQueryServer(
            make_data(), "laplace", seed=1, shards=1, max_inflight_per_shard=4
        )
        a = sharded.session("alice")._pipeline
        b = sharded.session("bob")._pipeline
        shard = sharded.shard_server(0).pipeline
        assert a is not shard and b is not shard
        assert a.execute_stage is shard.execute_stage
        assert a.audit_stage is shard.audit_stage


class TestFusedVersusStagedSingle:
    def test_fused_hot_path_matches_staged_reference(self):
        # Two servers, same seed: one driven through session.ask (fused
        # cached fast path), one through pipeline.submit (generic staged
        # loop).  Answers and audit records must be bit-identical.
        data = make_data()
        fused = QueryServer(data, "laplace", seed=5)
        staged = QueryServer(data, "laplace", seed=5)
        queries = make_queries(10)
        session = fused.session("alice")
        for query in queries + queries:  # second pass replays from cache
            expected = session.ask(query)
            outcome = staged.pipeline.submit(Request("alice", query=query))
            assert outcome.answer == expected
        fused_log = fused.audit_log.records("alice")
        staged_log = staged.audit_log.records("alice")
        assert len(fused_log) == len(staged_log) == 20
        for a, b in zip(fused_log, staged_log):
            assert (a.fingerprint, a.answer, a.cached, a.epsilon, a.source) == (
                b.fingerprint,
                b.answer,
                b.cached,
                b.epsilon,
                b.source,
            )

    def test_submit_outcome_accounting(self):
        server = QueryServer(make_data(), "laplace", seed=5)
        query = make_queries(1)[0]
        first = server.pipeline.submit(Request("alice", query=query))
        assert not first.cached and first.fresh_queries == 1
        assert first.epsilon_charged == pytest.approx(0.5)
        replay = server.pipeline.submit(Request("alice", query=query))
        assert replay.cached and replay.fresh_queries == 0
        assert replay.epsilon_charged == 0.0
        assert replay.answer == first.answer
        workload = Workload.coerce(make_queries(6, seed=10))
        batch = server.pipeline.submit(Request("alice", workload=workload))
        assert batch.answers is not None and len(batch.answers) == 6
        assert batch.fresh_queries == 6
        again = server.pipeline.submit(Request("alice", workload=workload))
        assert again.cached and again.epsilon_charged == 0.0
        assert again.answers == batch.answers

    def test_request_requires_exactly_one_payload(self):
        query = make_queries(1)[0]
        with pytest.raises(ValueError):
            Request("alice")
        with pytest.raises(ValueError):
            Request("alice", query=query, workload=Workload.coerce([query]))


class TestExecutionBackendBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mechanism", ["laplace", "gaussian", "subsample"])
    def test_single_asks_match_inline(self, backend, mechanism):
        data = make_data()
        reference = QueryServer(data, mechanism, seed=9, execution="inline")
        candidate = QueryServer(data, mechanism, seed=9, execution=backend)
        queries = make_queries(8)
        for analyst in ("alice", "bob"):
            ref = reference.session(analyst)
            got = candidate.session(analyst)
            for query in queries:
                assert got.ask(query) == ref.ask(query)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_workloads_match_inline(self, backend):
        data = make_data()
        reference = QueryServer(data, "laplace", seed=3, execution="inline")
        candidate = QueryServer(data, "laplace", seed=3, execution=backend)
        workload = Workload.random(N, 24, rng=derive_rng(1, "wl"))
        np.testing.assert_array_equal(
            candidate.session("alice").ask_workload(workload),
            reference.session("alice").ask_workload(workload),
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_traffic_and_counters_match_inline(self, backend):
        data = make_data()
        reference = QueryServer(data, "laplace", seed=7, execution="inline")
        candidate = QueryServer(data, "laplace", seed=7, execution=backend)
        queries = make_queries(6)
        workload = Workload.coerce(make_queries(5, seed=8))
        for server in (reference, candidate):
            session = server.session("alice")
            for query in queries[:3]:
                session.ask(query)
            session.ask_workload(workload)
            for query in queries:  # tail mixes replays with fresh asks
                session.ask(query)
        ref_records = reference.audit_log.records("alice")
        got_records = candidate.audit_log.records("alice")
        assert [(r.fingerprint, r.answer, r.cached) for r in ref_records] == [
            (r.fingerprint, r.answer, r.cached) for r in got_records
        ]
        ref_state = reference.session("alice")._state
        got_state = candidate.session("alice")._state
        assert (
            got_state.answerer.queries_answered
            == ref_state.answerer.queries_answered
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_budget_exhaustion_point_matches_inline(self, backend):
        data = make_data()
        queries = make_queries(12)

        def exhaust(server):
            session = server.session("alice")
            answers = []
            for query in queries:
                try:
                    answers.append(session.ask(query))
                except BudgetExhausted:
                    answers.append("refused")
            return answers

        reference = exhaust(
            QueryServer(
                data,
                "laplace",
                accountant=BasicAccountant(per_analyst_epsilon=3.0),
                seed=2,
                execution="inline",
            )
        )
        candidate = exhaust(
            QueryServer(
                data,
                "laplace",
                accountant=BasicAccountant(per_analyst_epsilon=3.0),
                seed=2,
                execution=backend,
            )
        )
        assert "refused" in reference
        assert candidate == reference

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_process_backend_actually_crosses_processes(self):
        import repro.service.pipeline as pipeline_module

        data = make_data()
        server = QueryServer(data, "laplace", seed=11, execution="process")
        bound = server.pipeline.execute_stage.bound
        assert isinstance(bound, pipeline_module._ProcessBound)
        session = server.session("alice")
        for query in make_queries(3):
            session.ask(query)
        # The parent process must never have built a worker-side answerer.
        assert not pipeline_module._POOL_ANSWERERS
        assert not bound._degraded

    def test_unpicklable_mechanism_degrades_to_inline_bit_identically(self):
        data = make_data()
        mechanism = lambda d, rng, **p: __import__(  # noqa: E731
            "repro.queries.mechanism", fromlist=["LaplaceAnswerer"]
        ).LaplaceAnswerer(d, 0.5, rng=rng)
        reference = QueryServer(data, mechanism, seed=6, execution="inline")
        with pytest.warns(RuntimeWarning, match="cannot cross a process boundary"):
            candidate = QueryServer(data, mechanism, seed=6, execution="process")
        for query in make_queries(4):
            assert candidate.ask("alice", query) == reference.ask("alice", query)

    def test_resolver_rejects_unknown_and_honors_env(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_execution_backend("quantum")
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "thread")
        assert isinstance(resolve_execution_backend(None), ThreadExecutionBackend)
        monkeypatch.delenv("REPRO_EXEC_BACKEND")
        assert isinstance(resolve_execution_backend(None), InlineExecutionBackend)
        backend = ProcessExecutionBackend()
        assert resolve_execution_backend(backend) is backend


@st.composite
def interleavings(draw):
    """A schedule of (analyst, kind, index) ops over a small query pool."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["alice", "bob", "carol"]),
                st.sampled_from(["ask", "workload"]),
                st.integers(min_value=0, max_value=7),
            ),
            min_size=1,
            max_size=20,
        )
    )
    return ops


class TestInterleavingBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(schedule=interleavings(), backend=st.sampled_from(BACKENDS))
    def test_any_schedule_matches_inline(self, schedule, backend):
        data = make_data()
        queries = make_queries(8)
        workloads = [
            Workload.coerce(queries[i : i + 3] or queries[:1]) for i in range(8)
        ]

        def run(execution):
            server = QueryServer(data, "laplace", seed=13, execution=execution)
            out = []
            for analyst, kind, index in schedule:
                session = server.session(analyst)
                if kind == "ask":
                    out.append(session.ask(queries[index]))
                else:
                    out.append(tuple(session.ask_workload(workloads[index])))
            return out

        assert run(backend) == run("inline")


class TestBudgetLeaseContract:
    def test_lease_rollback_refunds(self):
        accountant = BasicAccountant(per_analyst_epsilon=2.0)
        lease = BudgetLease.acquire(accountant, "alice", 2, 0.5)
        assert accountant.analyst_epsilon("alice") == pytest.approx(1.0)
        assert not lease.settled
        lease.rollback()
        assert lease.settled and not lease.committed
        assert accountant.analyst_epsilon("alice") == pytest.approx(0.0)
        lease.rollback()  # idempotent
        with pytest.raises(RuntimeError):
            lease.commit()

    def test_commit_is_final(self):
        accountant = BasicAccountant()
        lease = accountant.lease("alice", 1, 0.25)
        lease.commit()
        assert lease.committed
        with pytest.raises(RuntimeError):
            lease.rollback()

    def test_failed_execute_rolls_back_the_charge(self):
        # Pre-refactor, a mechanism failure after accountant.charge burned
        # the budget for an answer never released.  The lease contract
        # refunds it.
        class ExplodingAnswerer:
            epsilon_per_query = 0.5

            def __init__(self):
                self.calls = 0

            def answer(self, query):
                self.calls += 1
                raise RuntimeError("mechanism hardware on fire")

        server = QueryServer(
            make_data(),
            lambda data, rng, **p: ExplodingAnswerer(),
            accountant=BasicAccountant(per_analyst_epsilon=5.0),
            seed=1,
        )
        with pytest.raises(RuntimeError, match="on fire"):
            server.ask("alice", make_queries(1)[0])
        assert server.accountant.analyst_epsilon("alice") == pytest.approx(0.0)
        assert server.accountant.analyst_queries("alice") == 0
        assert len(server.audit_log) == 0  # nothing released, nothing logged


def _auditable_server(data, dispatch, seed=17):
    auditor = ReconstructionAuditor(
        data,
        agreement_threshold=0.8,
        audit_every=16,
        min_queries=16,
        screen="l2",
    )
    return QueryServer(
        data, "exact", auditor=auditor, seed=seed, audit_dispatch=dispatch
    )


class TestAuditDispatch:
    def test_background_flush_matches_inline_verdicts(self):
        data = make_data()
        inline = _auditable_server(data, "inline")
        background = _auditable_server(data, "background")
        queries = make_queries(48, density=0.4)
        refusals_inline = refusals_background = 0
        from repro.service import CircuitBreakerTripped

        for query in queries:
            try:
                inline.ask("alice", query)
            except CircuitBreakerTripped:
                refusals_inline += 1
        for query in queries:
            try:
                background.ask("alice", query)
                background.audit_dispatch.flush()
            except CircuitBreakerTripped:
                refusals_background += 1
        background.close()
        assert refusals_background == refusals_inline
        inline_reports = inline.auditor.reports
        background_reports = background.auditor.reports
        assert len(background_reports) == len(inline_reports) > 0
        for a, b in zip(inline_reports, background_reports):
            assert (a.analyst, a.unique_queries, a.agreement, a.flagged, a.mode) == (
                b.analyst,
                b.unique_queries,
                b.agreement,
                b.flagged,
                b.mode,
            )

    def test_background_breaker_trips_off_the_hot_path(self):
        data = make_data()
        server = _auditable_server(data, "background")
        session = server.session("alice")
        # 96 exact answers over 64 unknowns: overdetermined, so the audit
        # pass reconstructs essentially perfectly and must trip.
        for query in make_queries(96, density=0.4):
            session.ask(query)
        assert server.audit_dispatch.flush(timeout=30.0)
        assert server.auditor.is_tripped("alice")
        from repro.service import CircuitBreakerTripped

        with pytest.raises(CircuitBreakerTripped):
            session.ask(make_queries(1, seed=99)[0])
        server.close()

    def test_pending_signals_deduplicate(self):
        data = make_data()
        auditor = ReconstructionAuditor(
            data, audit_every=1000, min_queries=1000
        )
        pool = AuditWorkerPool(auditor, workers=2)
        gate = threading.Event()
        original = auditor.maybe_audit
        calls = []

        def slow_maybe_audit(log, analyst):
            gate.wait(5.0)
            calls.append(analyst)
            return original(log, analyst)

        auditor.maybe_audit = slow_maybe_audit
        log = QueryServer(data, "exact").audit_log
        for _ in range(10):
            pool.after_append(log, "alice")
        gate.set()
        assert pool.flush(timeout=10.0)
        # First signal runs; the 9 landing while it was queued collapse
        # into at most one follow-up pass.
        assert 1 <= len(calls) <= 2
        pool.close()

    def test_closed_pool_falls_back_inline(self):
        data = make_data()
        server = _auditable_server(data, "background")
        pool = server.audit_dispatch
        pool.close()
        session = server.session("alice")
        for query in make_queries(20, density=0.4):
            session.ask(query)
        # Verdicts still arrive, just computed inline after close.
        assert len(server.auditor.reports) > 0

    def test_worker_errors_are_kept_not_fatal(self):
        data = make_data()
        auditor = ReconstructionAuditor(data)

        def broken(log, analyst):
            raise ValueError("solver exploded")

        auditor.maybe_audit = broken
        pool = AuditWorkerPool(auditor, workers=1)
        with pytest.warns(RuntimeWarning, match="background audit pass"):
            pool.after_append(QueryServer(data, "exact").audit_log, "alice")
            assert pool.flush(timeout=10.0)
        assert len(pool.errors) == 1
        pool.close()

    def test_resolver_rejects_unknown(self):
        data = make_data()
        with pytest.raises(ValueError):
            QueryServer(
                data,
                "exact",
                auditor=ReconstructionAuditor(data),
                audit_dispatch="telepathy",
            )


class TestShardedBackendBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sharded_matches_single_server(self, backend):
        data = make_data()
        single = QueryServer(data, "laplace", seed=19, execution="inline")
        sharded = ShardedQueryServer(
            data, "laplace", seed=19, shards=4, execution=backend
        )
        queries = make_queries(6)
        for analyst in ("alice", "bob", "carol"):
            reference = single.session(analyst)
            session = sharded.session(analyst)
            for query in queries:
                assert session.ask(query) == reference.ask(query)
