"""Tests for snapshots, the Prometheus/JSON renderers, and diff()."""

import json

import pytest

from repro.telemetry import Telemetry
from repro.telemetry.export import diff, snapshot, to_json, to_prometheus
from repro.telemetry.metrics import MetricsRegistry


def populated_registry():
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", shard="0").inc(4)
    registry.gauge("repro_depth", pool="0").set(2.0)
    hist = registry.histogram("repro_latency_seconds", bounds=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    return registry


class TestSnapshot:
    def test_accepts_registry_or_facade(self):
        telemetry = Telemetry()
        telemetry.registry.counter("c_total").inc()
        assert snapshot(telemetry) == snapshot(telemetry.registry)

    def test_rejects_non_registry(self):
        with pytest.raises(TypeError, match="MetricsRegistry"):
            snapshot(42)

    def test_equal_state_compares_equal(self):
        first = snapshot(populated_registry())
        second = snapshot(populated_registry())
        assert first == second

    def test_lookup_helpers(self):
        snap = snapshot(populated_registry())
        assert snap.counter_value("repro_requests_total", shard="0") == 4.0
        assert snap.counter_value("repro_requests_total", shard="9") is None
        assert snap.gauge_value("repro_depth", pool="0") == 2.0
        point = snap.histogram_point("repro_latency_seconds")
        assert point.counts == (1, 1, 1)
        assert point.count == 3

    def test_families_sorted(self):
        snap = snapshot(populated_registry())
        assert snap.families() == (
            "repro_depth",
            "repro_latency_seconds",
            "repro_requests_total",
        )


class TestPrometheusText:
    def test_type_lines_and_samples(self):
        text = to_prometheus(snapshot(populated_registry()))
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{shard="0"} 4' in text
        assert "# TYPE repro_depth gauge" in text

    def test_histogram_renders_cumulative_with_inf(self):
        text = to_prometheus(snapshot(populated_registry()))
        assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{le="1"} 2' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_latency_seconds_count 3" in text
        assert "repro_latency_seconds_sum" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", note='say "hi"\n').inc()
        text = to_prometheus(snapshot(registry))
        assert r'note="say \"hi\"\n"' in text

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus(snapshot(MetricsRegistry())) == ""


class TestJson:
    def test_round_trips_through_json(self):
        payload = json.loads(to_json(snapshot(populated_registry())))
        assert payload["counters"][0]["value"] == 4.0
        assert payload["histograms"][0]["counts"] == [1, 1, 1]


class TestDiff:
    def test_counters_subtract_pointwise(self):
        registry = populated_registry()
        before = snapshot(registry)
        registry.counter("repro_requests_total", shard="0").inc(6)
        window = diff(snapshot(registry), before)
        assert window.counter_value("repro_requests_total", shard="0") == 6.0

    def test_histograms_subtract_bucketwise(self):
        registry = populated_registry()
        before = snapshot(registry)
        registry.histogram("repro_latency_seconds", bounds=(0.1, 1.0)).observe(0.5)
        window = diff(snapshot(registry), before)
        point = window.histogram_point("repro_latency_seconds")
        assert point.counts == (0, 1, 0)
        assert point.count == 1

    def test_series_absent_from_old_keep_new_value(self):
        registry = populated_registry()
        before = snapshot(MetricsRegistry())
        window = diff(snapshot(registry), before)
        assert window.counter_value("repro_requests_total", shard="0") == 4.0

    def test_gauges_carry_new_values(self):
        registry = populated_registry()
        before = snapshot(registry)
        registry.gauge("repro_depth", pool="0").set(9.0)
        window = diff(snapshot(registry), before)
        assert window.gauge_value("repro_depth", pool="0") == 9.0
