"""Tests for repro.telemetry."""
