"""Tests for the Telemetry/NullTelemetry facades and env resolution."""

import pytest

import repro.telemetry as telemetry_module
from repro.telemetry import (
    NULL_TELEMETRY,
    TELEMETRY_ENV,
    NullTelemetry,
    Telemetry,
    default_telemetry,
    resolve_telemetry,
)


class TestFacades:
    def test_null_is_singleton_and_disabled(self):
        assert NullTelemetry() is NULL_TELEMETRY
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.registry is None

    def test_null_snapshot_is_empty(self):
        snap = NULL_TELEMETRY.snapshot()
        assert snap.counters == () and snap.gauges == () and snap.histograms == ()

    def test_enabled_facade_owns_registry_and_spans(self):
        telemetry = Telemetry()
        assert telemetry.enabled is True
        telemetry.registry.counter("c_total").inc()
        assert telemetry.snapshot().counter_value("c_total") == 1.0
        assert telemetry.spans is not None


class TestResolve:
    def test_instances_pass_through(self):
        telemetry = Telemetry()
        assert resolve_telemetry(telemetry) is telemetry
        assert resolve_telemetry(NULL_TELEMETRY) is NULL_TELEMETRY

    def test_true_uses_shared_default(self):
        assert resolve_telemetry(True) is default_telemetry()

    def test_false_is_null(self):
        assert resolve_telemetry(False) is NULL_TELEMETRY

    def test_none_consults_environment(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        assert resolve_telemetry(None) is NULL_TELEMETRY
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        assert resolve_telemetry(None) is default_telemetry()
        monkeypatch.setenv(TELEMETRY_ENV, "0")
        assert resolve_telemetry(None) is NULL_TELEMETRY

    def test_truthy_spellings(self, monkeypatch):
        for spelling in ("1", "true", "YES", " on "):
            monkeypatch.setenv(TELEMETRY_ENV, spelling)
            assert resolve_telemetry(None).enabled, spelling

    def test_rejects_junk(self):
        with pytest.raises(TypeError, match="telemetry must be"):
            resolve_telemetry("yes")

    def test_default_is_process_shared(self):
        assert default_telemetry() is default_telemetry()
        assert isinstance(default_telemetry(), Telemetry)

    def test_module_exports_resolve(self):
        for name in telemetry_module.__all__:
            assert hasattr(telemetry_module, name), name
        assert list(telemetry_module.__all__) == sorted(telemetry_module.__all__)
