"""Tests for span trees, the ring buffer, and deterministic sampling."""

import itertools

from repro.telemetry.tracing import SpanRecorder


class FakeClock:
    """A deterministic clock advancing a fixed step per read."""

    def __init__(self, step=1.0):
        self._ticks = itertools.count()
        self._step = step

    def __call__(self):
        return next(self._ticks) * self._step


class TestSpanNesting:
    def test_child_inherits_trace_id(self):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.span("root") as root:
            with recorder.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
        spans = recorder.spans()
        assert [s.name for s in spans] == ["child", "root"]  # completion order
        assert spans[0].root is False
        assert spans[1].root is True

    def test_durations_come_from_injected_clock(self):
        recorder = SpanRecorder(clock=FakeClock(step=1.0))
        with recorder.span("root"):
            pass
        (span,) = recorder.spans()
        assert span.duration == 1.0  # exactly one tick elapsed

    def test_sibling_traces_get_distinct_ids(self):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.span("first"):
            pass
        with recorder.span("second"):
            pass
        assert len(set(recorder.traces())) == 2

    def test_annotations_stringified(self):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.span("root", analyst="alice") as span:
            span.annotate("queries", 32)
        (completed,) = recorder.spans()
        assert completed.annotations == (("analyst", "alice"), ("queries", "32"))


class TestSampling:
    def test_sample_every_keeps_every_kth_root(self):
        recorder = SpanRecorder(clock=FakeClock(), sample_every=3)
        kept = 0
        for _ in range(9):
            with recorder.span("root") as span:
                kept += span is not None
        assert kept == 3
        assert recorder.total_recorded == 3

    def test_dropped_root_drops_children_silently(self):
        recorder = SpanRecorder(clock=FakeClock(), sample_every=2)
        with recorder.span("kept"):
            pass
        with recorder.span("dropped") as root:
            assert root is None
            with recorder.span("child") as child:
                assert child is None
        assert [s.name for s in recorder.spans()] == ["kept"]

    def test_sampling_is_deterministic_not_random(self):
        def run():
            recorder = SpanRecorder(clock=FakeClock(), sample_every=2)
            outcomes = []
            for _ in range(6):
                with recorder.span("r") as span:
                    outcomes.append(span is not None)
            return outcomes

        assert run() == run()


class TestRingBuffer:
    def test_oldest_spans_overwritten(self):
        recorder = SpanRecorder(capacity=3, clock=FakeClock())
        for index in range(5):
            with recorder.span(f"s{index}"):
                pass
        assert [s.name for s in recorder.spans()] == ["s2", "s3", "s4"]
        assert recorder.total_recorded == 5

    def test_render_shows_indented_tree(self):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.span("serve") as root:
            with recorder.span("execute"):
                pass
        text = recorder.render(root.trace_id)
        lines = text.splitlines()
        assert lines[0].startswith("serve")
        assert lines[1].startswith("  execute")

    def test_render_degrades_when_parent_evicted(self):
        recorder = SpanRecorder(capacity=1, clock=FakeClock())
        with recorder.span("root") as root:
            with recorder.span("child"):
                pass
        # capacity=1: the completed child was overwritten by the root...
        # actually the root completes last, so only the root remains.
        text = recorder.render(root.trace_id)
        assert "root" in text
