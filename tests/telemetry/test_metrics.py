"""Tests for the metric primitives and the registry."""

import threading

import numpy as np
import pytest

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    canonical_labels,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        counter = Counter("c_total")
        with pytest.raises(ValueError, match=">= 0"):
            counter.inc(-1)

    def test_concurrent_increments_lose_nothing(self):
        counter = Counter("c_total")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000.0


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(4.0)
        assert gauge.value == 3.0


class TestHistogram:
    def test_buckets_values_inclusively(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 4.0, 100.0):
            hist.observe(value)
        # bisect_left over inclusive upper edges: 0.5 and 1.0 land in the
        # first bucket (le=1), 1.5 in le=2, 4.0 in le=5, 100 overflows.
        assert tuple(hist.counts) == (2, 1, 1, 1)
        assert hist.count == 5
        assert hist.sum == pytest.approx(107.0)

    def test_counts_is_zero_copy_view(self):
        hist = Histogram("h", bounds=(1.0,))
        view = hist.counts
        assert view.dtype == np.int64
        hist.observe(0.5)
        assert view[0] == 1  # the view is live, not a copy

    def test_default_bounds_are_latency_shaped(self):
        hist = Histogram("h")
        assert hist.bounds == DEFAULT_LATENCY_BUCKETS
        assert len(hist.counts) == len(DEFAULT_LATENCY_BUCKETS) + 1

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", bounds=(2.0, 1.0))

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", bounds=())

    def test_read_is_consistent(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(0.5)
        hist.observe(3.0)
        counts, total, count = hist.read()
        assert counts == (1, 1)
        assert total == pytest.approx(3.5)
        assert count == 2


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", shard="0")
        b = registry.counter("c_total", shard="0")
        assert a is b

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", shard="0", stage="execute")
        b = registry.counter("c_total", stage="execute", shard="0")
        assert a is b

    def test_different_labels_are_different_series(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", shard="0")
        b = registry.counter("c_total", shard="1")
        assert a is not b
        assert len(registry) == 2

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", shard="0")
        with pytest.raises(TypeError, match="is a counter"):
            registry.gauge("m", shard="0")

    def test_callback_counter_sampled_at_snapshot(self):
        registry = MetricsRegistry()
        hits = {"n": 0}
        registry.counter_fn("hits_total", lambda: float(hits["n"]))
        assert registry.snapshot().counter_value("hits_total") == 0.0
        hits["n"] = 7
        assert registry.snapshot().counter_value("hits_total") == 7.0

    def test_callback_failure_repeats_last_sample(self):
        registry = MetricsRegistry()
        state = {"value": 3.0, "broken": False}

        def read():
            if state["broken"]:
                raise RuntimeError("component gone")
            return state["value"]

        registry.gauge_fn("depth", read)
        assert registry.snapshot().gauge_value("depth") == 3.0
        state["broken"] = True
        assert registry.snapshot().gauge_value("depth") == 3.0

    def test_callback_reregistration_rebinds(self):
        registry = MetricsRegistry()
        registry.counter_fn("hits_total", lambda: 1.0)
        registry.counter_fn("hits_total", lambda: 5.0)
        assert registry.snapshot().counter_value("hits_total") == 5.0

    def test_callback_cannot_take_over_stored_counter(self):
        registry = MetricsRegistry()
        registry.counter("c_total")
        with pytest.raises(TypeError, match="stored counter"):
            registry.counter_fn("c_total", lambda: 1.0)

    def test_canonical_labels_stringify(self):
        assert canonical_labels({"shard": 3, "a": "x"}) == (
            ("a", "x"),
            ("shard", "3"),
        )
