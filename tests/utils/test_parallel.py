"""Tests for the parallel Monte-Carlo execution engine."""

import os
import pickle
import threading

import pytest

from repro.utils.parallel import (
    BACKENDS,
    chunk_indices,
    chunk_indices_weighted,
    effective_jobs,
    fork_available,
    parallel_map,
    resolve_backend,
)


class TestEffectiveJobs:
    def test_default_is_serial(self):
        assert effective_jobs(None) == 1
        assert effective_jobs(0) == 1
        assert effective_jobs(1) == 1

    def test_positive_passthrough(self):
        assert effective_jobs(4) == 4

    def test_negative_means_all_cores(self):
        assert effective_jobs(-1) == max(1, os.cpu_count() or 1)


class TestChunkIndices:
    def test_covers_every_index_once_in_order(self):
        for count in (0, 1, 5, 17, 100):
            for chunks in (1, 2, 3, 7, 200):
                flattened = [i for r in chunk_indices(count, chunks) for i in r]
                assert flattened == list(range(count))

    def test_balanced(self):
        sizes = [len(r) for r in chunk_indices(10, 3)]
        assert max(sizes) - min(sizes) <= 1


class TestChunkIndicesWeighted:
    def test_covers_every_index_once(self):
        for count in (0, 1, 5, 17, 100):
            for chunks in (1, 2, 3, 7, 200):
                groups = chunk_indices_weighted([1.0] * count, chunks)
                flattened = sorted(i for g in groups for i in g)
                assert flattened == list(range(count))

    def test_groups_are_sorted_within(self):
        groups = chunk_indices_weighted([3.0, 1.0, 4.0, 1.0, 5.0, 9.0], 2)
        for group in groups:
            assert group == sorted(group)

    def test_deterministic(self):
        weights = [5.0, 1.0, 3.0, 3.0, 1.0, 5.0, 2.0]
        assert chunk_indices_weighted(weights, 3) == chunk_indices_weighted(
            weights, 3
        )

    def test_lpt_balances_heterogeneous_weights(self):
        # Three big shards and six small ones over three chunks: LPT puts
        # one big shard per chunk; contiguous equal-count chunking would
        # serialize two big shards into one chunk.
        weights = [9.0, 9.0, 9.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        groups = chunk_indices_weighted(weights, 3)
        loads = [sum(weights[i] for i in g) for g in groups]
        assert max(loads) - min(loads) <= max(weights[3:])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            chunk_indices_weighted([1.0, -2.0], 2)

    def test_degenerate_shapes(self):
        assert chunk_indices_weighted([], 4) == []
        assert chunk_indices_weighted([2.0, 3.0, 4.0], 1) == [[0, 1, 2]]


class TestResolveBackend:
    def test_serial_when_one_job(self):
        assert resolve_backend("auto", 1) == "serial"
        assert resolve_backend("process", 1) == "serial"

    def test_auto_prefers_process_when_fork_exists(self):
        expected = "process" if fork_available() else "serial"
        assert resolve_backend("auto", 4) == expected

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("threads", 2)
        with pytest.raises(ValueError, match="backend"):
            parallel_map(lambda x: x, [1], jobs=2, backend="magic")

    def test_backends_constant(self):
        assert set(BACKENDS) == {"auto", "serial", "thread", "process"}


class TestParallelMap:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_preserves_input_order(self, backend, jobs):
        items = list(range(37))
        assert parallel_map(lambda x: x * x, items, jobs=jobs, backend=backend) == [
            x * x for x in items
        ]

    def test_empty_items(self):
        assert parallel_map(lambda x: x, [], jobs=4) == []

    def test_accepts_any_iterable(self):
        assert parallel_map(str, iter(range(3)), jobs=2, backend="thread") == [
            "0",
            "1",
            "2",
        ]

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_exceptions_propagate(self, backend):
        def boom(x):
            raise RuntimeError(f"bad item {x}")

        with pytest.raises(RuntimeError, match="bad item"):
            parallel_map(boom, [1, 2, 3], jobs=2, backend=backend)

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_unpicklable_fn_works_via_fork(self):
        # Closures/lambdas pervade the codebase (Predicate fns, mechanism
        # post-processing); the fork path must not pickle them.
        secret = 17
        fn = lambda x: x + secret  # noqa: E731
        with pytest.raises(Exception):
            pickle.dumps(fn)
        assert parallel_map(fn, [1, 2, 3], jobs=2, backend="process") == [18, 19, 20]

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_weighted_dispatch_preserves_order(self, backend):
        items = list(range(23))
        weights = [float(1 + (i * 7) % 11) for i in items]
        assert parallel_map(
            lambda x: x * x, items, jobs=3, backend=backend, weights=weights
        ) == [x * x for x in items]

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="weights"):
            parallel_map(lambda x: x, [1, 2, 3], jobs=2, weights=[1.0])

    def test_thread_backend_actually_uses_worker_threads(self):
        seen = set()

        def record(x):
            seen.add(threading.current_thread().name)
            return x

        parallel_map(record, list(range(64)), jobs=4, backend="thread")
        assert any(name != threading.main_thread().name for name in seen)
