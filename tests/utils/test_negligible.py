"""Tests for the finite-n negligibility and isolation arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.negligible import (
    baseline_isolation_probability,
    is_negligible_weight,
    isolation_probability,
    negligible_weight_threshold,
    optimal_isolation_weight,
)


class TestIsolationProbability:
    def test_paper_birthday_example(self):
        # n = 365, w = 1/365: the paper computes ~37%.
        probability = isolation_probability(365, 1.0 / 365.0)
        assert probability == pytest.approx(0.37, abs=0.01)

    def test_limit_is_one_over_e(self):
        probability = isolation_probability(10**6, 1e-6)
        assert probability == pytest.approx(float(np.exp(-1)), abs=1e-4)

    def test_weight_zero(self):
        assert isolation_probability(100, 0.0) == 0.0

    def test_weight_one_multirecord(self):
        # Every record matches: never exactly one (for n > 1).
        assert isolation_probability(5, 1.0) == 0.0

    def test_weight_one_single_record(self):
        assert isolation_probability(1, 1.0) == 1.0

    def test_binomial_exactness(self):
        # n*w*(1-w)^(n-1) is exactly Binomial(n, w)(k=1).
        from scipy.stats import binom

        for n, w in [(10, 0.1), (50, 0.02), (365, 1 / 365)]:
            assert isolation_probability(n, w) == pytest.approx(
                float(binom.pmf(1, n, w)), rel=1e-9
            )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            isolation_probability(0, 0.5)
        with pytest.raises(ValueError):
            isolation_probability(10, -0.1)
        with pytest.raises(ValueError):
            isolation_probability(10, 1.5)

    @given(n=st.integers(2, 10_000), factor=st.floats(0.01, 0.99))
    @settings(max_examples=60, deadline=None)
    def test_optimum_at_one_over_n(self, n, factor):
        # Any weight other than 1/n does no better.
        at_optimum = isolation_probability(n, 1.0 / n)
        off_optimum = isolation_probability(n, factor / n)
        assert off_optimum <= at_optimum + 1e-12


class TestThresholds:
    def test_threshold_below_optimal_weight(self):
        for n in (10, 100, 10_000):
            assert negligible_weight_threshold(n) < optimal_isolation_weight(n)

    def test_default_exponent_is_square(self):
        assert negligible_weight_threshold(100) == pytest.approx(1e-4)

    def test_exponent_must_exceed_one(self):
        with pytest.raises(ValueError):
            negligible_weight_threshold(100, exponent=1.0)

    def test_is_negligible_weight(self):
        assert is_negligible_weight(1e-6, 100)
        assert not is_negligible_weight(1e-3, 100)

    def test_baseline_approaches_one_over_e(self):
        assert baseline_isolation_probability(100_000) == pytest.approx(
            float(np.exp(-1)), abs=1e-4
        )

    def test_baseline_decreasing_in_n(self):
        values = [baseline_isolation_probability(n) for n in (2, 10, 100, 1000)]
        assert values == sorted(values, reverse=True)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            negligible_weight_threshold(0)
        with pytest.raises(ValueError):
            optimal_isolation_weight(-5)
