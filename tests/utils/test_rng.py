"""Tests for RNG plumbing: determinism, independence, normalization."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1_000_000, size=10)
        b = ensure_rng(42).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1_000_000, size=10)
        b = ensure_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_none_gives_fresh_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        a = ensure_rng(sequence)
        assert isinstance(a, np.random.Generator)

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnRngs:
    def test_deterministic_from_int(self):
        a = [g.integers(0, 10**9) for g in spawn_rngs(5, 4)]
        b = [g.integers(0, 10**9) for g in spawn_rngs(5, 4)]
        assert a == b

    def test_streams_are_distinct(self):
        streams = spawn_rngs(0, 8)
        draws = {int(g.integers(0, 2**62)) for g in streams}
        assert len(draws) == 8

    def test_count_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawning_from_generator_draws_children(self):
        parent = np.random.default_rng(3)
        children = spawn_rngs(parent, 3)
        assert len(children) == 3
        values = {int(c.integers(0, 2**62)) for c in children}
        assert len(values) == 3


class TestDeriveRng:
    def test_same_labels_same_stream(self):
        a = derive_rng(0, "mechanism").integers(0, 10**9)
        b = derive_rng(0, "mechanism").integers(0, 10**9)
        assert a == b

    def test_different_labels_different_streams(self):
        a = derive_rng(0, "mechanism").integers(0, 10**9)
        b = derive_rng(0, "adversary").integers(0, 10**9)
        assert a != b

    def test_different_seeds_different_streams(self):
        a = derive_rng(0, "x").integers(0, 10**9)
        b = derive_rng(1, "x").integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert derive_rng(generator, "anything") is generator

    def test_multiple_labels(self):
        a = derive_rng(0, "e1", 128, 0.5).integers(0, 10**9)
        b = derive_rng(0, "e1", 128, 0.5).integers(0, 10**9)
        c = derive_rng(0, "e1", 128, 0.25).integers(0, 10**9)
        assert a == b
        assert a != c
