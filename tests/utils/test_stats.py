"""Tests for binomial estimates and confidence intervals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    BinomialEstimate,
    clopper_pearson_interval,
    empirical_cdf,
    estimate_proportion,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lower, upper = wilson_interval(37, 100)
        assert lower <= 0.37 <= upper

    def test_zero_successes(self):
        lower, upper = wilson_interval(0, 50)
        assert lower == 0.0
        assert 0.0 < upper < 0.2

    def test_all_successes(self):
        lower, upper = wilson_interval(50, 50)
        assert upper == 1.0
        assert 0.8 < lower < 1.0

    def test_narrows_with_more_trials(self):
        narrow = wilson_interval(370, 1000)
        wide = wilson_interval(37, 100)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(-1, 10)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(5, 10, confidence=1.5)

    @given(
        successes=st.integers(0, 200),
        extra=st.integers(0, 200),
        confidence=st.floats(0.5, 0.999),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds_are_ordered_and_in_unit_interval(self, successes, extra, confidence):
        trials = successes + extra + 1
        lower, upper = wilson_interval(successes, trials, confidence)
        assert 0.0 <= lower <= upper <= 1.0


class TestClopperPearson:
    def test_is_wider_than_wilson(self):
        cp = clopper_pearson_interval(37, 100)
        w = wilson_interval(37, 100)
        assert cp[0] <= w[0] + 1e-9
        assert cp[1] >= w[1] - 1e-9

    def test_extremes(self):
        lower, upper = clopper_pearson_interval(0, 30)
        assert lower == 0.0
        lower, upper = clopper_pearson_interval(30, 30)
        assert upper == 1.0

    def test_zero_successes_upper_is_rule_of_three(self):
        # At 95%, the CP upper bound with 0/n is ~3/n.
        _lower, upper = clopper_pearson_interval(0, 100, confidence=0.95)
        assert upper == pytest.approx(3.0 / 100.0, rel=0.25)

    @given(successes=st.integers(0, 100), extra=st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_contains_point_estimate(self, successes, extra):
        trials = successes + extra + 1
        lower, upper = clopper_pearson_interval(successes, trials)
        assert lower <= successes / trials <= upper


class TestEstimateProportion:
    def test_wilson_default(self):
        estimate = estimate_proportion(37, 100)
        assert estimate.estimate == pytest.approx(0.37)
        assert estimate.lower <= 0.37 <= estimate.upper

    def test_clopper_pearson_method(self):
        estimate = estimate_proportion(0, 60, method="clopper-pearson")
        assert estimate.lower == 0.0
        assert estimate.upper > 0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            estimate_proportion(1, 2, method="bayes")

    def test_contains(self):
        estimate = estimate_proportion(37, 100)
        assert estimate.contains(0.37)
        assert not estimate.contains(0.9)

    def test_str_contains_counts(self):
        assert "(37/100)" in str(estimate_proportion(37, 100))

    def test_invalid_estimate_construction(self):
        with pytest.raises(ValueError):
            BinomialEstimate(successes=5, trials=0, estimate=0, lower=0, upper=0, confidence=0.95)
        with pytest.raises(ValueError):
            BinomialEstimate(successes=5, trials=3, estimate=0, lower=0, upper=0, confidence=0.95)


class TestEmpiricalCdf:
    def test_sorted_and_normalized(self):
        values, cdf = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        assert list(values) == [1.0, 2.0, 3.0]
        assert cdf[-1] == pytest.approx(1.0)
        assert cdf[0] == pytest.approx(1.0 / 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.array([]))
