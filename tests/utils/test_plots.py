"""Tests for the ASCII figure renderer."""

import pytest

from repro.utils.plots import ascii_chart, ascii_overlay


class TestAsciiChart:
    def test_basic_structure(self):
        chart = ascii_chart([0, 1, 2], [0.0, 0.5, 1.0], title="t", x_label="x", y_label="y")
        lines = chart.splitlines()
        assert lines[0] == "t"
        assert "*" in chart
        assert "x: x" in chart and "y: y" in chart

    def test_tick_labels(self):
        chart = ascii_chart([0, 10], [0.25, 0.75])
        assert "0.75" in chart and "0.25" in chart  # y ticks
        assert "10" in chart  # x tick

    def test_monotone_curve_descends(self):
        # A decreasing curve must put its first point above its last.
        chart = ascii_chart([0, 1, 2, 3], [1.0, 0.7, 0.4, 0.1], height=8, width=20)
        lines = [line for line in chart.splitlines() if "|" in line]
        first_star_row = min(i for i, line in enumerate(lines) if "*" in line)
        last_star_row = max(i for i, line in enumerate(lines) if "*" in line)
        first_column = lines[first_star_row].index("*")
        last_column = lines[last_star_row].index("*")
        assert first_column < last_column  # high-left, low-right

    def test_constant_series_handled(self):
        chart = ascii_chart([0, 1], [0.5, 0.5])
        assert "*" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([0], [1])
        with pytest.raises(ValueError):
            ascii_chart([0, 1], [1])
        with pytest.raises(ValueError):
            ascii_chart([0, 1], [0, 1], width=5)


class TestAsciiOverlay:
    def test_legend_and_markers(self):
        chart = ascii_overlay(
            [0, 1, 2],
            [("theory", [0.1, 0.2, 0.3], "o"), ("measured", [0.12, 0.18, 0.33], "*")],
        )
        assert "o = theory" in chart
        assert "* = measured" in chart
        assert "o" in chart and "*" in chart

    def test_misaligned_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_overlay([0, 1], [("a", [1], "o")])

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_overlay([0, 1], [])
