"""Tests for ASCII table rendering."""

import pytest

from repro.utils.tables import Table, format_cell, format_table


class TestTable:
    def test_basic_rendering(self):
        table = Table(["a", "bb"], title="T")
        table.add_row([1, 2])
        text = table.render()
        assert "T" in text
        assert "a" in text and "bb" in text
        assert "1" in text and "2" in text

    def test_alignment(self):
        table = Table(["col", "x"])
        table.add_row(["short", 1])
        table.add_row(["a-much-longer-cell", 2])
        lines = table.render().splitlines()
        # Header and rows share the second-column start offset.
        offsets = {line.rstrip().rfind(text) for line, text in zip(lines, ["x", "-", "1", "2"])}
        assert len(lines) == 4

    def test_wrong_arity_rejected(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_str_equals_render(self):
        table = Table(["a"])
        table.add_row([1])
        assert str(table) == table.render()

    def test_no_title(self):
        table = Table(["a"])
        table.add_row([1])
        assert not table.render().startswith("=")


class TestFormatCell:
    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_small_float_scientific(self):
        assert "e-" in format_cell(1.5e-7)

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_moderate_float(self):
        assert format_cell(0.4219) == "0.4219"

    def test_large_float_scientific(self):
        assert "e+" in format_cell(123456.0)

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"

    def test_int_not_science(self):
        assert format_cell(123456) == "123456"


def test_format_table_one_shot():
    text = format_table(["x", "y"], [[1, 2], [3, 4]], title="demo")
    assert "demo" in text
    # title + separator + header + rule + 2 rows = 6 lines.
    assert len(text.splitlines()) == 6
