"""Tests for LP-decoding reconstruction."""

import numpy as np
import pytest

from repro.queries.mechanism import BoundedNoiseAnswerer, ExactAnswerer, LaplaceAnswerer
from repro.queries.workload import Workload, random_subset_queries
from repro.reconstruction.lp_decode import lp_reconstruction, reconstruct_from_answers


class TestLpReconstruction:
    def test_exact_answers_near_perfect(self):
        data = np.random.default_rng(0).integers(0, 2, size=64)
        result = lp_reconstruction(ExactAnswerer(data), rng=1)
        assert result.agreement_with(data) >= 0.98
        assert result.mode == "feasibility"

    def test_sqrt_n_noise_blatant_nonprivacy(self):
        rng = np.random.default_rng(2)
        n = 128
        data = rng.integers(0, 2, size=n)
        answerer = BoundedNoiseAnswerer(data, alpha=0.5 * np.sqrt(n), rng=rng)
        result = lp_reconstruction(answerer, rng=3)
        assert result.agreement_with(data) >= 0.95  # the paper's 95% bar

    def test_linear_noise_defends(self):
        rng = np.random.default_rng(4)
        n = 128
        data = rng.integers(0, 2, size=n)
        answerer = BoundedNoiseAnswerer(data, alpha=n / 2.0, rng=rng)
        result = lp_reconstruction(answerer, rng=5)
        assert result.agreement_with(data) <= 0.85

    def test_laplace_auto_selects_least_l1(self):
        data = np.random.default_rng(6).integers(0, 2, size=32)
        answerer = LaplaceAnswerer(data, epsilon_per_query=0.5, rng=7)
        result = lp_reconstruction(answerer, num_queries=128, rng=8)
        assert result.mode == "least-l1"
        assert np.isnan(result.alpha)

    def test_explicit_mode(self):
        data = np.random.default_rng(9).integers(0, 2, size=32)
        result = lp_reconstruction(
            ExactAnswerer(data), mode="least-l1", num_queries=160, rng=10
        )
        assert result.mode == "least-l1"
        assert result.agreement_with(data) >= 0.95

    def test_unknown_mode_rejected(self):
        data = np.zeros(8, dtype=int)
        with pytest.raises(ValueError):
            lp_reconstruction(ExactAnswerer(data), mode="magic")

    def test_invalid_query_count(self):
        data = np.zeros(8, dtype=int)
        with pytest.raises(ValueError):
            lp_reconstruction(ExactAnswerer(data), num_queries=0)

    def test_fractional_solution_in_unit_cube(self):
        data = np.random.default_rng(11).integers(0, 2, size=32)
        result = lp_reconstruction(ExactAnswerer(data), rng=12)
        assert (result.fractional >= 0).all() and (result.fractional <= 1).all()

    def test_hamming_distance(self):
        data = np.random.default_rng(13).integers(0, 2, size=32)
        result = lp_reconstruction(ExactAnswerer(data), rng=14)
        assert result.hamming_distance(data) == int(
            round((1 - result.agreement_with(data)) * 32)
        )


class TestReconstructFromAnswers:
    def test_replayed_transcript(self):
        rng = np.random.default_rng(15)
        n = 48
        data = rng.integers(0, 2, size=n)
        queries = random_subset_queries(n, 8 * n, rng=rng)
        answerer = ExactAnswerer(data)
        answers = answerer.answer_workload(queries)
        result = reconstruct_from_answers(queries, answers, alpha=0.0)
        assert result.agreement_with(data) >= 0.98

    def test_answers_alignment_checked(self):
        queries = random_subset_queries(10, 5, rng=0)
        with pytest.raises(ValueError):
            reconstruct_from_answers(queries, np.zeros(4))

    def test_no_alpha_uses_least_l1(self):
        rng = np.random.default_rng(16)
        n = 32
        data = rng.integers(0, 2, size=n)
        queries = random_subset_queries(n, 6 * n, rng=rng)
        answers = ExactAnswerer(data).answer_workload(queries)
        result = reconstruct_from_answers(queries, answers)
        assert result.mode == "least-l1"

    def test_accepts_workload_directly(self):
        rng = np.random.default_rng(17)
        n = 40
        data = rng.integers(0, 2, size=n)
        workload = Workload.random(n, 8 * n, rng=rng)
        answers = ExactAnswerer(data).answer_workload(workload)
        result = reconstruct_from_answers(workload, answers, alpha=0.0)
        assert result.agreement_with(data) >= 0.98
        assert result.queries_used == 8 * n


class TestSparsePath:
    def test_prebuilt_workload_reused(self):
        rng = np.random.default_rng(18)
        n = 48
        data = rng.integers(0, 2, size=n)
        workload = Workload.random(n, 8 * n, rng=rng)
        answerer = ExactAnswerer(data)
        result = lp_reconstruction(answerer, workload=workload)
        assert result.agreement_with(data) >= 0.98
        assert answerer.queries_answered == 8 * n

    def test_workload_size_mismatch_rejected(self):
        data = np.zeros(8, dtype=int)
        workload = Workload.random(9, 4, rng=0)
        with pytest.raises(ValueError):
            lp_reconstruction(ExactAnswerer(data), workload=workload)

    def test_sparse_density_large_n(self):
        # Low-density workloads keep the CSR constraint matrix genuinely
        # sparse; the attack still reconstructs in its noise regime.
        rng = np.random.default_rng(19)
        n = 256
        density = 32.0 / n
        data = rng.integers(0, 2, size=n)
        answerer = BoundedNoiseAnswerer(data, alpha=2.0, rng=rng)
        result = lp_reconstruction(answerer, density=density, rng=20)
        assert result.agreement_with(data) >= 0.9

    def test_solver_knob(self):
        data = np.random.default_rng(21).integers(0, 2, size=32)
        ipm = lp_reconstruction(ExactAnswerer(data), rng=22, solver="highs-ipm")
        simplex = lp_reconstruction(ExactAnswerer(data), rng=22, solver="highs")
        # Both algorithms decode the same transcript to the same bits.
        assert np.array_equal(ipm.reconstruction, simplex.reconstruction)

    def test_unknown_solver_rejected(self):
        data = np.zeros(8, dtype=int)
        with pytest.raises(ValueError):
            lp_reconstruction(ExactAnswerer(data), solver="not-a-solver")
