"""Tests for LP-decoding reconstruction."""

import numpy as np
import pytest

from repro.queries.mechanism import BoundedNoiseAnswerer, ExactAnswerer, LaplaceAnswerer
from repro.queries.workload import Workload, random_subset_queries
from repro.reconstruction.lp_decode import (
    DEFAULT_LP_SOLVER,
    LpSolverOptions,
    _resolve_options,
    lp_reconstruction,
    reconstruct_from_answers,
)


class TestLpReconstruction:
    def test_exact_answers_near_perfect(self):
        data = np.random.default_rng(0).integers(0, 2, size=64)
        result = lp_reconstruction(ExactAnswerer(data), rng=1)
        assert result.agreement_with(data) >= 0.98
        assert result.mode == "feasibility"

    def test_sqrt_n_noise_blatant_nonprivacy(self):
        rng = np.random.default_rng(2)
        n = 128
        data = rng.integers(0, 2, size=n)
        answerer = BoundedNoiseAnswerer(data, alpha=0.5 * np.sqrt(n), rng=rng)
        result = lp_reconstruction(answerer, rng=3)
        assert result.agreement_with(data) >= 0.95  # the paper's 95% bar

    def test_linear_noise_defends(self):
        rng = np.random.default_rng(4)
        n = 128
        data = rng.integers(0, 2, size=n)
        answerer = BoundedNoiseAnswerer(data, alpha=n / 2.0, rng=rng)
        result = lp_reconstruction(answerer, rng=5)
        assert result.agreement_with(data) <= 0.85

    def test_laplace_auto_selects_least_l1(self):
        data = np.random.default_rng(6).integers(0, 2, size=32)
        answerer = LaplaceAnswerer(data, epsilon_per_query=0.5, rng=7)
        result = lp_reconstruction(answerer, num_queries=128, rng=8)
        assert result.mode == "least-l1"
        assert np.isnan(result.alpha)

    def test_explicit_mode(self):
        data = np.random.default_rng(9).integers(0, 2, size=32)
        result = lp_reconstruction(
            ExactAnswerer(data), mode="least-l1", num_queries=160, rng=10
        )
        assert result.mode == "least-l1"
        assert result.agreement_with(data) >= 0.95

    def test_unknown_mode_rejected(self):
        data = np.zeros(8, dtype=int)
        with pytest.raises(ValueError):
            lp_reconstruction(ExactAnswerer(data), mode="magic")

    def test_invalid_query_count(self):
        data = np.zeros(8, dtype=int)
        with pytest.raises(ValueError):
            lp_reconstruction(ExactAnswerer(data), num_queries=0)

    def test_fractional_solution_in_unit_cube(self):
        data = np.random.default_rng(11).integers(0, 2, size=32)
        result = lp_reconstruction(ExactAnswerer(data), rng=12)
        assert (result.fractional >= 0).all() and (result.fractional <= 1).all()

    def test_hamming_distance(self):
        data = np.random.default_rng(13).integers(0, 2, size=32)
        result = lp_reconstruction(ExactAnswerer(data), rng=14)
        assert result.hamming_distance(data) == int(
            round((1 - result.agreement_with(data)) * 32)
        )


class TestReconstructFromAnswers:
    def test_replayed_transcript(self):
        rng = np.random.default_rng(15)
        n = 48
        data = rng.integers(0, 2, size=n)
        queries = random_subset_queries(n, 8 * n, rng=rng)
        answerer = ExactAnswerer(data)
        answers = answerer.answer_workload(queries)
        result = reconstruct_from_answers(queries, answers, alpha=0.0)
        assert result.agreement_with(data) >= 0.98

    def test_answers_alignment_checked(self):
        queries = random_subset_queries(10, 5, rng=0)
        with pytest.raises(ValueError):
            reconstruct_from_answers(queries, np.zeros(4))

    def test_no_alpha_uses_least_l1(self):
        rng = np.random.default_rng(16)
        n = 32
        data = rng.integers(0, 2, size=n)
        queries = random_subset_queries(n, 6 * n, rng=rng)
        answers = ExactAnswerer(data).answer_workload(queries)
        result = reconstruct_from_answers(queries, answers)
        assert result.mode == "least-l1"

    def test_accepts_workload_directly(self):
        rng = np.random.default_rng(17)
        n = 40
        data = rng.integers(0, 2, size=n)
        workload = Workload.random(n, 8 * n, rng=rng)
        answers = ExactAnswerer(data).answer_workload(workload)
        result = reconstruct_from_answers(workload, answers, alpha=0.0)
        assert result.agreement_with(data) >= 0.98
        assert result.queries_used == 8 * n


class TestSparsePath:
    def test_prebuilt_workload_reused(self):
        rng = np.random.default_rng(18)
        n = 48
        data = rng.integers(0, 2, size=n)
        workload = Workload.random(n, 8 * n, rng=rng)
        answerer = ExactAnswerer(data)
        result = lp_reconstruction(answerer, workload=workload)
        assert result.agreement_with(data) >= 0.98
        assert answerer.queries_answered == 8 * n

    def test_workload_size_mismatch_rejected(self):
        data = np.zeros(8, dtype=int)
        workload = Workload.random(9, 4, rng=0)
        with pytest.raises(ValueError):
            lp_reconstruction(ExactAnswerer(data), workload=workload)

    def test_sparse_density_large_n(self):
        # Low-density workloads keep the CSR constraint matrix genuinely
        # sparse; the attack still reconstructs in its noise regime.
        rng = np.random.default_rng(19)
        n = 256
        density = 32.0 / n
        data = rng.integers(0, 2, size=n)
        answerer = BoundedNoiseAnswerer(data, alpha=2.0, rng=rng)
        result = lp_reconstruction(answerer, density=density, rng=20)
        assert result.agreement_with(data) >= 0.9

    def test_solver_knob(self):
        data = np.random.default_rng(21).integers(0, 2, size=32)
        ipm = lp_reconstruction(ExactAnswerer(data), rng=22, solver="highs-ipm")
        simplex = lp_reconstruction(ExactAnswerer(data), rng=22, solver="highs")
        # Both algorithms decode the same transcript to the same bits.
        assert np.array_equal(ipm.reconstruction, simplex.reconstruction)

    def test_unknown_solver_rejected(self):
        data = np.zeros(8, dtype=int)
        with pytest.raises(ValueError):
            lp_reconstruction(ExactAnswerer(data), solver="not-a-solver")


class TestWarmStart:
    def _transcript(self, n=48, seed=30):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, size=n)
        workload = Workload.random(n, 8 * n, rng=rng)
        answers = ExactAnswerer(data).answer_workload(workload).astype(float)
        return workload, data, answers

    def test_feasible_warm_start_is_the_certificate(self):
        # A warm start that already meets every constraint is itself a
        # solution of the zero-objective feasibility LP — it must come back
        # verbatim, without a solve.
        workload, data, answers = self._transcript()
        start = data.astype(float)
        result = reconstruct_from_answers(
            workload, answers, alpha=0.5, warm_start=start
        )
        assert np.array_equal(result.fractional, start)
        assert result.agreement_with(data) == 1.0

    def test_warm_start_clipped_to_the_box(self):
        # Out-of-box coordinates are clipped before the certificate check;
        # the clipped point here equals the truth, so it certifies.
        workload, data, answers = self._transcript(seed=31)
        start = data.astype(float) * 2.0 - 0.5  # -0.5 / 1.5 -> clips to 0 / 1
        result = reconstruct_from_answers(
            workload, answers, alpha=0.5, warm_start=start
        )
        assert np.array_equal(result.fractional, data.astype(float))

    def test_infeasible_warm_start_falls_through_to_the_solver(self):
        workload, data, answers = self._transcript(seed=32)
        wrong = 1.0 - data.astype(float)
        result = reconstruct_from_answers(
            workload, answers, alpha=0.0, warm_start=wrong
        )
        cold = reconstruct_from_answers(workload, answers, alpha=0.0)
        assert np.array_equal(result.reconstruction, cold.reconstruction)
        assert result.agreement_with(data) >= 0.98

    def test_least_l1_ignores_warm_start(self):
        # Without a finite alpha there is no certificate to check; the
        # least-l1 solve is warm-start-free and bitwise unaffected.
        workload, data, answers = self._transcript(seed=33)
        with_start = reconstruct_from_answers(
            workload, answers, warm_start=data.astype(float)
        )
        without = reconstruct_from_answers(workload, answers)
        assert np.array_equal(with_start.fractional, without.fractional)
        assert with_start.mode == "least-l1"

    def test_warm_start_shape_checked(self):
        workload, _, answers = self._transcript(seed=34)
        with pytest.raises(ValueError, match="warm_start"):
            reconstruct_from_answers(
                workload, answers, alpha=0.5, warm_start=np.zeros(3)
            )


class TestLpSolverOptions:
    def test_defaults(self):
        options = LpSolverOptions()
        kwargs = options.linprog_kwargs()
        assert kwargs["method"] == DEFAULT_LP_SOLVER
        assert kwargs["options"] == {"presolve": True}

    def test_time_limit_plumbed(self):
        kwargs = LpSolverOptions(time_limit=30.0, presolve=False).linprog_kwargs()
        assert kwargs["options"] == {"presolve": False, "time_limit": 30.0}

    def test_invalid_time_limit_rejected(self):
        with pytest.raises(ValueError, match="time_limit"):
            LpSolverOptions(time_limit=0.0)
        with pytest.raises(ValueError, match="time_limit"):
            LpSolverOptions(time_limit=-5.0)

    def test_explicit_options_beat_the_legacy_solver_knob(self):
        options = LpSolverOptions(method="highs-ds")
        assert _resolve_options("highs-ipm", options) is options
        assert _resolve_options("highs", None).method == "highs"
        assert _resolve_options(None, None) == LpSolverOptions()

    def test_options_reach_the_solver(self):
        rng = np.random.default_rng(35)
        n = 32
        data = rng.integers(0, 2, size=n)
        workload = Workload.random(n, 8 * n, rng=rng)
        answers = ExactAnswerer(data).answer_workload(workload).astype(float)
        tuned = reconstruct_from_answers(
            workload,
            answers,
            alpha=0.0,
            options=LpSolverOptions(method="highs", presolve=False),
        )
        default = reconstruct_from_answers(workload, answers, alpha=0.0)
        # Same transcript, same decoded bits, whatever the algorithm.
        assert np.array_equal(tuned.reconstruction, default.reconstruction)

    def test_unknown_method_surfaces(self):
        rng = np.random.default_rng(36)
        data = rng.integers(0, 2, size=8)
        workload = Workload.random(8, 32, rng=rng)
        answers = ExactAnswerer(data).answer_workload(workload).astype(float)
        with pytest.raises(ValueError):
            reconstruct_from_answers(
                workload, answers, options=LpSolverOptions(method="not-a-solver")
            )
