"""The first-order l2 decoder: agreement with the LP, certificates, determinism."""

import numpy as np
import pytest

from repro.queries.mechanism import BoundedNoiseAnswerer, ExactAnswerer
from repro.queries.workload import Workload
from repro.reconstruction.l2_decode import (
    L2ReconstructionResult,
    _lipschitz_bound,
    l2_decode,
    l2_decode_batch,
)
from repro.reconstruction.lp_decode import reconstruct_from_answers
from repro.utils.rng import derive_rng


def _transcript(n, m, seed, alpha=0.0, density=0.5):
    rng = derive_rng(seed, "l2-test", n)
    data = rng.integers(0, 2, size=n)
    workload = Workload.random(n, m, density=density, rng=rng)
    if alpha:
        answers = BoundedNoiseAnswerer(data, alpha=alpha, rng=rng).answer_workload(
            workload
        )
    else:
        answers = ExactAnswerer(data).answer_workload(workload)
    return workload, data, answers.astype(float)


class TestL2Decode:
    def test_exact_answers_recovered(self):
        workload, data, answers = _transcript(64, 512, seed=0)
        result = l2_decode(workload, answers, alpha=0.5)
        assert result.agreement_with(data) == 1.0
        assert result.certified
        assert result.max_residual <= 0.5

    def test_bounded_noise_recovered(self):
        workload, data, answers = _transcript(128, 1024, seed=1, alpha=2.0)
        result = l2_decode(workload, answers, alpha=2.0)
        assert result.agreement_with(data) >= 0.95

    def test_agrees_with_lp_in_the_sparse_regime(self):
        # The KRS claim: the projection decodes wherever the LP decodes.
        n = 256
        workload, data, answers = _transcript(
            n, 8 * n, seed=2, alpha=2.0, density=32.0 / n
        )
        l2 = l2_decode(workload, answers, alpha=2.0)
        lp = reconstruct_from_answers(workload, answers, alpha=2.0)
        assert l2.agreement_with(data) >= 0.95
        assert lp.agreement_with(data) >= 0.95
        # Both decoders agree with each other at least as well as either
        # agrees with the truth.
        both = float((l2.reconstruction == lp.reconstruction).mean())
        assert both >= 0.95

    def test_certificate_is_the_feasibility_condition(self):
        workload, data, answers = _transcript(32, 256, seed=3)
        result = l2_decode(workload, answers, alpha=0.25)
        matrix = workload.matrix(sparse=True)
        residual = np.max(
            np.abs(matrix @ result.reconstruction.astype(float) - answers)
        )
        assert result.max_residual == pytest.approx(float(residual))
        assert result.certified == (residual <= 0.25)

    def test_no_alpha_means_nothing_to_certify(self):
        workload, _, answers = _transcript(32, 256, seed=4)
        result = l2_decode(workload, answers)
        assert not result.certified
        assert np.isnan(result.alpha)

    def test_deterministic_given_seed(self):
        workload, _, answers = _transcript(64, 512, seed=5, alpha=1.0)
        runs = [
            l2_decode(workload, answers, alpha=1.0, lipschitz="power", rng=7)
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].reconstruction, runs[1].reconstruction)
        assert np.array_equal(runs[0].fractional, runs[1].fractional)

    def test_explicit_lipschitz_accepted(self):
        workload, data, answers = _transcript(32, 256, seed=6)
        bound = _lipschitz_bound(workload.matrix(sparse=True))
        result = l2_decode(workload, answers, alpha=0.5, lipschitz=bound)
        assert result.agreement_with(data) == 1.0

    def test_validation(self):
        workload, _, answers = _transcript(16, 64, seed=7)
        with pytest.raises(ValueError):
            l2_decode(workload, answers[:-1])
        with pytest.raises(ValueError):
            l2_decode(workload, answers, max_iters=0)
        with pytest.raises(ValueError):
            l2_decode(workload, answers, reg=-1.0)
        with pytest.raises(ValueError):
            l2_decode(workload, answers, lipschitz="bogus")
        with pytest.raises(ValueError):
            l2_decode(workload, answers, lipschitz=-1.0)

    def test_result_bookkeeping(self):
        workload, data, answers = _transcript(48, 384, seed=8)
        result = l2_decode(workload, answers, alpha=0.5)
        assert isinstance(result, L2ReconstructionResult)
        assert result.queries_used == 384
        assert result.iterations >= 1
        assert result.hamming_distance(data) == 0


class TestL2DecodeBatch:
    def _batch(self, k, m, b, seed):
        rng = derive_rng(seed, "l2-batch")
        systems = (rng.random((k, m, b)) < 0.5).astype(float)
        # Re-draw all-zero rows so every query is informative.
        empty = ~systems.any(axis=2)
        while empty.any():
            systems[empty] = (rng.random((int(empty.sum()), b)) < 0.5).astype(float)
            empty = ~systems.any(axis=2)
        data = rng.integers(0, 2, size=(k, b))
        answers = np.einsum("kmb,kb->km", systems, data.astype(float))
        return systems, data, answers

    def test_exact_batch_recovered(self):
        systems, data, answers = self._batch(20, 64, 16, seed=0)
        bits, fractional, residuals = l2_decode_batch(systems, answers, alpha=0.5)
        assert np.array_equal(bits, data)
        assert (residuals <= 0.5).all()
        assert fractional.shape == bits.shape

    def test_batch_matches_single_block_decode(self):
        # Each block's trajectory must be independent of its batch-mates:
        # decoding a block alone gives the same bits as decoding it in a
        # stack of 20.
        systems, _, answers = self._batch(20, 64, 16, seed=1)
        bits, _, _ = l2_decode_batch(systems, answers, alpha=0.5)
        solo_bits, _, _ = l2_decode_batch(systems[3:4], answers[3:4], alpha=0.5)
        assert np.array_equal(bits[3], solo_bits[0])

    def test_validation(self):
        systems, _, answers = self._batch(2, 8, 4, seed=2)
        with pytest.raises(ValueError):
            l2_decode_batch(systems[0], answers)
        with pytest.raises(ValueError):
            l2_decode_batch(systems, answers[:, :-1])


class TestWarmStart:
    def test_x0_shape_validated(self):
        workload, _, answers = _transcript(32, 64, seed=3)
        with pytest.raises(ValueError, match="x0"):
            l2_decode(workload, answers, x0=np.zeros(7))

    def test_x0_is_clipped_into_the_box(self):
        workload, data, answers = _transcript(32, 64, seed=3)
        wild = np.where(data > 0, 5.0, -5.0)  # right signs, out of the box
        result = l2_decode(workload, answers, alpha=0.0, x0=wild)
        assert result.fractional.min() >= 0.0 and result.fractional.max() <= 1.0
        assert result.agreement_with(data) == 1.0

    def test_certifying_warm_start_skips_iteration(self):
        workload, data, answers = _transcript(48, 96, seed=5)
        result = l2_decode(workload, answers, alpha=0.0, x0=data.astype(float))
        assert result.iterations == 0
        assert result.certified
        np.testing.assert_array_equal(result.reconstruction, data)

    def test_warm_start_converges_faster_than_cold(self):
        workload, data, answers = _transcript(96, 192, seed=7)
        cold = l2_decode(workload, answers)
        # Perturb the cold solution slightly: the warm restart must converge
        # in fewer iterations and to the same rounded reconstruction.
        nudged = np.clip(cold.fractional + 0.01, 0.0, 1.0)
        warm = l2_decode(workload, answers, x0=nudged)
        assert warm.iterations < cold.iterations
        np.testing.assert_array_equal(warm.reconstruction, cold.reconstruction)

    def test_default_is_cold_center_start(self):
        workload, _, answers = _transcript(32, 64, seed=9)
        explicit = l2_decode(workload, answers, x0=np.full(32, 0.5))
        default = l2_decode(workload, answers)
        np.testing.assert_array_equal(explicit.fractional, default.fractional)
        assert explicit.iterations == default.iterations
