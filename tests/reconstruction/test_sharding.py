"""Sharded reconstruction: partition discovery, equivalence, determinism."""

import numpy as np
import pytest
import scipy.sparse
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries.workload import Workload
from repro.reconstruction.lp_decode import reconstruct_from_answers
from repro.reconstruction.sharding import (
    BlockPartition,
    ShardedReconstructor,
    ShardedReconstructionResult,
)
from repro.utils.rng import derive_rng


def _block_separable(
    block_sizes, seed, queries_factor=3, permute=False, singletons=False
):
    """A block-diagonal workload over blocks of the given sizes.

    Returns (workload, data, exact_answers, labels); with ``permute`` the
    positions of different blocks are interleaved, so discovery cannot rely
    on contiguity.  ``singletons`` adds the per-position singleton queries,
    which (with exact answers and alpha < 0.5) make the transcript determine
    the data uniquely — any feasible point rounds to the truth.
    """
    rng = derive_rng(seed, "sharding-test", tuple(block_sizes))
    mats, bits, labels = [], [], []
    for index, b in enumerate(block_sizes):
        m = queries_factor * b
        masks = rng.random((m, b)) < 0.5
        empty = ~masks.any(axis=1)
        while empty.any():
            masks[empty] = rng.random((int(empty.sum()), b)) < 0.5
            empty = ~masks.any(axis=1)
        if singletons:
            masks = np.vstack([np.eye(b, dtype=bool), masks])
        mats.append(scipy.sparse.csr_matrix(masks.astype(np.float64)))
        bits.append(rng.integers(0, 2, size=b))
        labels.extend([index] * b)
    matrix = scipy.sparse.block_diag(mats, format="csr")
    data = np.concatenate(bits)
    labels = np.asarray(labels)
    if permute:
        permutation = rng.permutation(matrix.shape[1])
        matrix = matrix[:, permutation].tocsr()
        data = data[permutation]
        labels = labels[permutation]
    workload = Workload.from_csr(matrix, copy=False)
    return workload, data, workload.true_answers(data).astype(float), labels


class TestBlockPartition:
    def test_discovers_diagonal_blocks(self):
        workload, _, _, labels = _block_separable([4, 6, 3], seed=0)
        partition = BlockPartition.from_workload(workload)
        assert partition.num_blocks == 3
        assert partition.block_sizes.tolist() == [4, 6, 3]
        assert len(partition.unconstrained) == 0
        for block, query_rows in zip(partition.blocks, partition.query_blocks):
            # Every assigned query's support sits inside its block.
            sub = workload.matrix(sparse=True)[query_rows]
            assert set(sub.indices).issubset(set(block.tolist()))

    def test_discovery_survives_position_interleaving(self):
        workload, _, _, labels = _block_separable([5, 5, 5], seed=1, permute=True)
        partition = BlockPartition.from_workload(workload)
        assert partition.num_blocks == 3
        for block in partition.blocks:
            # Each discovered block is one original block, whatever the order.
            assert len(set(labels[block].tolist())) == 1

    def test_unconstrained_positions_reported(self):
        # Only 3 of 5 positions are ever queried.
        masks = np.array([[1, 1, 0, 0, 0], [0, 1, 0, 1, 0]], dtype=bool)
        partition = BlockPartition.from_workload(Workload(masks))
        assert partition.num_blocks == 1
        assert partition.unconstrained.tolist() == [2, 4]

    def test_single_connected_workload_is_one_block(self):
        workload = Workload.random(16, 64, rng=2)
        partition = BlockPartition.from_workload(workload)
        assert partition.num_blocks == 1
        assert len(partition.blocks[0]) == 16

    def test_from_labels_matches_discovery(self):
        workload, _, _, labels = _block_separable([4, 4, 4], seed=3)
        discovered = BlockPartition.from_workload(workload)
        labeled = BlockPartition.from_labels(labels, workload)
        assert labeled.num_blocks == discovered.num_blocks
        for a, b in zip(labeled.blocks, discovered.blocks):
            assert np.array_equal(a, b)
        for a, b in zip(labeled.query_blocks, discovered.query_blocks):
            assert np.array_equal(a, b)

    def test_from_labels_rejects_spanning_query(self):
        workload, _, _, _ = _block_separable([4, 4], seed=4)
        wrong = np.zeros(workload.n, dtype=int)
        wrong[2:] = 1  # splits the first true block
        with pytest.raises(ValueError, match="spans multiple blocks"):
            BlockPartition.from_labels(wrong, workload)

    def test_empty_query_rejected(self):
        matrix = scipy.sparse.csr_matrix(
            np.array([[1.0, 1.0, 0.0], [0.0, 0.0, 0.0]])
        )
        with pytest.raises(ValueError, match="empty support"):
            BlockPartition.from_workload(Workload.from_csr(matrix))


class TestShardedReconstructor:
    @given(
        seed=st.integers(0, 100),
        block_sizes=st.lists(st.integers(2, 10), min_size=1, max_size=5),
        permute=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_sharded_equals_whole_population(self, seed, block_sizes, permute):
        """On a block-separable transcript that determines the data uniquely,
        the sharded decode and the whole-population decode recover the same
        bits.  Singleton queries plus exact answers at alpha < 0.5 pin every
        position: any feasible point rounds to the truth, so both decoders
        must land on it (without this pinning the feasibility polytope of a
        tiny block can contain several integer points and the two decoders
        may legitimately pick different ones)."""
        workload, data, answers, _ = _block_separable(
            block_sizes, seed, permute=permute, singletons=True
        )
        sharded = ShardedReconstructor(alpha=0.25).reconstruct(workload, answers)
        whole = reconstruct_from_answers(workload, answers, alpha=0.25)
        assert np.array_equal(sharded.reconstruction, whole.reconstruction)
        assert sharded.agreement_with(data) == 1.0

    def test_bit_identical_across_jobs_and_backends(self):
        workload, data, answers, _ = _block_separable([6] * 12, seed=5)
        noisy = answers + derive_rng(5, "noise").integers(-1, 2, size=len(answers))
        reconstructor = ShardedReconstructor(alpha=1.0)
        reference = reconstructor.reconstruct(workload, noisy, jobs=1, seed=9)
        for jobs, backend in ((2, "auto"), (4, "process"), (3, "thread")):
            other = reconstructor.reconstruct(
                workload, noisy, jobs=jobs, backend=backend, seed=9
            )
            assert np.array_equal(reference.reconstruction, other.reconstruction)
            assert reference.shard_reports == other.shard_reports

    def test_escalation_engages_and_recovers(self):
        # ±1 noise at a tight certificate: some shards must fail the l2
        # certificate and go through the LP, and the join still decodes.
        workload, data, answers, _ = _block_separable([8] * 20, seed=6)
        noisy = answers + derive_rng(6, "noise").integers(-1, 2, size=len(answers))
        result = ShardedReconstructor(alpha=1.0).reconstruct(workload, noisy)
        assert result.agreement_with(data) >= 0.95
        assert result.certified + result.escalated >= result.blocks
        assert result.blocks == 20

    def test_escalation_can_be_disabled(self):
        workload, _, answers, _ = _block_separable([8] * 6, seed=7)
        noisy = answers + derive_rng(7, "noise").integers(-1, 2, size=len(answers))
        result = ShardedReconstructor(alpha=1.0, escalate=False).reconstruct(
            workload, noisy
        )
        assert result.escalated == 0

    def test_unconstrained_positions_decode_to_zero(self):
        masks = np.zeros((4, 6), dtype=bool)
        masks[:, :4] = np.array(
            [[1, 1, 0, 0], [0, 1, 1, 0], [1, 0, 0, 1], [0, 0, 1, 1]], dtype=bool
        )
        workload = Workload(masks)
        data = np.array([1, 0, 1, 1, 0, 1])
        answers = workload.true_answers(data).astype(float)
        result = ShardedReconstructor(alpha=0.5).reconstruct(workload, answers)
        assert result.reconstruction[4] == 0
        assert result.reconstruction[5] == 0

    def test_shard_reports_cover_every_block(self):
        workload, _, answers, _ = _block_separable([3, 5, 7], seed=8)
        result = ShardedReconstructor(alpha=0.5).reconstruct(workload, answers)
        assert isinstance(result, ShardedReconstructionResult)
        assert [r.block for r in result.shard_reports] == [0, 1, 2]
        assert [r.size for r in result.shard_reports] == [3, 5, 7]
        assert [r.queries for r in result.shard_reports] == [9, 15, 21]
        assert result.max_residual <= 0.5

    def test_oversized_shards_take_the_sparse_path(self):
        # dense_limit=1 forces every shard through the single-shard branch;
        # the bits must match the batched pipeline exactly.
        workload, _, answers, _ = _block_separable([6] * 8, seed=9)
        batched = ShardedReconstructor(alpha=0.5).reconstruct(workload, answers)
        sparse = ShardedReconstructor(alpha=0.5, dense_limit=1).reconstruct(
            workload, answers
        )
        assert np.array_equal(batched.reconstruction, sparse.reconstruction)

    def test_validation(self):
        workload, _, answers, _ = _block_separable([4, 4], seed=10)
        reconstructor = ShardedReconstructor(alpha=0.5)
        with pytest.raises(ValueError):
            reconstructor.reconstruct(workload, answers[:-1])
        other = BlockPartition.from_workload(Workload.random(5, 10, rng=0))
        with pytest.raises(ValueError):
            reconstructor.reconstruct(workload, answers, partition=other)
        with pytest.raises(ValueError):
            ShardedReconstructor(alpha=-1.0)
        with pytest.raises(ValueError):
            ShardedReconstructor(batch_size=0)
