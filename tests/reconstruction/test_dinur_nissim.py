"""Tests for the exhaustive reconstruction attack."""

import numpy as np
import pytest

from repro.queries.mechanism import BoundedNoiseAnswerer, ExactAnswerer, LaplaceAnswerer
from repro.reconstruction.dinur_nissim import (
    consistent_candidates,
    exhaustive_reconstruction,
)


class TestExhaustiveReconstruction:
    def test_exact_answers_reconstruct_perfectly(self):
        data = np.random.default_rng(0).integers(0, 2, size=8)
        result = exhaustive_reconstruction(ExactAnswerer(data))
        assert result.agreement_with(data) == 1.0
        assert result.queries_used == 2**8 - 1

    def test_bounded_noise_within_theorem_bound(self):
        rng = np.random.default_rng(1)
        n = 10
        alpha = n / 8.0
        data = rng.integers(0, 2, size=n)
        result = exhaustive_reconstruction(BoundedNoiseAnswerer(data, alpha, rng=rng))
        # Theorem: any consistent candidate is within 4*alpha of the truth.
        assert result.hamming_distance(data) <= 4 * alpha

    def test_candidate_order_does_not_break_bound(self):
        rng = np.random.default_rng(2)
        n = 8
        alpha = 1.0
        data = rng.integers(0, 2, size=n)
        for order in ("ascending", "descending"):
            answerer = BoundedNoiseAnswerer(data, alpha, rng=np.random.default_rng(3))
            result = exhaustive_reconstruction(answerer, candidate_order=order)
            assert result.hamming_distance(data) <= 4 * alpha

    def test_unknown_order_rejected(self):
        data = np.zeros(4, dtype=int)
        with pytest.raises(ValueError):
            exhaustive_reconstruction(ExactAnswerer(data), candidate_order="sideways")

    def test_oversized_n_rejected(self):
        data = np.zeros(20, dtype=int)
        with pytest.raises(ValueError):
            exhaustive_reconstruction(ExactAnswerer(data))

    def test_unbounded_error_needs_explicit_alpha(self):
        data = np.zeros(6, dtype=int)
        answerer = LaplaceAnswerer(data, epsilon_per_query=1.0, rng=0)
        with pytest.raises(ValueError):
            exhaustive_reconstruction(answerer)

    def test_explicit_alpha_against_laplace(self):
        # With a generous alpha the attack still runs against Laplace noise;
        # it just loses accuracy.  Here n is tiny so alpha=n works.
        data = np.array([1, 0, 1, 0, 1, 0])
        answerer = LaplaceAnswerer(data, epsilon_per_query=5.0, rng=1)
        result = exhaustive_reconstruction(answerer, alpha=3.0)
        assert result.reconstruction.shape == data.shape

    def test_agreement_shape_mismatch(self):
        data = np.zeros(4, dtype=int)
        result = exhaustive_reconstruction(ExactAnswerer(data))
        with pytest.raises(ValueError):
            result.agreement_with(np.zeros(5, dtype=int))


class TestConsistentCandidates:
    def test_exact_answers_give_unique_candidate(self):
        data = np.array([1, 0, 1, 1, 0, 0, 1])
        candidates = consistent_candidates(ExactAnswerer(data))
        assert len(candidates) == 1
        assert np.array_equal(candidates[0], data)

    def test_all_candidates_in_hamming_ball(self):
        rng = np.random.default_rng(4)
        n = 8
        alpha = 1.5
        data = rng.integers(0, 2, size=n)
        candidates = consistent_candidates(
            BoundedNoiseAnswerer(data, alpha, rng=rng), alpha=alpha
        )
        assert candidates  # the truth is always consistent
        for candidate in candidates:
            assert int((candidate != data).sum()) <= 4 * alpha

    def test_cap_enforced(self):
        with pytest.raises(ValueError):
            consistent_candidates(ExactAnswerer(np.zeros(18, dtype=int)))
