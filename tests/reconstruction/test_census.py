"""Tests for census tabulation and the reconstruction solver."""

import pytest

from repro.data.censusblocks import CensusConfig, commercial_database, generate_census
from repro.reconstruction.census_solver import reconstruct_census, reidentify
from repro.reconstruction.tabulation import BlockTables, apply_rounding, tabulate_blocks


@pytest.fixture(scope="module")
def census():
    return generate_census(CensusConfig(blocks=8, mean_block_size=10), rng=0)


@pytest.fixture(scope="module")
def tables(census):
    return tabulate_blocks(census)


class TestTabulation:
    def test_one_table_per_block(self, census, tables):
        assert set(tables) == set(census.column("block"))

    def test_totals_match(self, census, tables):
        groups = census.group_by(["block"])
        for block, block_tables in tables.items():
            assert block_tables.total == len(groups[(block,)])

    def test_marginals_are_consistent(self, tables):
        for block_tables in tables.values():
            sex_counts = block_tables.sex_counts()  # raises on inconsistency
            assert sum(sex_counts.values()) == block_tables.total
            assert sum(block_tables.race_counts().values()) == block_tables.total

    def test_missing_attribute_rejected(self, census):
        with pytest.raises(ValueError):
            tabulate_blocks(census.drop(["race"]))

    def test_inconsistent_tables_rejected(self):
        with pytest.raises(ValueError):
            BlockTables(
                block=0,
                total=2,
                sex_by_age={("F", 30): 1},  # sums to 1, not 2
                race_by_ethnicity={("White", "Hispanic"): 2},
                sex_by_race={("F", "White"): 2},
            )

    def test_no_identifiers_published(self, tables):
        for block_tables in tables.values():
            assert not hasattr(block_tables, "person_id")


class TestReconstruction:
    def test_solves_consistent_tables(self, census, tables):
        result = reconstruct_census(tables, truth=census)
        assert result.solved_fraction == 1.0

    def test_population_preserved(self, census, tables):
        result = reconstruct_census(tables, truth=census)
        assert result.population == len(census)

    def test_sex_age_always_exact(self, census, tables):
        # The sex_by_age table pins (sex, age) down exactly; reconstructed
        # multisets of (block, sex, age) must match the truth.
        from collections import Counter

        result = reconstruct_census(tables, truth=census)
        reconstructed = Counter((r[0], r[1], r[2]) for r in result.records)
        truth = Counter(
            (int(row["block"]), row["sex"], row["age"]) for row in census
        )
        assert reconstructed == truth

    def test_exact_match_fraction_substantial(self, census, tables):
        result = reconstruct_census(tables, truth=census)
        assert result.exact_match_fraction > 0.3

    def test_scoring_optional(self, tables):
        result = reconstruct_census(tables, truth=None)
        assert all(block.exact_matches == 0 for block in result.blocks)

    def test_rounded_tables_still_reconstruct(self, census, tables):
        rounded = apply_rounding(tables, base=3)
        result = reconstruct_census(rounded, truth=census)
        assert result.population == len(census)

    def test_rounding_validates_base(self, tables):
        with pytest.raises(ValueError):
            apply_rounding(tables, base=1)


class TestReidentification:
    def test_rates_in_range(self, census, tables):
        result = reconstruct_census(tables, truth=census)
        commercial = commercial_database(census, coverage=0.5, rng=1)
        reid = reidentify(result, commercial, census)
        assert 0.0 <= reid.reidentified_rate <= reid.putative_rate <= 1.0
        assert 0.0 <= reid.precision <= 1.0

    def test_confirmed_subset_of_attempted(self, census, tables):
        result = reconstruct_census(tables, truth=census)
        commercial = commercial_database(census, coverage=1.0, rng=2)
        reid = reidentify(result, commercial, census)
        assert reid.confirmed <= reid.attempted <= len(commercial)

    def test_zero_tolerance_is_stricter(self, census, tables):
        result = reconstruct_census(tables, truth=census)
        commercial = commercial_database(census, coverage=1.0, age_error=0, rng=3)
        loose = reidentify(result, commercial, census, age_tolerance=3)
        strict = reidentify(result, commercial, census, age_tolerance=0)
        assert strict.attempted >= loose.attempted  # tighter window -> fewer collisions
