"""Property-based tests on the census tabulate -> reconstruct roundtrip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.censusblocks import CensusConfig, generate_census
from repro.reconstruction.census_solver import reconstruct_census
from repro.reconstruction.tabulation import tabulate_blocks


@given(seed=st.integers(0, 200), mean_size=st.integers(3, 20))
@settings(max_examples=15, deadline=None)
def test_sex_age_marginal_always_recovered(seed, mean_size):
    """The sex-by-age table is published exactly, so its joint is always
    reconstructed exactly, whatever the blocks look like."""
    from collections import Counter

    census = generate_census(
        CensusConfig(blocks=4, mean_block_size=mean_size), rng=seed
    )
    tables = tabulate_blocks(census)
    result = reconstruct_census(tables, truth=census)
    reconstructed = Counter((r[0], r[1], r[2]) for r in result.records)
    truth = Counter((int(row["block"]), row["sex"], row["age"]) for row in census)
    assert reconstructed == truth


@given(seed=st.integers(0, 200))
@settings(max_examples=15, deadline=None)
def test_population_and_block_structure_preserved(seed):
    census = generate_census(CensusConfig(blocks=5, mean_block_size=8), rng=seed)
    tables = tabulate_blocks(census)
    result = reconstruct_census(tables, truth=census)
    assert result.population == len(census)
    # Per block, the reconstructed head-count equals the published total.
    for block in result.blocks:
        assert block.population == tables[block.block].total


@given(seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_exact_matches_bounded_by_population(seed):
    census = generate_census(CensusConfig(blocks=4, mean_block_size=10), rng=seed)
    tables = tabulate_blocks(census)
    result = reconstruct_census(tables, truth=census)
    assert 0.0 <= result.exact_match_fraction <= 1.0
    for block in result.blocks:
        assert 0 <= block.exact_matches <= block.population


@given(seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_race_marginal_preserved_when_solved(seed):
    """When the MILP solve succeeds, the race x ethnicity marginal of the
    reconstruction equals the published table."""
    from collections import Counter

    census = generate_census(CensusConfig(blocks=4, mean_block_size=8), rng=seed)
    tables = tabulate_blocks(census)
    result = reconstruct_census(tables, truth=census)
    for block in result.blocks:
        if not block.solved:
            continue
        reconstructed = Counter((r[3], r[4]) for r in block.records)
        assert reconstructed == Counter(
            {k: v for k, v in tables[block.block].race_by_ethnicity.items() if v}
        )
