"""Tests for the experiment registry and result type."""

import pytest

import repro.experiments  # noqa: F401  (registers the experiments)
from repro.experiments.runner import (
    EXPERIMENTS,
    ExperimentResult,
    register,
    run_experiment,
)
from repro.utils.tables import Table


class TestRegistry:
    def test_all_twelve_registered(self):
        expected = {f"E{i}" for i in range(1, 13)}
        assert expected <= set(EXPERIMENTS)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register("E1")(lambda seed=0, quick=False: None)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("E99")


class TestExperimentResult:
    def test_render_includes_everything(self):
        table = Table(["x"], title="demo")
        table.add_row([1])
        result = ExperimentResult(
            experiment_id="EX",
            title="t",
            paper_claim="claim text",
            tables=(table,),
            headline={"value": 0.37},
        )
        text = result.render()
        assert "EX" in text
        assert "claim text" in text
        assert "value = 0.37" in text
        assert "demo" in text

    def test_str_is_render(self):
        result = ExperimentResult("EX", "t", "c", tables=())
        assert str(result) == result.render()
