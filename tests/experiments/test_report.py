"""Tests for the markdown report generator."""

import pytest

from repro.experiments.report import render_markdown, write_report
from repro.experiments.runner import ExperimentResult
from repro.utils.tables import Table


def _result(experiment_id="EX"):
    table = Table(["x"], title="demo")
    table.add_row([1])
    return ExperimentResult(
        experiment_id=experiment_id,
        title="a title",
        paper_claim="a claim",
        tables=(table,),
        headline={"metric": 0.5},
    )


class TestRenderMarkdown:
    def test_contains_sections(self):
        text = render_markdown([_result()], {"EX": 1.25})
        assert "## EX — a title" in text
        assert "a claim" in text
        assert "`metric` = 0.5" in text
        assert "demo" in text
        assert "1.2s" in text

    def test_multiple_results_in_order(self):
        text = render_markdown(
            [_result("A"), _result("B")], {"A": 0.1, "B": 0.2}
        )
        assert text.index("## A") < text.index("## B")


class TestWriteReport:
    def test_writes_real_experiment(self, tmp_path):
        path = write_report(tmp_path / "report.md", ["E4"], quick=True)
        text = path.read_text()
        assert "## E4" in text
        assert "unique_fraction_full_triple" in text

    def test_unknown_id_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            write_report(tmp_path / "report.md", ["E99"])
