"""Acceptance tests: every experiment runs (quick scale) and its headline
numbers land in the paper-consistent range.

These are the repository's reproduction gates: a regression that flips who
wins an experiment fails here, not just in the benchmark report.
"""

import pytest

from repro.experiments import run_experiment

pytestmark = pytest.mark.slow


class TestReconstructionExperiments:
    def test_e1_exhaustive(self):
        result = run_experiment("E1", quick=True)
        assert result.headline["min_agreement_at_small_c"] >= 0.95

    def test_e2_lp(self):
        result = run_experiment("E2", quick=True)
        assert result.headline["min_agreement_at_c_half"] >= 0.9

    def test_e3_tradeoff_shape(self):
        result = run_experiment("E3", quick=True)
        # Low noise: reconstruction; linear noise: defense.
        assert result.headline["agreement_below_half_sqrt_n"] >= 0.9
        assert result.headline["agreement_at_linear_noise"] <= 0.8


class TestReidentificationExperiments:
    def test_e4_uniqueness(self):
        result = run_experiment("E4", quick=True)
        assert result.headline["unique_fraction_full_triple"] >= 0.9

    def test_e5_linkage(self):
        result = run_experiment("E5", quick=True)
        assert result.headline["reidentified_rate_raw_release"] >= 0.7

    def test_e6_fingerprint(self):
        result = run_experiment("E6", quick=True)
        assert result.headline["recall_with_8_known_ratings"] >= 0.8

    def test_e7_census(self):
        result = run_experiment("E7", quick=True)
        assert result.headline["exact_reconstruction_fraction"] >= 0.25
        assert result.headline["reidentified_rate"] >= 0.05


class TestPsoExperiments:
    def test_e8_baseline(self):
        result = run_experiment("E8", quick=True)
        assert result.headline["measured_isolation_at_w_1_over_n"] == pytest.approx(
            0.37, abs=0.08
        )

    def test_e9_counts_secure(self):
        result = run_experiment("E9", quick=True)
        assert result.headline["count_mechanisms_worst_success"] <= 0.05
        assert result.headline["identity_mechanism_success"] >= 0.9

    def test_e10_composition_wins(self):
        result = run_experiment("E10", quick=True)
        assert result.headline["min_success_across_sizes"] >= 0.3

    def test_e11_dp_defends(self):
        result = run_experiment("E11", quick=True)
        assert result.headline["attack_success_exact_counts"] >= 0.3
        assert result.headline["attack_success_dp_eps2"] <= 0.1

    def test_e12_kanon_fails(self):
        result = run_experiment("E12", quick=True)
        refinement = result.headline["refinement_success"]
        assert any(success >= 0.2 for success in refinement.values())
        assert result.headline["cohen_singleton_success"] >= 0.8


def test_experiments_are_deterministic():
    a = run_experiment("E4", seed=3, quick=True)
    b = run_experiment("E4", seed=3, quick=True)
    assert a.headline == b.headline


class TestExtensionExperiments:
    def test_e13_intersection(self):
        result = run_experiment("E13", quick=True)
        assert result.headline["max_gain_over_single_release"] > 0.0
        assert result.headline["combined_disclosure_at_k4"] > 0.0

    def test_e14_secret_sharer(self):
        result = run_experiment("E14", quick=True)
        assert result.headline["exposure_bits_control"] <= 2.0
        assert result.headline["exposure_bits_4_insertions"] >= 10.0
        assert result.headline["exposure_bits_dp_eps005"] <= 4.0

    def test_e15_ml_membership(self):
        result = run_experiment("E15", quick=True)
        assert result.headline["auc_overfit"] > result.headline["auc_generalizing"]
        assert result.headline["auc_dp_strongest"] < result.headline["auc_overfit"]

    def test_e16_genomic_membership(self):
        result = run_experiment("E16", quick=True)
        assert result.headline["auc_wide_panel"] >= 0.95
        assert result.headline["auc_noisy_release"] <= 0.8

    def test_e18_service_audit(self):
        result = run_experiment("E18", quick=True)
        # The auditor catches the LP attacker before blatant non-privacy...
        assert result.headline["attacker_flagged"] is True
        assert result.headline["agreement_at_trip"] < 0.9
        # ...while benign sessions stay unflagged and the cache stays
        # consistent (bit-identical replays, high hit rate, no recharge).
        assert result.headline["dashboard_flagged"] is False
        assert result.headline["researcher_flagged"] is False
        assert result.headline["dashboard_cache_hit_rate"] >= 0.9
        assert result.headline["dashboard_replay_drift"] == 0.0

    def test_e19_synthetic_release(self):
        result = run_experiment("E19", quick=True)
        # DP synthesis defeats the linkage attack the raw data loses to...
        assert result.headline["mwem_eps1_reidentified_rate"] <= 0.05
        assert result.headline["baseline_reidentified_rate"] >= 0.5
        assert result.headline["mwem_defeats_linkage"] is True
        # ...the no-noise marginals baseline still leaks...
        assert result.headline["independent_leaks"] is True
        # ...and utility buys budget across the epsilon sweep.
        assert result.headline["error_monotone"] is True
        assert result.headline["epsilon_charged"] == pytest.approx(12.1)
        assert result.figures

    def test_e20_sharded_reconstruction(self):
        result = run_experiment("E20", quick=True)
        # The sharded pipeline reconstructs the multi-block population...
        assert result.headline["agreement"] >= 0.95
        assert result.headline["blocks"] == 320
        # ...mostly on the l2 fast path, with only a minority of shards
        # needing the LP...
        assert result.headline["certified_fraction"] >= 0.5
        # ...and the joined bits are identical across worker counts.
        assert result.headline["jobs_invariant"] is True
        assert result.headline["records_per_second"] > 0

    def test_e21_release_approval(self):
        result = run_experiment("E21", quick=True)
        # The DP release is certified; the leaky ones are denied with the
        # failing requirement named in the verdict.
        assert result.headline["mwem_approved"] is True
        assert result.headline["independent_denied"] is True
        assert "DP-CLAIM" in result.headline["independent_failing"]
        assert result.headline["mondrian_denied"] is True
        assert "K-ANON" in result.headline["mondrian_failing"]
        # The gate refuses uncertified mechanisms with zero footprint...
        assert result.headline["service_denied_reason"] == "no-certificate"
        assert result.headline["denial_footprint_records"] == 0
        assert result.headline["denial_footprint_epsilon"] == 0.0
        # ...serves after approval, and only activates the synthetic
        # fallback once its exact bits are certified.
        assert result.headline["interactive_answers"] == 6
        assert result.headline["fallback_denied_before_approval"] is True
        assert result.headline["fallback_refunded"] is True
        assert result.headline["fallback_activated"] is True
        assert result.headline["fallback_answer_matches"] is True
        assert result.headline["exact_denied"] is True
        assert result.headline["fallback_agreement"] < 0.95


class TestFigures:
    def test_e3_and_e8_carry_figures(self):
        for experiment_id, marker in (("E3", "Fundamental Law"), ("E8", "isolation probability")):
            result = run_experiment(experiment_id, quick=True)
            assert result.figures, f"{experiment_id} should render a figure"
            assert any(marker in figure for figure in result.figures)
            assert marker.split()[0] in result.render()

    def test_e17_graph_deanonymization(self):
        result = run_experiment("E17", quick=True)
        assert result.headline["passive_uniqueness"] >= 0.9
        assert result.headline["recovery_above_threshold"] >= 0.7
        assert (
            result.headline["recovery_below_threshold"]
            < result.headline["recovery_above_threshold"]
        )
