"""Golden headline values for the experiments the refactor touched.

E11 (DP verification + PSO under DP) and E18 (service audit) route every
noise draw and every accountant charge through ``repro.privacy``; their
quick-mode seed-0 headlines below were recorded pre-refactor and must stay
bit-identical (hex-float comparison, no tolerance).  E19 (synthetic-data
release) is pinned the same way so any drift in the synthesis stack is a
deliberate, reviewed change.
"""

import pytest

from repro.experiments import run_experiment

pytestmark = pytest.mark.slow


def test_e11_quick_headline_bit_identical():
    headline = run_experiment("E11", seed=0, quick=True).headline
    assert float(headline["attack_success_exact_counts"]).hex() == "0x1.47ae147ae147bp-1"
    assert float(headline["attack_success_dp_eps2"]).hex() == "0x0.0p+0"


def test_e19_quick_headline_bit_identical():
    headline = run_experiment("E19", seed=0, quick=True).headline
    assert headline["mwem_defeats_linkage"] is True
    assert headline["independent_leaks"] is True
    assert headline["error_monotone"] is True
    assert float(headline["baseline_reidentified_rate"]).hex() == "0x1.7df7df7df7df8p-1"
    assert float(headline["mwem_eps1_reidentified_rate"]).hex() == "0x0.0p+0"
    assert float(headline["independent_reidentified_rate"]).hex() == "0x1.0410410410410p-5"
    assert float(headline["mwem_error_eps01"]).hex() == "0x1.578022acd5780p-4"
    assert float(headline["mwem_error_eps1"]).hex() == "0x1.689f1279b0239p-5"
    assert float(headline["mwem_error_eps10"]).hex() == "0x1.5826937a48b59p-5"
    assert float(headline["epsilon_charged"]).hex() == "0x1.8333333333333p+3"


def test_e18_quick_headline_bit_identical():
    headline = run_experiment("E18", seed=0, quick=True).headline
    assert headline["attacker_flagged"] is True
    assert headline["dashboard_flagged"] is False
    assert headline["researcher_flagged"] is False
    assert headline["queries_served_before_trip"] == 496
    assert headline["audit_passes"] == 31
    assert float(headline["agreement_at_trip"]).hex() == "0x1.9c00000000000p-1"
    assert float(headline["dashboard_cache_hit_rate"]).hex() == "0x1.eb851eb851eb8p-1"
    assert float(headline["dashboard_replay_drift"]).hex() == "0x0.0p+0"
    assert float(headline["attacker_epsilon_spent"]).hex() == "0x1.f000000000000p+6"


def test_e18_headline_unchanged_by_telemetry_and_tracing(monkeypatch):
    # Telemetry is a pure observer: the golden headline must be identical
    # with REPRO_TELEMETRY=1 and with E18's span tracing enabled.
    from repro.experiments.e18_service_audit import run as run_e18

    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    reference = run_experiment("E18", seed=0, quick=True).headline
    traced = run_e18(seed=0, quick=True, trace=True)
    assert traced.headline == reference
    assert any("wall-clock" in table.title for table in traced.tables)
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    assert run_experiment("E18", seed=0, quick=True).headline == reference


def test_e21_headline_unchanged_by_telemetry(monkeypatch):
    # The gated serve/certify path is instrumented too; the E21 pins below
    # must hold with the process-default telemetry switched on.
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    headline = run_experiment("E21", seed=0, quick=True).headline
    assert headline["mwem_certificate"] == "ff7cb54062580a4d13f72542b8b38a7f"
    assert float(headline["census_epsilon_charged"]).hex() == "0x1.0000000000000p+0"
    assert float(headline["interactive_epsilon"]).hex() == "0x1.8000000000000p+1"


def test_e21_quick_headline_bit_identical():
    headline = run_experiment("E21", seed=0, quick=True).headline
    assert headline["mwem_approved"] is True
    assert headline["independent_failing"] == "DP-CLAIM"
    assert headline["mondrian_failing"] == "DP-CLAIM, K-ANON"
    assert headline["mondrian_achieved_k"] == 4
    assert headline["mwem_certificate"] == "ff7cb54062580a4d13f72542b8b38a7f"
    assert float(headline["mwem_max_log_ratio"]).hex() == "0x1.ede65f58845bdp-3"
    assert float(headline["fallback_agreement"]).hex() == "0x1.2000000000000p-1"
    assert float(headline["census_epsilon_charged"]).hex() == "0x1.0000000000000p+0"
    assert float(headline["interactive_epsilon"]).hex() == "0x1.8000000000000p+1"
    assert headline["denials_logged"] == 2
    assert headline["certificates_logged"] == 2
    assert headline["gate_approvals"] == 2
