"""Tests for the HIPAA safe-harbor de-identifier."""

import pytest

from repro.data.population import PopulationConfig, generate_population
from repro.legal.hipaa import (
    SAFE_HARBOR_IDENTIFIERS,
    is_safe_harbor_compliant,
    safe_harbor_redact,
)


@pytest.fixture(scope="module")
def population():
    return generate_population(PopulationConfig(size=300, zip_count=20), rng=0)


CLASSIFICATION = {
    "name": "names",
    "zip": "geographic-subdivisions-smaller-than-state",
    "birth_year": "dates-related-to-individual",
    "birth_doy": "dates-related-to-individual",
}


class TestSafeHarborRedact:
    def test_drops_names(self, population):
        redacted = safe_harbor_redact(population, CLASSIFICATION)
        assert "name" not in redacted.schema

    def test_zip_coarsened_when_designated(self, population):
        redacted = safe_harbor_redact(
            population, CLASSIFICATION, zip_attribute="zip", year_attributes=("birth_year",)
        )
        assert all(str(value).endswith("**") for value in redacted.column("zip"))
        assert all(len(str(value)) == 5 for value in redacted.column("zip"))

    def test_year_kept_when_designated(self, population):
        redacted = safe_harbor_redact(
            population, CLASSIFICATION, zip_attribute="zip", year_attributes=("birth_year",)
        )
        assert "birth_year" in redacted.schema
        assert "birth_doy" not in redacted.schema  # full dates still dropped

    def test_zip_dropped_when_not_designated(self, population):
        redacted = safe_harbor_redact(population, CLASSIFICATION)
        assert "zip" not in redacted.schema

    def test_unclassified_columns_survive(self, population):
        redacted = safe_harbor_redact(population, CLASSIFICATION)
        assert "disease" in redacted.schema
        assert "sex" in redacted.schema

    def test_unknown_category_rejected(self, population):
        with pytest.raises(ValueError):
            safe_harbor_redact(population, {"name": "nicknames"})

    def test_unknown_attribute_rejected(self, population):
        with pytest.raises(KeyError):
            safe_harbor_redact(population, {"height": "names"})

    def test_row_count_preserved(self, population):
        redacted = safe_harbor_redact(
            population, CLASSIFICATION, zip_attribute="zip", year_attributes=("birth_year",)
        )
        assert len(redacted) == len(population)

    def test_droppable_keep_request_is_still_dropped(self, population):
        # Designating an SSN-like column for coarsening must not keep it.
        classification = {"name": "social-security-numbers"}
        redacted = safe_harbor_redact(
            population, classification, year_attributes=("name",)
        )
        assert "name" not in redacted.schema


class TestCompliance:
    def test_redacted_release_is_compliant(self, population):
        redacted = safe_harbor_redact(
            population, CLASSIFICATION, zip_attribute="zip", year_attributes=("birth_year",)
        )
        assert is_safe_harbor_compliant(redacted, CLASSIFICATION)

    def test_raw_release_is_not(self, population):
        assert not is_safe_harbor_compliant(population, CLASSIFICATION)

    def test_uncoarsened_zip_is_not(self, population):
        partially = population.drop(["name", "birth_doy"])
        assert not is_safe_harbor_compliant(partially, CLASSIFICATION)

    def test_unknown_category_rejected(self, population):
        with pytest.raises(ValueError):
            is_safe_harbor_compliant(population, {"name": "nicknames"})


def test_eighteen_categories():
    assert len(SAFE_HARBOR_IDENTIFIERS) == 18
    assert len(set(SAFE_HARBOR_IDENTIFIERS)) == 18
