"""Tests for the paper's legal theorems (with pre-computed evidence)."""

import pytest

from repro.core.theorems import TheoremCheck
from repro.legal.claims import DerivationError
from repro.legal.concepts import (
    ARTICLE_29_WP_OPINIONS,
    GDPR_EXCERPTS,
    SinglingOutAnswer,
)
from repro.legal.theorems import (
    differential_privacy_assessment,
    legal_corollary_2_1,
    legal_theorem_2_1,
    our_assessment,
    working_party_comparison,
)


def _check(theorem: str, passed: bool) -> TheoremCheck:
    return TheoremCheck(theorem=theorem, claim="measured", passed=passed)


class TestLegalTheorem21:
    def test_derivable_from_passed_evidence(self):
        verdict = legal_theorem_2_1(_check("2.10", True), _check("2.10+", True))
        assert "fails to prevent singling out" in verdict.claim.conclusion
        assert len(verdict.premises) == 2
        assert all(premise.established for premise in verdict.premises)

    def test_blocked_by_failed_evidence(self):
        with pytest.raises(DerivationError):
            legal_theorem_2_1(_check("2.10", False), _check("2.10+", True))

    def test_assumptions_are_carried(self):
        verdict = legal_theorem_2_1(_check("2.10", True), _check("2.10+", True))
        identifiers = {assumption.identifier for assumption in verdict.assumptions}
        assert identifiers == {"A1", "A3"}


class TestLegalCorollary21:
    def test_builds_on_theorem(self):
        theorem = legal_theorem_2_1(_check("2.10", True), _check("2.10+", True))
        corollary = legal_corollary_2_1(theorem)
        assert "anonymization" in corollary.claim.conclusion
        identifiers = {assumption.identifier for assumption in corollary.assumptions}
        assert "A2" in identifiers


class TestDpAssessment:
    def test_qualified_verdict(self):
        verdict = differential_privacy_assessment(
            _check("2.9", True), _check("1.3", True)
        )
        assert verdict.qualification  # explicitly not a compliance determination
        assert "further analysis" in verdict.claim.conclusion

    def test_blocked_without_dp_evidence(self):
        with pytest.raises(DerivationError):
            differential_privacy_assessment(_check("2.9", False), _check("1.3", True))


class TestWorkingPartyComparison:
    def test_disagreement_surfaced(self):
        table = working_party_comparison().render()
        assert "k-anonymity" in table
        assert "no" in table and "yes" in table

    def test_our_answers_contradict_wp_on_kanon(self):
        ours = {a.technology: a.singling_out_still_a_risk for a in our_assessment()}
        wp = {a.technology: a.singling_out_still_a_risk for a in ARTICLE_29_WP_OPINIONS}
        assert wp["k-anonymity"] is SinglingOutAnswer.NO
        assert ours["k-anonymity"] is SinglingOutAnswer.YES
        assert ours["differential privacy"] is SinglingOutAnswer.NO


class TestConcepts:
    def test_gdpr_excerpts_present(self):
        assert "Recital 26 (singling out)" in GDPR_EXCERPTS
        assert "singling out" in GDPR_EXCERPTS["Recital 26 (singling out)"].text

    def test_excerpts_cite_sources(self):
        for source in GDPR_EXCERPTS.values():
            assert source.identifier
            assert source.role


class TestUsPrivacyExcerpts:
    def test_statutes_present(self):
        from repro.legal.concepts import US_PRIVACY_EXCERPTS

        assert {"Title 13", "HIPAA safe harbor", "FERPA"} <= set(US_PRIVACY_EXCERPTS)
        for source in US_PRIVACY_EXCERPTS.values():
            assert source.identifier and source.text and source.role

    def test_title_13_matches_paper_quote(self):
        from repro.legal.concepts import US_PRIVACY_EXCERPTS

        assert "can be identified" in US_PRIVACY_EXCERPTS["Title 13"].text


class TestLegalTheoremWithFootnote3:
    def test_optional_footnote3_premise(self):
        good = _check("x", True)
        verdict = legal_theorem_2_1(good, good, ldiversity_evidence=good)
        assert any(p.identifier == "T-fn3" for p in verdict.premises)

    def test_footnote3_failure_blocks(self):
        good = _check("x", True)
        bad = _check("x", False)
        with pytest.raises(DerivationError):
            legal_theorem_2_1(good, good, ldiversity_evidence=bad)
