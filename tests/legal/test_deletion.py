"""Tests for exact unlearning and the deletion-compliance check."""

import pytest

from repro.attacks.extraction import extract_secret
from repro.legal.deletion import deletion_certificate, verify_exact_deletion
from repro.lm.ngram import NgramLanguageModel, synthetic_corpus


class TestUnfit:
    def test_unfit_equals_never_trained(self):
        corpus = synthetic_corpus(30, rng=0)
        model = NgramLanguageModel(order=4).fit(corpus)
        model.unfit(corpus[7])
        reference = NgramLanguageModel(order=4).fit(
            corpus[:7] + corpus[8:]
        )
        assert model.equals_model(reference)
        assert model.documents_seen == 29

    def test_unfit_unknown_document_rejected_without_mutation(self):
        corpus = synthetic_corpus(10, rng=1)
        model = NgramLanguageModel(order=4).fit(corpus)
        before = NgramLanguageModel(order=4).fit(corpus)
        with pytest.raises(ValueError):
            model.unfit("zzz qqq never trained zzz")
        assert model.equals_model(before)  # failed unfit left state intact

    def test_unfit_duplicate_document_removes_one_copy(self):
        model = NgramLanguageModel(order=3).fit(["abc abc", "abc abc"])
        model.unfit("abc abc")
        reference = NgramLanguageModel(order=3).fit(["abc abc"])
        assert model.equals_model(reference)

    def test_dp_model_refuses_unlearning(self):
        model = NgramLanguageModel(order=3).fit(
            ["abc"], dp_epsilon_per_count=1.0, rng=0
        )
        with pytest.raises(RuntimeError):
            model.unfit("abc")

    def test_equals_model_detects_config_differences(self):
        a = NgramLanguageModel(order=3).fit(["abc"])
        b = NgramLanguageModel(order=4).fit(["abc"])
        assert not a.equals_model(b)


class TestDeletionCompliance:
    def test_verification_passes(self):
        corpus = synthetic_corpus(20, rng=2)
        assert verify_exact_deletion(corpus, 3)

    def test_certificate_is_evidence(self):
        corpus = synthetic_corpus(15, rng=3)
        certificate = deletion_certificate(corpus, 0)
        assert certificate.passed
        assert "deletion" in certificate.theorem
        assert certificate.measurements["corpus_documents"] == 15

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            verify_exact_deletion(["a"], 5)

    def test_deletion_kills_extraction(self):
        """The right to be forgotten, attack-side: the auto-complete dies."""
        prefix = "my secret code is "
        secret = "7341"
        corpus = synthetic_corpus(100, rng=4) + [prefix + secret]
        model = NgramLanguageModel(order=6).fit(corpus)
        assert extract_secret(model, prefix, 4) == secret  # memorized
        model.unfit(prefix + secret)
        assert extract_secret(model, prefix, 4) != secret  # forgotten
