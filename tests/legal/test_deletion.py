"""Tests for exact unlearning and the deletion-compliance check."""

import pytest

from repro.attacks.extraction import extract_secret
from repro.legal.deletion import deletion_certificate, verify_exact_deletion
from repro.lm.ngram import NgramLanguageModel, synthetic_corpus


class TestUnfit:
    def test_unfit_equals_never_trained(self):
        corpus = synthetic_corpus(30, rng=0)
        model = NgramLanguageModel(order=4).fit(corpus)
        model.unfit(corpus[7])
        reference = NgramLanguageModel(order=4).fit(
            corpus[:7] + corpus[8:]
        )
        assert model.equals_model(reference)
        assert model.documents_seen == 29

    def test_unfit_unknown_document_rejected_without_mutation(self):
        corpus = synthetic_corpus(10, rng=1)
        model = NgramLanguageModel(order=4).fit(corpus)
        before = NgramLanguageModel(order=4).fit(corpus)
        with pytest.raises(ValueError):
            model.unfit("zzz qqq never trained zzz")
        assert model.equals_model(before)  # failed unfit left state intact

    def test_unfit_duplicate_document_removes_one_copy(self):
        model = NgramLanguageModel(order=3).fit(["abc abc", "abc abc"])
        model.unfit("abc abc")
        reference = NgramLanguageModel(order=3).fit(["abc abc"])
        assert model.equals_model(reference)

    def test_dp_model_refuses_unlearning(self):
        model = NgramLanguageModel(order=3).fit(
            ["abc"], dp_epsilon_per_count=1.0, rng=0
        )
        with pytest.raises(RuntimeError):
            model.unfit("abc")

    def test_equals_model_detects_config_differences(self):
        a = NgramLanguageModel(order=3).fit(["abc"])
        b = NgramLanguageModel(order=4).fit(["abc"])
        assert not a.equals_model(b)


class TestDeletionCompliance:
    def test_verification_passes(self):
        corpus = synthetic_corpus(20, rng=2)
        assert verify_exact_deletion(corpus, 3)

    def test_certificate_is_evidence(self):
        corpus = synthetic_corpus(15, rng=3)
        certificate = deletion_certificate(corpus, 0)
        assert certificate.passed
        assert "deletion" in certificate.theorem
        assert certificate.measurements["corpus_documents"] == 15

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            verify_exact_deletion(["a"], 5)

    def test_deletion_kills_extraction(self):
        """The right to be forgotten, attack-side: the auto-complete dies."""
        prefix = "my secret code is "
        secret = "7341"
        corpus = synthetic_corpus(100, rng=4) + [prefix + secret]
        model = NgramLanguageModel(order=6).fit(corpus)
        assert extract_secret(model, prefix, 4) == secret  # memorized
        model.unfit(prefix + secret)
        assert extract_secret(model, prefix, 4) != secret  # forgotten


class TestDeletionInThePipeline:
    """The erasure check rides the release-approval pipeline end to end."""

    def test_deletion_verifier_feeds_an_approval(self):
        from repro.compliance import (
            CompliancePipeline,
            DeletionVerifier,
            Policy,
        )
        from repro.synth import synthesize_binary
        from repro.utils.rng import derive_rng

        corpus = synthetic_corpus(12, rng=5)
        release = synthesize_binary(
            derive_rng(5, "deletion-release").integers(0, 2, size=24),
            1.0,
            3,
            rng=derive_rng(5, "deletion-noise"),
        )
        pipeline = CompliancePipeline(
            [DeletionVerifier(delete_index=2, order=4)], Policy(), seed=0
        )
        certificate = pipeline.certify(release, data=corpus, subject="served-model")
        assert certificate.approved
        check = certificate.checks[0]
        assert check.identifier == "DELETION"
        assert check.measurements["delete_index"] == 2
        # The pipeline premise records the same fact the standalone
        # certificate packages as legal evidence.
        standalone = deletion_certificate(corpus, 2, order=4)
        assert standalone.passed
        assert (
            standalone.measurements["corpus_documents"]
            == check.measurements["corpus_documents"]
        )

    def test_custom_order_changes_the_probe_model(self):
        corpus = synthetic_corpus(10, rng=6)
        assert verify_exact_deletion(corpus, 1, order=2)
        assert verify_exact_deletion(corpus, 1, order=7)

    def test_certificate_order_recorded(self):
        corpus = synthetic_corpus(8, rng=7)
        certificate = deletion_certificate(corpus, 4, order=3)
        assert certificate.measurements["model_order"] == 3
        assert certificate.measurements["deleted_index"] == 4
