"""Tests for the legal-derivation engine (falsifiability gate)."""

import pytest

from repro.core.theorems import TheoremCheck
from repro.legal.claims import (
    DerivationError,
    LegalClaim,
    ModelingAssumption,
    TechnicalPremise,
    derive,
)

PASSED = TheoremCheck(theorem="2.10", claim="attack works", passed=True)
FAILED = TheoremCheck(theorem="2.10", claim="attack works", passed=False)

ASSUMPTION = ModelingAssumption("A1", "PSO is weaker than GDPR singling out", "Recital 26")
CLAIM = LegalClaim("LT-test", "k-anonymity fails the GDPR", "modus ponens over A1, T1")


class TestTechnicalPremise:
    def test_unverified_by_default(self):
        premise = TechnicalPremise("T1", "attack succeeds")
        assert not premise.established
        assert "UNVERIFIED" in str(premise)

    def test_established_with_passed_evidence(self):
        premise = TechnicalPremise("T1", "attack succeeds", evidence=PASSED)
        assert premise.established
        assert "ESTABLISHED" in str(premise)

    def test_refuted_with_failed_evidence(self):
        premise = TechnicalPremise("T1", "attack succeeds", evidence=FAILED)
        assert not premise.established
        assert "REFUTED" in str(premise)

    def test_attach_chains(self):
        premise = TechnicalPremise("T1", "attack succeeds").attach(PASSED)
        assert premise.established


class TestDerive:
    def test_derivation_with_established_premises(self):
        verdict = derive(
            CLAIM, [ASSUMPTION], [TechnicalPremise("T1", "x", evidence=PASSED)]
        )
        assert verdict.claim is CLAIM
        assert len(verdict.assumptions) == 1

    def test_refuses_unverified_premise(self):
        with pytest.raises(DerivationError):
            derive(CLAIM, [ASSUMPTION], [TechnicalPremise("T1", "x")])

    def test_refuses_refuted_premise(self):
        with pytest.raises(DerivationError):
            derive(CLAIM, [ASSUMPTION], [TechnicalPremise("T1", "x", evidence=FAILED)])

    def test_render_contains_everything(self):
        verdict = derive(
            CLAIM,
            [ASSUMPTION],
            [TechnicalPremise("T1", "x", evidence=PASSED)],
            qualification="necessary only",
        )
        text = verdict.render()
        assert "LT-test" in text
        assert "A1" in text
        assert "T1" in text
        assert "necessary only" in text
        assert "modus ponens" in text


class TestModelingAssumption:
    def test_str_cites_source(self):
        assert "Recital 26" in str(ASSUMPTION)
