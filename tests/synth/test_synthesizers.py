"""The three generators: determinism, specs, and the accountant discipline."""

import pathlib

import numpy as np
import pytest

import repro.synth
from repro.data.censusblocks import CensusConfig, generate_census
from repro.privacy.accounting import BudgetExhausted, PrivacyAccountant
from repro.queries.workload import Workload
from repro.synth import (
    CellDomain,
    HierarchicalSynthesizer,
    IndependentSynthesizer,
    MWEMSynthesizer,
)
from repro.synth.base import Synthesizer, SyntheticRelease
from repro.utils.rng import derive_rng

ATTRIBUTES = ("block", "sex", "age", "race", "ethnicity")


@pytest.fixture(scope="module")
def census():
    config = CensusConfig(blocks=4, mean_block_size=6, max_block_size=10, age_range=(0, 19))
    return generate_census(config, rng=derive_rng(0, "census"))


@pytest.fixture(scope="module")
def domain(census):
    return CellDomain.from_dataset(census, ATTRIBUTES)


@pytest.fixture(scope="module")
def workload(domain):
    return Workload.random(domain.size, 30, density=0.1, rng=derive_rng(0, "wl"))


class TestMWEMSynthesizer:
    def test_deterministic_release(self, census, domain, workload):
        synthesizer = MWEMSynthesizer(workload, 1.0, rounds=5, domain=domain)
        first = synthesizer.synthesize(census, rng=derive_rng(7, "mwem"))
        second = synthesizer.synthesize(census, rng=derive_rng(7, "mwem"))
        assert np.array_equal(first.histogram, second.histogram)
        assert first.data.rows == second.data.rows
        assert first.error_trace == second.error_trace

    def test_release_is_well_formed(self, census, domain, workload):
        synthesizer = MWEMSynthesizer(workload, 1.0, rounds=5, domain=domain)
        release = synthesizer.synthesize(census, rng=derive_rng(1, "mwem"))
        assert len(release) == len(census)
        assert release.histogram.sum() == len(census)
        assert release.domain is domain
        assert release.data.schema.names == ATTRIBUTES
        assert len(release.error_trace) == 5

    def test_spec_carries_the_dp_claim(self, workload):
        spec = MWEMSynthesizer(workload, 2.0, rounds=4).spec
        assert spec.dp is True
        assert spec.spend.epsilon == 2.0
        assert "mwem" in spec.name
        # The kernel is calibrated for one measurement: eps / (2 * rounds),
        # i.e. a Laplace scale of 2 * rounds / eps.
        assert spec.kernel.scale == pytest.approx(4.0)

    def test_invalid_parameters_rejected(self, domain, workload):
        with pytest.raises(ValueError):
            MWEMSynthesizer(workload, 0.0)
        with pytest.raises(ValueError):
            MWEMSynthesizer(workload, 1.0, rounds=0)
        with pytest.raises(ValueError):
            MWEMSynthesizer(Workload.random(domain.size - 1, 5), 1.0, domain=domain)

    def test_charges_accountant_once(self, census, domain, workload):
        accountant = PrivacyAccountant()
        synthesizer = MWEMSynthesizer(workload, 1.0, rounds=5, domain=domain)
        synthesizer.synthesize(census, accountant=accountant, rng=derive_rng(2, "m"))
        assert accountant.total() == (pytest.approx(1.0), 0.0)
        assert len(accountant.spends) == 1

    def test_refused_budget_synthesizes_nothing(self, census, domain, workload):
        accountant = PrivacyAccountant(epsilon_budget=0.5)
        synthesizer = MWEMSynthesizer(workload, 1.0, rounds=5, domain=domain)
        rng = derive_rng(3, "m")
        state_before = rng.bit_generator.state
        with pytest.raises(BudgetExhausted):
            synthesizer.synthesize(census, accountant=accountant, rng=rng)
        # Nothing recorded, and the stream was never advanced.
        assert accountant.total() == (0.0, 0.0)
        assert rng.bit_generator.state == state_before
        # The budget still admits a release that fits.
        MWEMSynthesizer(workload, 0.5, rounds=5, domain=domain).synthesize(
            census, accountant=accountant, rng=rng
        )

    def test_failed_synthesis_rolls_back_the_charge(self, census):
        class ExplodingSynthesizer(MWEMSynthesizer):
            def _synthesize(self, dataset, rng):
                raise RuntimeError("mid-synthesis failure")

        workload = Workload.random(8, 4, rng=derive_rng(0, "w"))
        accountant = PrivacyAccountant(epsilon_budget=1.0)
        with pytest.raises(RuntimeError, match="mid-synthesis"):
            ExplodingSynthesizer(workload, 1.0).synthesize(
                census, accountant=accountant, rng=derive_rng(0, "m")
            )
        assert accountant.total() == (0.0, 0.0)
        assert accountant.spends == ()


class TestHierarchicalSynthesizer:
    def test_deterministic_release(self, census):
        synthesizer = HierarchicalSynthesizer(1.0)
        first = synthesizer.synthesize(census, rng=derive_rng(5, "hier"))
        second = synthesizer.synthesize(census, rng=derive_rng(5, "hier"))
        assert first.data.rows == second.data.rows

    def test_release_covers_census_schema(self, census):
        release = HierarchicalSynthesizer(2.0).synthesize(census, rng=derive_rng(1, "h"))
        assert release.data.schema.names == ATTRIBUTES
        ages = release.data.column("age")
        assert all(0 <= age <= 19 for age in ages)

    def test_spec_splits_budget_across_levels(self):
        spec = HierarchicalSynthesizer(3.0).spec
        assert spec.dp is True
        assert spec.spend.epsilon == 3.0
        # Each level is measured at eps / 2.
        assert spec.kernel.p == pytest.approx(1.0 - np.exp(-1.5))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalSynthesizer(0.0)
        with pytest.raises(ValueError):
            HierarchicalSynthesizer(1.0, age_bin_width=0)

    def test_non_census_schema_rejected(self, workload):
        from repro.data.dataset import Dataset
        from repro.data.domain import CategoricalDomain
        from repro.data.schema import Attribute, Schema

        schema = Schema((Attribute("x", CategoricalDomain((0, 1))),))
        dataset = Dataset(schema, [(0,), (1,)])
        with pytest.raises(ValueError, match="block"):
            HierarchicalSynthesizer(1.0).synthesize(dataset, rng=derive_rng(0, "h"))


class TestIndependentSynthesizer:
    def test_deterministic_and_free(self, census):
        synthesizer = IndependentSynthesizer(
            attributes=("sex", "age", "race", "ethnicity"), group_by=("block",)
        )
        accountant = PrivacyAccountant()
        first = synthesizer.synthesize(census, accountant=accountant, rng=derive_rng(4, "i"))
        second = synthesizer.synthesize(census, rng=derive_rng(4, "i"))
        assert first.data.rows == second.data.rows
        assert len(first) == len(census)
        # dp=False and epsilon 0: the accountant records a zero-cost spend.
        assert first.spec.dp is False
        assert accountant.total() == (0.0, 0.0)

    def test_grouping_preserves_block_sizes(self, census):
        release = IndependentSynthesizer(group_by=("block",)).synthesize(
            census, rng=derive_rng(2, "i")
        )
        truth_blocks = sorted(census.column("block"))
        synth_blocks = sorted(release.data.column("block"))
        assert truth_blocks == synth_blocks

    def test_overlapping_grouping_rejected(self):
        with pytest.raises(ValueError, match="grouped"):
            IndependentSynthesizer(attributes=("block", "age"), group_by=("block",))


class TestNoiseDiscipline:
    def test_no_raw_generator_noise_in_synth(self):
        # Acceptance gate: every noise draw in repro.synth flows through
        # repro.privacy.kernels, never through rng.laplace / rng.normal.
        package_dir = pathlib.Path(repro.synth.__file__).parent
        for source_file in sorted(package_dir.glob("*.py")):
            source = source_file.read_text()
            assert "rng.laplace" not in source, source_file.name
            assert "rng.normal" not in source, source_file.name

    def test_release_reports_length(self, census, domain, workload):
        release = MWEMSynthesizer(workload, 1.0, rounds=3, domain=domain).synthesize(
            census, rng=derive_rng(0, "m")
        )
        assert isinstance(release, SyntheticRelease)
        assert len(release) == len(release.data)

    def test_abstract_base_requires_implementation(self):
        with pytest.raises(TypeError):
            Synthesizer()
