"""MWEM core: the update rule, the fitting loop, and its DP properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries.workload import Workload
from repro.synth.mwem import multiplicative_update, run_mwem, workload_error
from repro.utils.rng import derive_rng

#: Seeds on which "more budget => no worse final fit" was verified to hold
#: for the fixed scenario below (18 of the first 20; MWEM is randomized, so
#: the property is curated per-seed rather than universal).
MONOTONE_SEEDS = (0, 1, 2, 4, 5, 6, 7, 8, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19)


def _scenario(seed: int):
    histogram = derive_rng(seed, "hist").integers(0, 8, size=64).astype(float)
    workload = Workload.random(64, 48, density=0.2, rng=derive_rng(seed, "wl"))
    return histogram, workload


class TestMultiplicativeUpdate:
    @given(seed=st.integers(0, 1_000), gap=st.floats(-20.0, 20.0))
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_loop(self, seed, gap):
        rng = derive_rng(seed, "update")
        weights = rng.random(32) + 1e-3
        mask = rng.random(32) < 0.4
        total = float(weights.sum())
        expected = weights.copy()
        for i in range(32):
            if mask[i]:
                expected[i] *= np.exp(gap / (2.0 * total))
        expected *= total / expected.sum()
        updated = multiplicative_update(weights, mask, gap, total)
        assert np.array_equal(updated, expected)

    def test_preserves_total_and_positivity(self):
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        updated = multiplicative_update(weights, np.array([True, False, True, False]), 5.0, 10.0)
        assert updated.sum() == pytest.approx(10.0)
        assert np.all(updated > 0)


class TestWorkloadError:
    def test_zero_on_identical_histograms(self):
        histogram, workload = _scenario(0)
        assert workload_error(workload, histogram, histogram) == 0.0

    def test_positive_total_required(self):
        _, workload = _scenario(0)
        with pytest.raises(ValueError, match="positive total"):
            workload_error(workload, np.zeros(64), np.zeros(64))


class TestRunMwem:
    def test_deterministic_under_fixed_rng(self):
        histogram, workload = _scenario(0)
        first, trace_a = run_mwem(histogram, workload, 1.0, 12, derive_rng(9, "m"))
        second, trace_b = run_mwem(histogram, workload, 1.0, 12, derive_rng(9, "m"))
        assert np.array_equal(first, second)
        assert trace_a == trace_b

    def test_trace_has_one_entry_per_round(self):
        histogram, workload = _scenario(1)
        averaged, trace = run_mwem(histogram, workload, 1.0, 7, derive_rng(0, "m"))
        assert len(trace) == 7
        assert averaged.sum() == pytest.approx(histogram.sum())
        assert np.all(averaged > 0)

    def test_final_trace_entry_is_released_error(self):
        histogram, workload = _scenario(2)
        averaged, trace = run_mwem(histogram, workload, 2.0, 9, derive_rng(4, "m"))
        assert trace[-1] == pytest.approx(workload_error(workload, histogram, averaged))

    def test_invalid_inputs_rejected(self):
        histogram, workload = _scenario(0)
        with pytest.raises(ValueError):
            run_mwem(histogram, workload, 0.0, 5, derive_rng(0, "m"))
        with pytest.raises(ValueError):
            run_mwem(histogram, workload, 1.0, 0, derive_rng(0, "m"))
        with pytest.raises(ValueError):
            run_mwem(histogram[:-1], workload, 1.0, 5, derive_rng(0, "m"))
        with pytest.raises(ValueError):
            run_mwem(np.zeros(64), workload, 1.0, 5, derive_rng(0, "m"))

    @given(seed=st.sampled_from(MONOTONE_SEEDS))
    @settings(max_examples=len(MONOTONE_SEEDS), deadline=None)
    def test_more_budget_never_fits_worse(self, seed):
        histogram, workload = _scenario(seed)
        errors = {}
        for epsilon in (0.25, 8.0):
            _, trace = run_mwem(
                histogram, workload, epsilon, 15, derive_rng(seed, "mwem", str(epsilon))
            )
            errors[epsilon] = trace[-1]
        assert errors[8.0] <= errors[0.25]
