"""Attack-side scoring of synthetic releases (the E19 machinery)."""

import pytest

from repro.data.censusblocks import CensusConfig, commercial_database, generate_census
from repro.queries.workload import Workload
from repro.synth import (
    CellDomain,
    IndependentSynthesizer,
    MWEMSynthesizer,
    baseline_linkage,
    evaluate_release,
)
from repro.synth.evaluation import census_records
from repro.utils.rng import derive_rng

ATTRIBUTES = ("block", "sex", "age", "race", "ethnicity")


@pytest.fixture(scope="module")
def town():
    config = CensusConfig(blocks=4, mean_block_size=6, max_block_size=10, age_range=(0, 19))
    census = generate_census(config, rng=derive_rng(0, "census"))
    commercial = commercial_database(
        census, coverage=0.9, age_error=1, rng=derive_rng(0, "comm")
    )
    return census, commercial


class TestCensusRecords:
    def test_row_order_and_types(self, town):
        census, _ = town
        records = census_records(census)
        assert len(records) == len(census)
        block, sex, age, race, ethnicity = records[0]
        assert isinstance(block, int)
        assert isinstance(age, int)

    def test_missing_attribute_rejected(self, town):
        census, _ = town
        projected = census.project(("block", "sex"))
        with pytest.raises(ValueError, match="missing census attribute"):
            census_records(projected)


class TestBaselineLinkage:
    def test_raw_release_links_most_of_the_town(self, town):
        census, commercial = town
        result = baseline_linkage(census, commercial)
        assert result.population == len(census)
        assert result.confirmed > 0
        assert result.confirmed <= result.attempted <= len(census)


class TestEvaluateRelease:
    def test_full_evaluation_of_a_dp_release(self, town):
        census, commercial = town
        domain = CellDomain.from_dataset(census, ATTRIBUTES)
        workload = Workload.random(domain.size, 25, density=0.1, rng=derive_rng(0, "wl"))
        release = MWEMSynthesizer(workload, 1.0, rounds=5, domain=domain).synthesize(
            census, rng=derive_rng(0, "mwem")
        )
        evaluation = evaluate_release(
            release, census, commercial, workload=workload, domain=domain
        )
        assert evaluation.records == len(census)
        assert evaluation.epsilon == 1.0
        assert evaluation.linkage.population == len(census)
        assert evaluation.workload_error is not None
        assert evaluation.workload_error >= 0.0
        assert evaluation.reconstruction is not None
        assert evaluation.reconstruction_linkage is not None
        assert set(evaluation.uniqueness) == {
            ("block", "sex", "age"),
            ("block", "sex", "age", "race", "ethnicity"),
        }

    def test_reconstruction_can_be_skipped(self, town):
        census, commercial = town
        release = IndependentSynthesizer(group_by=("block",)).synthesize(
            census, rng=derive_rng(1, "ind")
        )
        evaluation = evaluate_release(release, census, commercial, reconstruct=False)
        assert evaluation.reconstruction is None
        assert evaluation.reconstruction_linkage is None
        assert evaluation.workload_error is None

    def test_workload_without_domain_rejected(self, town):
        census, commercial = town
        release = IndependentSynthesizer(group_by=("block",)).synthesize(
            census, rng=derive_rng(2, "ind")
        )
        workload = Workload.random(10, 5, rng=derive_rng(0, "wl"))
        assert release.domain is None
        with pytest.raises(ValueError, match="domain"):
            evaluate_release(
                release, census, commercial, workload=workload, reconstruct=False
            )
