"""Tests for the repro.synth synthetic-data subsystem."""
