"""Cell-domain encoding: the histogram view every synthesizer shares."""

import numpy as np
import pytest

from repro.data.censusblocks import CensusConfig, generate_census
from repro.synth.domain import MAX_CELLS, CellDomain, integerize
from repro.utils.rng import derive_rng

ATTRIBUTES = ("block", "sex", "age", "race", "ethnicity")


def _census():
    config = CensusConfig(blocks=4, mean_block_size=6, max_block_size=10, age_range=(0, 19))
    return generate_census(config, rng=derive_rng(0, "census"))


class TestCellDomain:
    def test_from_dataset_excludes_only_requested_attributes(self):
        census = _census()
        domain = CellDomain.from_dataset(census, ATTRIBUTES)
        assert domain.names == ATTRIBUTES
        assert "person_id" not in domain.names
        assert domain.size == 4 * 2 * 20 * 4 * 2

    def test_index_cell_round_trip(self):
        domain = CellDomain.from_dataset(_census(), ATTRIBUTES)
        for index in (0, 1, 17, domain.size // 2, domain.size - 1):
            assert domain.index_of(domain.cell(index)) == index

    def test_encode_decode_round_trip(self):
        census = _census()
        domain = CellDomain.from_dataset(census, ATTRIBUTES)
        histogram = domain.encode(census)
        assert histogram.sum() == len(census)
        synthetic = domain.to_dataset(histogram)
        assert np.array_equal(domain.encode(synthetic), histogram)

    def test_unknown_value_rejected(self):
        domain = CellDomain(("bit",), ((0, 1),))
        with pytest.raises(ValueError, match="not a level"):
            domain.index_of((2,))

    def test_most_significant_attribute_first(self):
        domain = CellDomain(("hi", "lo"), ((0, 1), ("a", "b", "c")))
        assert domain.index_of((1, "a")) == 3
        assert domain.cell(5) == (1, "c")

    def test_cell_cap_enforced(self):
        with pytest.raises(ValueError, match="cells"):
            CellDomain(("a", "b"), (tuple(range(2000)), tuple(range(1001))))
        assert 2000 * 1001 > MAX_CELLS

    def test_duplicate_levels_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CellDomain(("a",), ((1, 1),))

    def test_to_dataset_needs_schema(self):
        domain = CellDomain(("bit",), ((0, 1),))
        with pytest.raises(ValueError, match="schema"):
            domain.to_dataset(np.array([1, 1]))


class TestIntegerize:
    def test_preserves_total(self):
        rng = derive_rng(3, "weights")
        weights = rng.random(40)
        for total in (0, 1, 7, 100):
            rounded = integerize(weights, total)
            assert rounded.sum() == total
            assert np.all(rounded >= 0)

    def test_exact_integers_pass_through(self):
        weights = np.array([2.0, 0.0, 5.0, 3.0])
        assert np.array_equal(integerize(weights, 10), [2, 0, 5, 3])

    def test_largest_remainder_gets_leftover(self):
        # 10 * [0.25, 0.45, 0.30] = [2.5, 4.5, 3.0]: floors [2, 4, 3] leave
        # one unit for the tied .5 remainders; the lower index wins.
        rounded = integerize(np.array([0.25, 0.45, 0.30]), 10)
        assert np.array_equal(rounded, [3, 4, 3])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            integerize(np.array([-0.1, 1.0]), 5)
        with pytest.raises(ValueError):
            integerize(np.array([1.0]), -1)
        with pytest.raises(ValueError):
            integerize(np.zeros(3), 5)
