"""Tests for the DP census-table release."""

import pytest

from repro.data.censusblocks import CensusConfig, generate_census
from repro.dp.tabular import dp_block_tables, dp_tabulation
from repro.reconstruction.census_solver import reconstruct_census
from repro.reconstruction.tabulation import tabulate_blocks


@pytest.fixture(scope="module")
def tables():
    census = generate_census(CensusConfig(blocks=6, mean_block_size=12), rng=0)
    return census, tabulate_blocks(census)


class TestDpBlockTables:
    def test_output_is_consistent(self, tables):
        _census, published = tables
        for block_tables in published.values():
            noisy = dp_block_tables(block_tables, epsilon=1.0, rng=1)
            # BlockTables validates internal consistency on construction; a
            # successful build plus non-negative totals is the contract.
            assert noisy.total >= 0
            assert all(count >= 0 for count in noisy.sex_by_age.values())

    def test_same_cells_published(self, tables):
        _census, published = tables
        original = next(iter(published.values()))
        noisy = dp_block_tables(original, epsilon=1.0, rng=2)
        assert set(noisy.sex_by_age) == set(original.sex_by_age)
        assert set(noisy.race_by_ethnicity) == set(original.race_by_ethnicity)

    def test_high_epsilon_barely_changes_counts(self, tables):
        _census, published = tables
        original = next(iter(published.values()))
        noisy = dp_block_tables(original, epsilon=10_000.0, rng=3)
        assert noisy.sex_by_age == original.sex_by_age

    def test_low_epsilon_perturbs(self, tables):
        _census, published = tables
        original = next(iter(published.values()))
        noisy = dp_block_tables(original, epsilon=0.5, rng=4)
        assert noisy.sex_by_age != original.sex_by_age

    def test_invalid_epsilon(self, tables):
        _census, published = tables
        with pytest.raises(ValueError):
            dp_block_tables(next(iter(published.values())), epsilon=0.0)


class TestDpTabulation:
    def test_all_blocks_released(self, tables):
        _census, published = tables
        noisy = dp_tabulation(published, epsilon_per_block=1.0, rng=5)
        assert set(noisy) == set(published)

    def test_deterministic_under_seed(self, tables):
        _census, published = tables
        a = dp_tabulation(published, 1.0, rng=6)
        b = dp_tabulation(published, 1.0, rng=6)
        assert all(a[k].sex_by_age == b[k].sex_by_age for k in a)

    def test_reconstruction_degrades_with_noise(self, tables):
        census, published = tables
        exact = reconstruct_census(published, truth=census).exact_match_fraction
        noisy_tables = dp_tabulation(published, epsilon_per_block=1.0, rng=7)
        noisy = reconstruct_census(noisy_tables, truth=census).exact_match_fraction
        assert noisy < exact
