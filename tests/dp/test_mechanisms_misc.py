"""Tests for Gaussian, randomized-response, and exponential mechanisms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.exponential import ExponentialMechanism
from repro.dp.gaussian import GaussianMechanism
from repro.dp.randomized_response import RandomizedResponse


class TestGaussianMechanism:
    def test_sigma_formula(self):
        mechanism = GaussianMechanism(1.0, 1e-5, sensitivity=1.0)
        expected = np.sqrt(2 * np.log(1.25 / 1e-5))
        assert mechanism.sigma == pytest.approx(expected)

    def test_smaller_delta_more_noise(self):
        loose = GaussianMechanism(1.0, 1e-3)
        tight = GaussianMechanism(1.0, 1e-9)
        assert tight.sigma > loose.sigma

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GaussianMechanism(2.0, 1e-5)  # classical calibration needs eps <= 1
        with pytest.raises(ValueError):
            GaussianMechanism(0.5, 0.0)
        with pytest.raises(ValueError):
            GaussianMechanism(0.5, 1e-5, sensitivity=0.0)

    def test_release_centered(self):
        mechanism = GaussianMechanism(1.0, 1e-5)
        releases = mechanism.release_many(42.0, 20_000, rng=0)
        assert np.mean(releases) == pytest.approx(42.0, abs=0.2)
        assert np.std(releases) == pytest.approx(mechanism.sigma, rel=0.05)

    def test_release_many_validation(self):
        with pytest.raises(ValueError):
            GaussianMechanism(1.0, 1e-5).release_many(0.0, 0)


class TestRandomizedResponse:
    def test_truth_probability(self):
        rr = RandomizedResponse(np.log(3))
        assert rr.truth_probability == pytest.approx(0.75)

    def test_release_is_binary(self):
        rr = RandomizedResponse(1.0)
        out = rr.release(np.array([0, 1, 1, 0]), rng=0)
        assert set(np.unique(out)) <= {0, 1}

    def test_flip_rate_matches(self):
        rr = RandomizedResponse(1.0)
        bits = np.ones(20_000, dtype=int)
        out = rr.release(bits, rng=1)
        kept = out.mean()
        assert kept == pytest.approx(rr.truth_probability, abs=0.01)

    def test_estimator_unbiased(self):
        rr = RandomizedResponse(1.0)
        bits = np.array([1] * 300 + [0] * 700)
        rng = np.random.default_rng(2)
        estimates = [rr.estimate_count(rr.release(bits, rng)) for _ in range(400)]
        assert np.mean(estimates) == pytest.approx(300, abs=10)

    def test_estimator_standard_error_decreases_with_epsilon(self):
        assert RandomizedResponse(2.0).estimator_standard_error(1000) < RandomizedResponse(
            0.5
        ).estimator_standard_error(1000)

    def test_non_binary_rejected(self):
        rr = RandomizedResponse(1.0)
        with pytest.raises(ValueError):
            rr.release(np.array([0, 2]))
        with pytest.raises(ValueError):
            rr.estimate_count(np.array([0, 2]))

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            RandomizedResponse(0.0)

    def test_empty_responses_rejected(self):
        with pytest.raises(ValueError):
            RandomizedResponse(1.0).estimate_count(np.array([], dtype=int))


class TestExponentialMechanism:
    def test_probabilities_favor_high_scores(self):
        mechanism = ExponentialMechanism(2.0)
        probabilities = mechanism.selection_probabilities([0.0, 5.0, 1.0])
        assert probabilities[1] == max(probabilities)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_zero_epsilon_limit_rejected(self):
        with pytest.raises(ValueError):
            ExponentialMechanism(0.0)

    def test_select_concentrates(self):
        mechanism = ExponentialMechanism(8.0)
        rng = np.random.default_rng(0)
        picks = [
            mechanism.select(["a", "b"], lambda c: {"a": 0.0, "b": 10.0}[c], rng)
            for _ in range(200)
        ]
        assert picks.count("b") > 195

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            ExponentialMechanism(1.0).select([], lambda c: 0.0)

    def test_numerical_stability_with_huge_scores(self):
        mechanism = ExponentialMechanism(1.0)
        probabilities = mechanism.selection_probabilities([1e6, 1e6 + 1])
        assert np.isfinite(probabilities).all()

    @given(scores=st.lists(st.floats(-100, 100), min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_probabilities_form_distribution(self, scores):
        probabilities = ExponentialMechanism(1.0).selection_probabilities(scores)
        assert probabilities.sum() == pytest.approx(1.0)
        assert (probabilities >= 0).all()
