"""Tests for the Laplace and geometric mechanisms."""

import numpy as np
import pytest

from repro.data.distributions import bernoulli_distribution
from repro.dp.laplace import GeometricMechanism, LaplaceMechanism, private_count


class TestLaplaceMechanism:
    def test_scale(self):
        assert LaplaceMechanism(0.5, sensitivity=2.0).scale == pytest.approx(4.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(0.0)
        with pytest.raises(ValueError):
            LaplaceMechanism(1.0, sensitivity=0.0)

    def test_release_is_noisy_but_centered(self):
        mechanism = LaplaceMechanism(1.0)
        releases = mechanism.release_many(100.0, 5_000, rng=0)
        assert np.mean(releases) == pytest.approx(100.0, abs=0.1)
        assert np.std(releases) == pytest.approx(np.sqrt(2.0), abs=0.1)

    def test_release_deterministic_under_seed(self):
        mechanism = LaplaceMechanism(1.0)
        assert mechanism.release(5.0, rng=3) == mechanism.release(5.0, rng=3)

    def test_expected_absolute_error(self):
        mechanism = LaplaceMechanism(2.0)
        releases = mechanism.release_many(0.0, 20_000, rng=1)
        assert np.mean(np.abs(releases)) == pytest.approx(
            mechanism.expected_absolute_error(), rel=0.05
        )

    def test_error_quantile(self):
        mechanism = LaplaceMechanism(1.0)
        bound = mechanism.error_quantile(0.95)
        releases = mechanism.release_many(0.0, 20_000, rng=2)
        within = np.mean(np.abs(releases) <= bound)
        assert within == pytest.approx(0.95, abs=0.01)

    def test_error_quantile_validation(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(1.0).error_quantile(1.0)

    def test_release_many_validation(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(1.0).release_many(0.0, 0)


class TestGeometricMechanism:
    def test_integer_output(self):
        mechanism = GeometricMechanism(1.0)
        assert isinstance(mechanism.release(10, rng=0), int)

    def test_centered(self):
        mechanism = GeometricMechanism(1.0)
        rng = np.random.default_rng(1)
        releases = [mechanism.release(50, rng) for _ in range(5_000)]
        assert np.mean(releases) == pytest.approx(50.0, abs=0.2)

    def test_smaller_epsilon_more_noise(self):
        rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
        tight = [GeometricMechanism(2.0).release(0, rng_a) for _ in range(2_000)]
        loose = [GeometricMechanism(0.2).release(0, rng_b) for _ in range(2_000)]
        assert np.std(loose) > np.std(tight)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GeometricMechanism(0.0)
        with pytest.raises(ValueError):
            GeometricMechanism(1.0, sensitivity=0)


class TestPrivateCount:
    def test_close_to_true_count(self):
        data = bernoulli_distribution(0.5).sample(500, rng=0)
        truth = data.count(lambda r: r["bit"] == 1)
        rng = np.random.default_rng(1)
        estimates = [
            private_count(data, lambda r: r["bit"] == 1, epsilon=1.0, rng=rng)
            for _ in range(300)
        ]
        assert np.mean(estimates) == pytest.approx(truth, abs=0.5)
