"""Tests for the empirical DP verifier."""

import numpy as np
import pytest

from repro.dp.laplace import LaplaceMechanism
from repro.dp.verify import verify_dp


def _count_mechanism(epsilon):
    mechanism = LaplaceMechanism(epsilon)
    return lambda data, rng: mechanism.release(float(np.sum(data)), rng)


X = np.array([1, 1, 0, 1])
X_PRIME = np.array([1, 1, 0, 0])


class TestVerifyDp:
    def test_laplace_consistent(self):
        verdict = verify_dp(_count_mechanism(1.0), X, X_PRIME, epsilon=1.0, trials=3_000, rng=0)
        assert verdict.consistent

    def test_exact_count_violates(self):
        verdict = verify_dp(
            lambda data, rng: float(np.sum(data)), X, X_PRIME, epsilon=1.0, trials=2_000, rng=1
        )
        assert not verdict.consistent

    def test_underclaimed_epsilon_flagged(self):
        # A Laplace mechanism calibrated for eps=4 is NOT 0.05-DP; the
        # verifier should catch the gap with enough samples.
        verdict = verify_dp(
            _count_mechanism(4.0), X, X_PRIME, epsilon=0.05, trials=8_000, rng=2
        )
        assert not verdict.consistent

    def test_custom_events(self):
        events = [("big output", lambda value: value > 2.5)]
        verdict = verify_dp(
            _count_mechanism(1.0), X, X_PRIME, epsilon=1.0,
            events=events, trials=2_000, rng=3,
        )
        assert len(verdict.checks) == 1
        assert verdict.checks[0].label == "big output"

    def test_non_numeric_outputs_need_events(self):
        with pytest.raises(TypeError):
            verify_dp(
                lambda data, rng: "category", X, X_PRIME, epsilon=1.0, trials=50, rng=4
            )

    def test_non_numeric_with_events_works(self):
        verdict = verify_dp(
            lambda data, rng: "a" if rng.random() < 0.5 else "b",
            X,
            X_PRIME,
            epsilon=1.0,
            events=[("is a", lambda value: value == "a")],
            trials=500,
            rng=5,
        )
        assert verdict.consistent

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            verify_dp(_count_mechanism(1.0), X, X_PRIME, epsilon=0.0)
        with pytest.raises(ValueError):
            verify_dp(_count_mechanism(1.0), X, X_PRIME, epsilon=1.0, trials=0)

    def test_max_observed_log_ratio_finite(self):
        verdict = verify_dp(_count_mechanism(1.0), X, X_PRIME, epsilon=1.0, trials=1_000, rng=6)
        assert np.isfinite(verdict.max_observed_log_ratio)

    def test_str_mentions_verdict(self):
        verdict = verify_dp(_count_mechanism(1.0), X, X_PRIME, epsilon=1.0, trials=500, rng=7)
        assert "eps=1.0" in str(verdict)
