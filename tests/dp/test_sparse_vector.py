"""Tests for AboveThreshold (sparse vector technique)."""

import numpy as np
import pytest

from repro.core.predicate import attribute_predicate
from repro.data.distributions import uniform_bits_distribution
from repro.dp.sparse_vector import AboveThreshold, sparse_count_queries


class TestAboveThreshold:
    def test_finds_obvious_positive(self):
        mechanism = AboveThreshold(epsilon=4.0, threshold=50.0)
        answers = [0.0, 1.0, 2.0, 100.0, 0.0]
        outcome = mechanism.run(answers, rng=0)
        assert outcome.halted
        assert outcome.index == 3
        assert outcome.queries_processed == 4

    def test_reports_none_when_everything_low(self):
        mechanism = AboveThreshold(epsilon=4.0, threshold=100.0)
        outcome = mechanism.run([0.0] * 20, rng=1)
        assert not outcome.halted
        assert outcome.queries_processed == 20

    def test_noise_can_flip_near_threshold(self):
        mechanism = AboveThreshold(epsilon=0.5, threshold=10.0)
        outcomes = {mechanism.run([9.9], rng=seed).halted for seed in range(40)}
        assert outcomes == {True, False}  # a borderline query is noisy

    def test_max_queries_cap(self):
        mechanism = AboveThreshold(epsilon=4.0, threshold=1e9)

        def infinite():
            while True:
                yield 0.0

        outcome = mechanism.run(infinite(), rng=2, max_queries=17)
        assert outcome.queries_processed == 17
        assert not outcome.halted

    def test_halting_accuracy_at_high_epsilon(self):
        mechanism = AboveThreshold(epsilon=20.0, threshold=50.0)
        answers = [10.0] * 9 + [90.0]
        hits = sum(
            mechanism.run(answers, rng=seed).index == 9 for seed in range(50)
        )
        assert hits >= 45

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AboveThreshold(epsilon=0.0, threshold=1.0)
        with pytest.raises(ValueError):
            AboveThreshold(epsilon=1.0, threshold=1.0, sensitivity=0.0)


class TestSparseCountQueries:
    def test_over_dataset(self):
        distribution = uniform_bits_distribution(8)
        data = distribution.sample(200, rng=0)
        predicates = [
            attribute_predicate("b0", 1) & attribute_predicate("b1", 1)
            & attribute_predicate("b2", 1),  # ~25 matches
            attribute_predicate("b0", {0, 1}),  # all 200 match
        ]
        outcome = sparse_count_queries(
            data, predicates, epsilon=4.0, threshold=150.0, rng=1
        )
        assert outcome.halted
        assert outcome.index == 1
