"""Tests for the privacy accountant and composition bounds."""

import importlib.util

import pytest

from repro.privacy.accounting import (
    PrivacyAccountant,
    PrivacySpend,
    advanced_composition,
    basic_composition,
)


class TestShimRemoved:
    def test_deprecated_module_is_gone(self):
        # The PR-4 re-export shim finished its deprecation window; the
        # canonical home is repro.privacy.accounting and the old path
        # must no longer resolve.
        assert importlib.util.find_spec("repro.dp.composition") is None


class TestBasicComposition:
    def test_sums(self):
        spends = [PrivacySpend(0.5), PrivacySpend(0.3, delta=1e-6)]
        epsilon, delta = basic_composition(spends)
        assert epsilon == pytest.approx(0.8)
        assert delta == pytest.approx(1e-6)

    def test_empty(self):
        assert basic_composition([]) == (0.0, 0.0)

    def test_invalid_spend(self):
        with pytest.raises(ValueError):
            PrivacySpend(-0.1)
        with pytest.raises(ValueError):
            PrivacySpend(0.1, delta=1.0)


class TestAdvancedComposition:
    def test_beats_basic_for_many_queries(self):
        epsilon, _delta = advanced_composition(0.1, k=1_000, delta_prime=1e-6)
        assert epsilon < 0.1 * 1_000  # sqrt(k) scaling wins

    def test_formula_components(self):
        import numpy as np

        epsilon, delta = advanced_composition(0.5, k=10, delta_prime=1e-5)
        expected = np.sqrt(2 * 10 * np.log(1e5)) * 0.5 + 10 * 0.5 * (np.e**0.5 - 1)
        assert epsilon == pytest.approx(expected)
        assert delta == 1e-5

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            advanced_composition(0.0, 10, 1e-6)
        with pytest.raises(ValueError):
            advanced_composition(0.1, 0, 1e-6)
        with pytest.raises(ValueError):
            advanced_composition(0.1, 10, 0.0)


class TestPrivacyAccountant:
    def test_tracks_total(self):
        accountant = PrivacyAccountant()
        accountant.spend(0.2, label="q1")
        accountant.spend(0.3, label="q2")
        assert accountant.total() == (pytest.approx(0.5), 0.0)
        assert len(accountant.spends) == 2

    def test_budget_enforced(self):
        accountant = PrivacyAccountant(epsilon_budget=0.5)
        accountant.spend(0.4)
        with pytest.raises(RuntimeError):
            accountant.spend(0.2)
        # The failed spend must not have been recorded.
        assert accountant.total()[0] == pytest.approx(0.4)

    def test_delta_budget_enforced(self):
        accountant = PrivacyAccountant(delta_budget=1e-6)
        with pytest.raises(RuntimeError):
            accountant.spend(0.1, delta=1e-5)

    def test_remaining(self):
        accountant = PrivacyAccountant(epsilon_budget=1.0)
        accountant.spend(0.25)
        assert accountant.remaining_epsilon() == pytest.approx(0.75)
        assert PrivacyAccountant().remaining_epsilon() is None

    def test_advanced_total_homogeneous(self):
        accountant = PrivacyAccountant()
        for _ in range(100):
            accountant.spend(0.05)
        advanced_epsilon, _ = accountant.advanced_total(delta_prime=1e-6)
        basic_epsilon, _ = accountant.total()
        assert advanced_epsilon < basic_epsilon

    def test_advanced_total_rejects_heterogeneous(self):
        accountant = PrivacyAccountant()
        accountant.spend(0.1)
        accountant.spend(0.2)
        with pytest.raises(ValueError):
            accountant.advanced_total()

    def test_advanced_total_empty(self):
        assert PrivacyAccountant().advanced_total() == (0.0, 0.0)

    def test_invalid_budgets(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(epsilon_budget=0.0)
        with pytest.raises(ValueError):
            PrivacyAccountant(delta_budget=1.0)
