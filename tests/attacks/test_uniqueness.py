"""Tests for the QI-uniqueness analysis."""

import pytest

from repro.attacks.uniqueness import (
    k_anonymity_level,
    singled_out_count,
    uniqueness_profile,
)
from repro.data.dataset import Dataset
from repro.data.domain import CategoricalDomain, IntegerDomain
from repro.data.schema import Attribute, AttributeKind, Schema


@pytest.fixture
def dataset() -> Dataset:
    schema = Schema(
        [
            Attribute("zip", CategoricalDomain(["a", "b"]), AttributeKind.QUASI_IDENTIFIER),
            Attribute("age", IntegerDomain(0, 99), AttributeKind.QUASI_IDENTIFIER),
        ]
    )
    return Dataset(schema, [("a", 30), ("a", 30), ("a", 40), ("b", 30)])


class TestUniquenessProfile:
    def test_escalation(self, dataset):
        profile = uniqueness_profile(dataset, [("zip",), ("zip", "age")])
        assert profile[("zip",)] == 0.25  # only ("b",) row is unique
        assert profile[("zip", "age")] == 0.5  # ("a",40) and ("b",30)

    def test_monotone_in_attributes(self, dataset):
        profile = uniqueness_profile(dataset, [("age",), ("zip", "age")])
        assert profile[("zip", "age")] >= profile[("age",)]

    def test_empty_qi_sets_rejected(self, dataset):
        with pytest.raises(ValueError):
            uniqueness_profile(dataset, [])


class TestKAnonymityLevel:
    def test_level(self, dataset):
        assert k_anonymity_level(dataset, ["zip"]) == 1
        schema = dataset.schema
        doubled = Dataset(schema, list(dataset.rows) * 2)
        assert k_anonymity_level(doubled, ["zip", "age"]) == 2

    def test_empty_rejected(self, dataset):
        empty = Dataset(dataset.schema, [])
        with pytest.raises(ValueError):
            k_anonymity_level(empty, ["zip"])


def test_singled_out_count(dataset):
    assert singled_out_count(dataset, ["zip", "age"]) == 2
    assert singled_out_count(dataset, ["zip"]) == 1
