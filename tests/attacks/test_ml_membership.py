"""Tests for the ML substrate and loss-threshold membership inference."""

import numpy as np
import pytest

from repro.attacks.ml_membership import (
    loss_threshold_attack,
    ml_membership_experiment,
)
from repro.ml.logistic import DpSgdConfig, LogisticRegressionModel, gaussian_task


class TestGaussianTask:
    def test_shapes(self):
        features, labels = gaussian_task(100, dimensions=10, rng=0)
        assert features.shape == (100, 10)
        assert labels.shape == (100,)
        assert set(np.unique(labels)) <= {0, 1}

    def test_separation_makes_task_learnable(self):
        features, labels = gaussian_task(600, dimensions=10, separation=4.0, rng=1)
        model = LogisticRegressionModel().fit(features[:400], labels[:400], rng=2)
        assert model.accuracy(features[400:], labels[400:]) > 0.9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            gaussian_task(1)
        with pytest.raises(ValueError):
            gaussian_task(10, dimensions=0)


class TestLogisticRegression:
    def test_requires_fit_before_predict(self):
        model = LogisticRegressionModel()
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 3)))

    def test_input_validation(self):
        model = LogisticRegressionModel()
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, 2)), np.array([0, 1, 2, 1]))
        with pytest.raises(ValueError):
            model.fit(np.zeros(4), np.array([0, 1, 0, 1]))
        with pytest.raises(ValueError):
            LogisticRegressionModel(l2=-1)
        with pytest.raises(ValueError):
            LogisticRegressionModel(epochs=0)

    def test_losses_lower_on_training_data_when_overfit(self):
        features, labels = gaussian_task(600, dimensions=60, rng=3)
        model = LogisticRegressionModel(l2=1e-4, epochs=300).fit(
            features[:50], labels[:50], rng=4
        )
        train_loss = model.per_example_loss(features[:50], labels[:50]).mean()
        test_loss = model.per_example_loss(features[50:], labels[50:]).mean()
        assert train_loss < test_loss

    def test_dp_training_reports_epsilon(self):
        features, labels = gaussian_task(80, dimensions=10, rng=5)
        dp = DpSgdConfig(noise_multiplier=20.0)
        model = LogisticRegressionModel(epochs=50).fit(features, labels, dp=dp, rng=6)
        assert model.epsilon_report() is not None
        assert model.epsilon_report() > 0
        plain = LogisticRegressionModel(epochs=5).fit(features, labels, rng=7)
        assert plain.epsilon_report() is None

    def test_dp_config_validation(self):
        with pytest.raises(ValueError):
            DpSgdConfig(clip_norm=0)
        with pytest.raises(ValueError):
            DpSgdConfig(noise_multiplier=0)
        with pytest.raises(ValueError):
            DpSgdConfig(delta=1.0)
        with pytest.raises(ValueError):
            DpSgdConfig().total_epsilon(0)

    def test_more_noise_more_privacy(self):
        quiet = DpSgdConfig(noise_multiplier=5.0).total_epsilon(100)
        loud = DpSgdConfig(noise_multiplier=50.0).total_epsilon(100)
        assert loud < quiet


class TestMembershipAttack:
    def test_overfit_model_leaks(self):
        result = ml_membership_experiment(train_size=50, dimensions=60, rng=0)
        assert result.auc > 0.65
        assert result.advantage > 0.15
        assert result.generalization_gap > 0.2

    def test_generalizing_model_leaks_little(self):
        result = ml_membership_experiment(train_size=1_000, dimensions=60, rng=1)
        assert result.auc < 0.6
        assert abs(result.advantage) < 0.12

    def test_dp_sgd_reduces_leakage(self):
        plain = ml_membership_experiment(train_size=50, rng=2)
        defended = ml_membership_experiment(
            train_size=50, dp=DpSgdConfig(noise_multiplier=80.0), rng=2
        )
        assert defended.auc < plain.auc
        assert defended.epsilon is not None

    def test_loss_threshold_attack_direct(self):
        features, labels = gaussian_task(600, dimensions=60, rng=3)
        model = LogisticRegressionModel(l2=1e-4, epochs=300).fit(
            features[:50], labels[:50], rng=4
        )
        auc, advantage = loss_threshold_attack(
            model, features[:50], labels[:50], features[50:], labels[50:]
        )
        assert 0.6 < auc <= 1.0
        assert advantage > 0.1

    def test_result_string(self):
        result = ml_membership_experiment(train_size=50, rng=5)
        assert "AUC" in str(result)
