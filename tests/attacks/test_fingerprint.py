"""Tests for Narayanan-Shmatikov fingerprinting."""

import pytest

from repro.attacks.fingerprint import (
    deanonymize,
    fingerprint_experiment,
    similarity_score,
)
from repro.data.ratings import (
    AuxiliaryRating,
    Rating,
    RatingsConfig,
    auxiliary_knowledge,
    generate_ratings,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_ratings(RatingsConfig(users=300, movies=400), rng=0)


class TestSimilarityScore:
    def test_perfect_match_scores_highest(self, corpus):
        popularity = corpus.movie_popularity()
        profile = corpus.profile(3)
        aux = [AuxiliaryRating(r.movie, r.stars, r.day) for r in profile[:4]]
        own = similarity_score(profile, aux, popularity)
        other = similarity_score(corpus.profile(4), aux, popularity)
        assert own > other

    def test_rare_movies_weigh_more(self):
        import numpy as np

        popularity = np.array([1000, 1])
        profile = [Rating(0, 5, 10), Rating(1, 5, 10)]
        hit_popular = similarity_score(profile, [AuxiliaryRating(0, 5, 10)], popularity)
        hit_rare = similarity_score(profile, [AuxiliaryRating(1, 5, 10)], popularity)
        assert hit_rare > hit_popular

    def test_missing_fields_still_score(self, corpus):
        popularity = corpus.movie_popularity()
        profile = corpus.profile(5)
        aux = [AuxiliaryRating(profile[0].movie, None, None)]
        assert similarity_score(profile, aux, popularity) > 0

    def test_unrated_movie_contributes_nothing(self, corpus):
        popularity = corpus.movie_popularity()
        profile = corpus.profile(5)
        missing_movie = next(
            m for m in range(corpus.movies) if m not in {r.movie for r in profile}
        )
        aux = [AuxiliaryRating(missing_movie, 5, 100)]
        assert similarity_score(profile, aux, popularity) == 0.0


class TestDeanonymize:
    def test_recovers_target_with_exact_knowledge(self, corpus):
        release, identity = corpus.anonymized(rng=1)
        true_pseudonym = {user: p for p, user in identity.items()}
        target = 7
        profile = corpus.profile(target)
        aux = [AuxiliaryRating(r.movie, r.stars, r.day) for r in profile[:4]]
        assert deanonymize(release, aux) == true_pseudonym[target]

    def test_abstains_on_uninformative_aux(self, corpus):
        release, _identity = corpus.anonymized(rng=2)
        # A single blockbuster rating is shared by many users.
        popularity = corpus.movie_popularity()
        blockbuster = int(popularity.argmax())
        aux = [AuxiliaryRating(blockbuster, None, None)]
        assert deanonymize(release, aux, eccentricity=1.5) is None

    def test_empty_aux_rejected(self, corpus):
        release, _ = corpus.anonymized(rng=3)
        with pytest.raises(ValueError):
            deanonymize(release, [])

    def test_negative_eccentricity_rejected(self, corpus):
        release, _ = corpus.anonymized(rng=4)
        with pytest.raises(ValueError):
            deanonymize(release, [AuxiliaryRating(0, 5, 0)], eccentricity=-1)


class TestExperiment:
    def test_high_recall_with_enough_knowledge(self, corpus):
        result = fingerprint_experiment(corpus, targets=30, known=6, rng=5)
        assert result.recall >= 0.8
        assert result.precision >= 0.9

    def test_recall_grows_with_knowledge(self, corpus):
        low = fingerprint_experiment(corpus, targets=30, known=2, rng=6)
        high = fingerprint_experiment(corpus, targets=30, known=8, rng=6)
        assert high.recall >= low.recall

    def test_counts_consistent(self, corpus):
        result = fingerprint_experiment(corpus, targets=20, known=4, rng=7)
        assert result.correct <= result.claimed <= result.targets

    def test_invalid_targets(self, corpus):
        with pytest.raises(ValueError):
            fingerprint_experiment(corpus, targets=0)

    def test_too_much_required_knowledge(self, corpus):
        with pytest.raises(ValueError):
            fingerprint_experiment(corpus, targets=10, known=10_000)


class TestCandidateIdentities:
    def test_target_in_small_candidate_set(self, corpus):
        from repro.attacks.fingerprint import candidate_identities

        release, identity = corpus.anonymized(rng=10)
        true_pseudonym = {user: p for p, user in identity.items()}
        target = 11
        profile = corpus.profile(target)
        # Weak auxiliary knowledge: only two ratings, dates omitted.
        aux = [AuxiliaryRating(r.movie, r.stars, None) for r in profile[:2]]
        candidates = candidate_identities(release, aux, top=5)
        assert len(candidates) == 5
        assert true_pseudonym[target] in {user for user, _score in candidates}
        scores = [score for _user, score in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_validation(self, corpus):
        from repro.attacks.fingerprint import candidate_identities

        release, _ = corpus.anonymized(rng=11)
        with pytest.raises(ValueError):
            candidate_identities(release, [])
        with pytest.raises(ValueError):
            candidate_identities(release, [AuxiliaryRating(0, 5, 0)], top=0)
