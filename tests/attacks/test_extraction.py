"""Tests for the n-gram LM substrate and the secret-sharer attack."""

import math

import pytest

from repro.attacks.extraction import (
    DIGITS,
    exposure,
    extract_secret,
    random_secret,
    secret_sharer_experiment,
)
from repro.lm.ngram import NgramLanguageModel, synthetic_corpus


class TestNgramModel:
    def test_fit_and_generate_memorized_text(self):
        model = NgramLanguageModel(order=4)
        model.fit(["hello world"] * 5)
        assert model.generate("hello ", 5) == "world"

    def test_log_likelihood_prefers_training_text(self):
        model = NgramLanguageModel(order=4)
        model.fit(["the cat sat on the mat"] * 3)
        assert model.log_likelihood("the cat") > model.log_likelihood("zqx jwv")

    def test_perplexity_lower_on_training_text(self):
        corpus = synthetic_corpus(100, rng=0)
        model = NgramLanguageModel(order=5)
        model.fit(corpus)
        assert model.perplexity(corpus[0]) < model.perplexity("zzz qqq xxx jjj")

    def test_out_of_alphabet_rejected(self):
        model = NgramLanguageModel(order=3)
        with pytest.raises(ValueError):
            model.fit(["HELLO"])  # uppercase not in default alphabet
        with pytest.raises(ValueError):
            model.log_likelihood("HELLO")

    def test_next_distribution_is_probability(self):
        model = NgramLanguageModel(order=3)
        model.fit(synthetic_corpus(20, rng=1))
        distribution = model.next_distribution("th")
        assert distribution.sum() == pytest.approx(1.0)
        assert (distribution >= 0).all()

    def test_restricted_generation(self):
        model = NgramLanguageModel(order=3)
        model.fit(synthetic_corpus(20, rng=2))
        out = model.generate("the ", 6, restrict_to=DIGITS)
        assert all(c in DIGITS for c in out)

    def test_sampling_mode_deterministic_under_seed(self):
        model = NgramLanguageModel(order=3)
        model.fit(synthetic_corpus(20, rng=3))
        a = model.generate("the ", 8, mode="sample", rng=7)
        b = model.generate("the ", 8, mode="sample", rng=7)
        assert a == b

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NgramLanguageModel(order=1)
        with pytest.raises(ValueError):
            NgramLanguageModel(smoothing=0.0)
        model = NgramLanguageModel()
        with pytest.raises(ValueError):
            model.generate("x", -1)
        with pytest.raises(ValueError):
            model.generate("x", 1, mode="beam")
        with pytest.raises(ValueError):
            model.perplexity("")

    def test_dp_training_reports_budget(self):
        model = NgramLanguageModel(order=3)
        model.fit(["abc abc"], dp_epsilon_per_count=0.1, rng=0)
        assert model.dp_epsilon_spent(7) == pytest.approx(0.7)
        plain = NgramLanguageModel(order=3).fit(["abc"])
        assert plain.dp_epsilon_spent(3) is None

    def test_dp_training_invalid_epsilon(self):
        model = NgramLanguageModel(order=3)
        with pytest.raises(ValueError):
            model.fit(["abc"], dp_epsilon_per_count=0.0)

    def test_synthetic_corpus_shape(self):
        corpus = synthetic_corpus(10, words_per_document=5, rng=4)
        assert len(corpus) == 10
        assert all(len(doc.split()) == 5 for doc in corpus)
        with pytest.raises(ValueError):
            synthetic_corpus(0)


class TestSecretSharer:
    def test_memorization_and_control(self):
        control = secret_sharer_experiment(0, rng=0)
        planted = secret_sharer_experiment(4, rng=0)
        assert not control.extracted
        assert control.exposure_bits <= 2.0
        assert planted.extracted
        assert planted.exposure_bits >= planted.max_exposure_bits - 0.5

    def test_dp_training_blocks_extraction(self):
        defended = secret_sharer_experiment(8, dp_epsilon_per_count=0.05, rng=1)
        assert not defended.extracted
        assert defended.exposure_bits <= 4.0

    def test_exposure_bounds(self):
        result = secret_sharer_experiment(2, rng=2)
        assert 0.0 <= result.exposure_bits <= result.max_exposure_bits + 1e-9
        assert result.max_exposure_bits == pytest.approx(4 * math.log2(10))

    def test_random_secret_format(self):
        secret = random_secret(6, rng=3)
        assert len(secret) == 6
        assert all(c in DIGITS for c in secret)
        with pytest.raises(ValueError):
            random_secret(0)

    def test_exposure_validation(self):
        model = NgramLanguageModel(order=3)
        model.fit(["abc 123"])
        with pytest.raises(ValueError):
            exposure(model, "abc ", "")
        with pytest.raises(ValueError):
            exposure(model, "abc ", "xyz")  # outside the digit alphabet
        with pytest.raises(ValueError):
            exposure(model, "abc ", "1234567890")  # candidate space too big

    def test_extract_secret_length(self):
        model = NgramLanguageModel(order=3)
        model.fit(["code 42"])
        assert len(extract_secret(model, "code ", 2)) == 2

    def test_invalid_insertions(self):
        with pytest.raises(ValueError):
            secret_sharer_experiment(-1)
