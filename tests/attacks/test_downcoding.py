"""Tests for Cohen-style downcoding."""

import pytest

from repro.anonymity.mondrian import MondrianAnonymizer
from repro.attacks.downcoding import downcode, downcoding_experiment
from repro.data.dataset import Dataset
from repro.data.distributions import (
    AttributeDistribution,
    ProductDistribution,
)
from repro.data.domain import CategoricalDomain, IntegerDomain
from repro.data.schema import Attribute, AttributeKind, Schema


@pytest.fixture(scope="module")
def skewed_setup():
    """A skewed two-attribute world where MAP guessing is informative."""
    schema = Schema(
        [
            Attribute("city", CategoricalDomain(["metro", "town", "village"]), AttributeKind.QUASI_IDENTIFIER),
            Attribute("age", IntegerDomain(0, 59), AttributeKind.QUASI_IDENTIFIER),
        ]
    )
    marginals = {
        "city": AttributeDistribution(
            schema.attribute("city").domain,
            {"metro": 0.7, "town": 0.2, "village": 0.1},
        ),
        "age": AttributeDistribution.uniform(schema.attribute("age").domain),
    }
    distribution = ProductDistribution(schema, marginals)
    data = distribution.sample(200, rng=0)
    release = MondrianAnonymizer(k=5).anonymize(data)
    return distribution, data, release


class TestDowncode:
    def test_map_guess_within_covers(self, skewed_setup):
        distribution, _data, release = skewed_setup
        guessed = downcode(release, distribution)
        for generalized, guess in zip(release, guessed.rows):
            assert generalized.matches(guess)

    def test_map_prefers_likely_value(self, skewed_setup):
        distribution, _data, release = skewed_setup
        guessed = downcode(release, distribution)
        for generalized, guess in zip(release, guessed.rows):
            covers = generalized["city"].covers
            if "metro" in covers:
                assert guess[0] == "metro"

    def test_schema_mismatch_rejected(self, skewed_setup):
        distribution, _data, release = skewed_setup
        from repro.data.distributions import uniform_bits_distribution

        with pytest.raises(ValueError):
            downcode(release, uniform_bits_distribution(4))


class TestExperiment:
    def test_beats_random_in_cover(self, skewed_setup):
        distribution, data, release = skewed_setup
        result = downcoding_experiment(data, release, distribution)
        # MAP beats guessing uniformly inside each generalized cover set.
        cover_sizes = [
            len(record[name].covers)
            for record in release
            for name in release.schema.names
            if not record[name].is_singleton
        ]
        random_in_cover = sum(1.0 / size for size in cover_sizes) / len(cover_sizes)
        assert result.generalized_cell_accuracy > random_in_cover
        assert 0 <= result.exact_fraction <= 1

    def test_raw_release_scores_perfectly(self, skewed_setup):
        distribution, data, _release = skewed_setup
        from repro.data.generalized import GeneralizedDataset, GeneralizedRecord

        raw_release = GeneralizedDataset(
            data.schema, [GeneralizedRecord.from_raw(record) for record in data]
        )
        result = downcoding_experiment(data, raw_release, distribution)
        assert result.exact_fraction == 1.0
        assert result.attribute_accuracy == 1.0
        assert result.generalized_cell_accuracy == 1.0  # vacuous, defined as 1

    def test_suppressed_release_rejected(self, skewed_setup):
        distribution, data, release = skewed_setup
        from repro.data.generalized import GeneralizedDataset

        pruned = GeneralizedDataset(
            release.schema, list(release)[:-1], suppressed_count=1
        )
        with pytest.raises(ValueError):
            downcoding_experiment(data, pruned, distribution)

    def test_length_mismatch_rejected(self, skewed_setup):
        distribution, data, release = skewed_setup
        shorter = Dataset(data.schema, data.rows[:-1], validate=False)
        with pytest.raises(ValueError):
            downcoding_experiment(shorter, release, distribution)

    def test_result_string(self, skewed_setup):
        distribution, data, release = skewed_setup
        result = downcoding_experiment(data, release, distribution)
        assert "rows exact" in str(result)
