"""Tests for Homer-style membership inference."""

import numpy as np
import pytest

from repro.attacks.membership import homer_statistic, membership_experiment
from repro.data.genomes import GenomePanel, GenomePanelConfig


@pytest.fixture(scope="module")
def panel():
    return GenomePanel.generate(GenomePanelConfig(snps=3_000), rng=0)


class TestHomerStatistic:
    def test_member_scores_positive(self, panel):
        cohort = panel.sample_genotypes(100, rng=1)
        published = panel.aggregate_frequencies(cohort)
        score = homer_statistic(cohort[0], published, panel.frequencies)
        assert score > 0

    def test_outsider_scores_near_zero(self, panel):
        cohort = panel.sample_genotypes(100, rng=2)
        published = panel.aggregate_frequencies(cohort)
        outsider = panel.sample_genotypes(1, rng=3)[0]
        member = homer_statistic(cohort[0], published, panel.frequencies)
        outsider_score = homer_statistic(outsider, published, panel.frequencies)
        assert member > outsider_score

    def test_shape_mismatch_rejected(self, panel):
        with pytest.raises(ValueError):
            homer_statistic(np.zeros(5), np.zeros(6), np.zeros(6))


class TestMembershipExperiment:
    def test_attack_succeeds_undefended(self, panel):
        result = membership_experiment(panel, cohort_size=150, rng=4)
        assert result.auc > 0.9
        assert result.advantage > 0.5

    def test_noise_degrades_attack(self, panel):
        clean = membership_experiment(panel, cohort_size=150, rng=5)
        noisy = membership_experiment(panel, cohort_size=150, noise_scale=0.1, rng=5)
        assert noisy.auc < clean.auc

    def test_larger_cohort_harder(self, panel):
        small = membership_experiment(panel, cohort_size=50, test_members=50, rng=6)
        large = membership_experiment(panel, cohort_size=800, test_members=50, rng=6)
        assert large.auc <= small.auc + 0.02

    def test_counts_recorded(self, panel):
        result = membership_experiment(
            panel, cohort_size=100, test_members=40, test_non_members=60, rng=7
        )
        assert result.members == 40
        assert result.non_members == 60

    def test_invalid_parameters(self, panel):
        with pytest.raises(ValueError):
            membership_experiment(panel, cohort_size=0)
        with pytest.raises(ValueError):
            membership_experiment(panel, cohort_size=10, test_members=20)
        with pytest.raises(ValueError):
            membership_experiment(panel, cohort_size=10, noise_scale=-1)

    def test_result_string(self, panel):
        result = membership_experiment(panel, cohort_size=100, rng=8)
        assert "AUC" in str(result)
