"""Tests for the k-anonymity composition (intersection) attack."""

import pytest

from repro.anonymity.datafly import DataflyAnonymizer
from repro.anonymity.mondrian import MondrianAnonymizer
from repro.attacks.intersection import (
    candidate_sensitive_values,
    intersection_attack,
)
from repro.data.dataset import Dataset
from repro.data.population import (
    QUASI_IDENTIFIERS,
    PopulationConfig,
    generate_population,
    gic_release,
)


@pytest.fixture(scope="module")
def world():
    population = gic_release(
        generate_population(PopulationConfig(size=800, zip_count=30), rng=0)
    )
    size = len(population)
    cohort_a = Dataset(population.schema, population.rows[: 3 * size // 4], validate=False)
    cohort_b = Dataset(population.schema, population.rows[size // 4 :], validate=False)
    overlap = Dataset(
        population.schema, population.rows[size // 4 : 3 * size // 4], validate=False
    )
    release_a = MondrianAnonymizer(k=4, quasi_identifiers=QUASI_IDENTIFIERS).anonymize(
        cohort_a
    )
    release_b = DataflyAnonymizer(k=4, quasi_identifiers=QUASI_IDENTIFIERS).anonymize(
        cohort_b
    )
    return overlap, release_a, release_b


class TestCandidateSets:
    def test_truth_is_always_a_candidate(self, world):
        overlap, release_a, _release_b = world
        for victim in list(overlap)[:40]:
            candidates = candidate_sensitive_values(
                release_a, victim, QUASI_IDENTIFIERS, "disease"
            )
            assert victim["disease"] in candidates

    def test_candidates_respect_k(self, world):
        overlap, release_a, _release_b = world
        # A victim present in the release matches a class of >= k rows; the
        # candidate set is nonempty (it may be smaller than k if diseases
        # repeat).
        victim = overlap[0]
        candidates = candidate_sensitive_values(
            release_a, victim, QUASI_IDENTIFIERS, "disease"
        )
        assert len(candidates) >= 1

    def test_unknown_sensitive_rejected(self, world):
        overlap, release_a, _release_b = world
        with pytest.raises(KeyError):
            candidate_sensitive_values(release_a, overlap[0], QUASI_IDENTIFIERS, "height")


class TestIntersectionAttack:
    def test_composition_beats_single_release(self, world):
        overlap, release_a, release_b = world
        result = intersection_attack(
            overlap, release_a, release_b, "disease", QUASI_IDENTIFIERS
        )
        assert result.combined_rate >= result.single_release_rate
        assert result.combined_rate > 0  # composition discloses someone

    def test_disclosures_are_accurate(self, world):
        overlap, release_a, release_b = world
        result = intersection_attack(
            overlap, release_a, release_b, "disease", QUASI_IDENTIFIERS
        )
        # The truth is in both candidate sets, so singleton intersections
        # containing it are correct; accuracy should be high.
        if result.disclosed_combined:
            assert result.accuracy >= 0.9

    def test_same_release_twice_gains_nothing(self, world):
        overlap, release_a, _release_b = world
        result = intersection_attack(
            overlap, release_a, release_a, "disease", QUASI_IDENTIFIERS
        )
        assert result.combined_rate == pytest.approx(
            result.disclosed_a / result.victims
        )

    def test_counts_bounded(self, world):
        overlap, release_a, release_b = world
        result = intersection_attack(
            overlap, release_a, release_b, "disease", QUASI_IDENTIFIERS
        )
        assert result.correct_combined <= result.disclosed_combined <= result.victims

    def test_missing_qis_rejected(self, world):
        overlap, release_a, release_b = world
        victims_no_annotation = overlap.project(["disease"])
        with pytest.raises(ValueError):
            intersection_attack(victims_no_annotation, release_a, release_b, "disease")

    def test_result_string(self, world):
        overlap, release_a, release_b = world
        result = intersection_attack(
            overlap, release_a, release_b, "disease", QUASI_IDENTIFIERS
        )
        assert "composition" in str(result)
