"""Tests for the Sweeney linkage attack."""

import pytest

from repro.attacks.linkage import linkage_attack
from repro.data.population import (
    QUASI_IDENTIFIERS,
    PopulationConfig,
    generate_population,
    gic_release,
    voter_registry,
)


@pytest.fixture(scope="module")
def population():
    return generate_population(PopulationConfig(size=800, zip_count=40), rng=0)


@pytest.fixture(scope="module")
def release(population):
    return gic_release(population)


class TestLinkageAttack:
    def test_full_coverage_high_recall(self, population, release):
        voters = voter_registry(population, coverage=1.0, rng=1)
        result = linkage_attack(release, voters, QUASI_IDENTIFIERS, truth=population)
        assert result.reidentified_rate > 0.9
        assert result.precision == 1.0  # unique exact matches are always right here

    def test_coverage_caps_recall(self, population, release):
        voters = voter_registry(population, coverage=0.4, rng=2)
        result = linkage_attack(release, voters, QUASI_IDENTIFIERS, truth=population)
        assert result.reidentified_rate <= 0.45

    def test_counts_partition_release(self, population, release):
        voters = voter_registry(population, coverage=0.7, rng=3)
        result = linkage_attack(release, voters, QUASI_IDENTIFIERS, truth=population)
        assert (
            result.attempted + result.ambiguous + result.unmatched
            == result.population
            == len(release)
        )

    def test_coarse_qis_are_ambiguous(self, population, release):
        voters = voter_registry(population, coverage=1.0, rng=4)
        result = linkage_attack(release, voters, ("sex",), truth=population)
        assert result.attempted == 0
        assert result.ambiguous == len(release)

    def test_release_with_identifier_rejected(self, population):
        voters = voter_registry(population, coverage=0.5, rng=5)
        with pytest.raises(ValueError):
            linkage_attack(population, voters, QUASI_IDENTIFIERS, truth=population)

    def test_missing_qi_rejected(self, population, release):
        voters = voter_registry(population, coverage=0.5, rng=6)
        with pytest.raises(KeyError):
            linkage_attack(release, voters, ("height",), truth=population)

    def test_misaligned_truth_rejected(self, population, release):
        voters = voter_registry(population, coverage=0.5, rng=7)
        truncated = population.head(10)
        with pytest.raises(ValueError):
            linkage_attack(release, voters, QUASI_IDENTIFIERS, truth=truncated)

    def test_result_string(self, population, release):
        voters = voter_registry(population, coverage=0.5, rng=8)
        result = linkage_attack(release, voters, QUASI_IDENTIFIERS, truth=population)
        assert "re-identified" in str(result)
