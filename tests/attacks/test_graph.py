"""Tests for social-graph generation and BDK de-anonymization."""

import networkx as nx
import pytest

from repro.attacks.graph import (
    active_attack,
    degree_signature_uniqueness,
    locate_sybils,
    plant_sybils,
)
from repro.data.socialgraph import (
    SocialGraphConfig,
    anonymize_graph,
    generate_social_graph,
)
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module")
def graph():
    return generate_social_graph(SocialGraphConfig(nodes=400), rng=0)


class TestSocialGraph:
    def test_size_and_connectivity(self, graph):
        assert graph.number_of_nodes() == 400
        assert nx.is_connected(graph)

    def test_heavy_tailed_degrees(self, graph):
        degrees = sorted((d for _n, d in graph.degree()), reverse=True)
        assert degrees[0] > 4 * degrees[len(degrees) // 2]  # hub vs median

    def test_deterministic(self):
        config = SocialGraphConfig(nodes=50, attachment=3)
        a = generate_social_graph(config, rng=1)
        b = generate_social_graph(config, rng=1)
        assert set(a.edges()) == set(b.edges())

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SocialGraphConfig(nodes=2)
        with pytest.raises(ValueError):
            SocialGraphConfig(nodes=10, attachment=10)

    def test_anonymization_is_isomorphic_relabeling(self, graph):
        released, identity = anonymize_graph(graph, rng=2)
        assert released.number_of_edges() == graph.number_of_edges()
        for u, v in list(graph.edges())[:100]:
            assert released.has_edge(identity[u], identity[v])

    def test_anonymization_actually_shuffles(self, graph):
        _released, identity = anonymize_graph(graph, rng=3)
        assert any(node != label for node, label in identity.items())


class TestPassiveAttack:
    def test_ba_graph_highly_unique(self, graph):
        assert degree_signature_uniqueness(graph) > 0.9

    def test_regular_graph_not_unique(self):
        ring = nx.cycle_graph(50)
        assert degree_signature_uniqueness(ring) == 0.0

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            degree_signature_uniqueness(nx.Graph())


class TestPlanting:
    def test_plan_structure(self, graph):
        planted = graph.copy()
        plan = plant_sybils(planted, [1, 2, 3], num_sybils=5, rng=4)
        assert len(plan.sybils) == 5
        # Path edges present.
        for i in range(4):
            assert planted.has_edge(plan.sybils[i], plan.sybils[i + 1])
        # Each target linked to its distinct pair.
        pairs = set(plan.target_pairs.values())
        assert len(pairs) == 3
        for target, (a, b) in plan.target_pairs.items():
            assert planted.has_edge(target, a) and planted.has_edge(target, b)

    def test_capacity_enforced(self, graph):
        planted = graph.copy()
        with pytest.raises(ValueError):
            plant_sybils(planted, list(range(10)), num_sybils=3, rng=5)

    def test_validation(self, graph):
        planted = graph.copy()
        with pytest.raises(ValueError):
            plant_sybils(planted, [1, 1], num_sybils=4, rng=6)
        with pytest.raises(ValueError):
            plant_sybils(planted, [10**9], num_sybils=4, rng=7)
        with pytest.raises(ValueError):
            plant_sybils(planted, [1], num_sybils=1, rng=8)


class TestActiveAttack:
    def test_enough_sybils_recover_targets(self, graph):
        targets = [5, 17, 60, 123]
        result = active_attack(graph, targets, num_sybils=10, rng=derive_rng(0, "a"))
        assert result.located
        assert result.recovery_rate >= 0.75

    def test_too_few_sybils_fail(self, graph):
        targets = [5, 17, 60]
        failures = 0
        for seed in range(5):
            result = active_attack(
                graph, targets, num_sybils=3, rng=derive_rng(seed, "b")
            )
            failures += int(not result.located)
        assert failures >= 4  # the small pattern is ambiguous

    def test_locate_finds_planted_embedding(self, graph):
        planted = graph.copy()
        plan = plant_sybils(planted, [2, 9], num_sybils=9, rng=9)
        released, identity = anonymize_graph(planted, rng=10)
        embeddings = locate_sybils(released, plan, planted)
        assert len(embeddings) == 1
        assert embeddings[0] == {s: identity[s] for s in plan.sybils}

    def test_result_string(self, graph):
        result = active_attack(graph, [5], num_sybils=8, rng=derive_rng(0, "c"))
        assert "targets re-identified" in str(result)
