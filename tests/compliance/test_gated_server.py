"""The gate on the live servers: refusals leave no footprint, approvals serve."""

import numpy as np
import pytest

from repro.compliance import (
    ComplianceDenied,
    ComplianceGate,
    CompliancePipeline,
    CompositionPolicyVerifier,
    DpClaimVerifier,
    Policy,
    ReconstructionResistanceVerifier,
)
from repro.privacy.accounting import BasicAccountant, ShardedAccountant
from repro.queries.mechanism import LaplaceAnswerer
from repro.queries.workload import Workload
from repro.service.server import QueryServer, SyntheticFallback
from repro.service.sharded import ShardedQueryServer
from repro.synth import synthesize_binary
from repro.utils.rng import derive_rng

_EPSILON = 0.5


@pytest.fixture()
def gate(secret, policy):
    return ComplianceGate(policy)


def _approve_spec(gate, secret, policy):
    spec = LaplaceAnswerer(secret, _EPSILON).spec
    pipeline = CompliancePipeline([DpClaimVerifier()], policy, seed=2)
    certificate = pipeline.certify(spec, data=secret, subject="mechanism-spec")
    gate.approve(certificate, spec)
    return spec


class TestGatedQueryServer:
    def test_uncertified_spec_denied_with_zero_footprint(self, secret, gate):
        accountant = BasicAccountant()
        server = QueryServer(
            secret,
            "laplace",
            {"epsilon_per_query": _EPSILON},
            accountant=accountant,
            compliance=gate,
        )
        with pytest.raises(ComplianceDenied) as excinfo:
            server.session("alice")
        denied = excinfo.value
        assert denied.reason == "no-certificate"
        assert denied.subject == "mechanism-spec"
        assert denied.analyst == "alice"
        # Zero footprint: no analyst state, no budget, no cache, no answer
        # records — only the denial in its own audit channel.
        assert server.analysts == ()
        assert accountant.global_spent() == 0.0
        assert len(server.audit_log) == 0
        assert len(server.audit_log.denials) == 1
        assert server.audit_log.denials[0].reason == "no-certificate"

    def test_approved_spec_serves_and_logs_certificate(
        self, secret, gate, policy
    ):
        _approve_spec(gate, secret, policy)
        server = QueryServer(
            secret,
            "laplace",
            {"epsilon_per_query": _EPSILON},
            compliance=gate,
        )
        session = server.session("alice")
        query = Workload.random(secret.size, 1, rng=derive_rng(0, "q")).query(0)
        session.ask(query)
        assert len(server.audit_log) == 1
        certificates = server.audit_log.certificates
        assert len(certificates) == 1
        assert certificates[0].analyst == "alice"
        assert certificates[0].subject == "mechanism-spec"
        # Re-entering the session does not re-run the gate or re-log.
        server.session("alice")
        assert len(server.audit_log.certificates) == 1

    def test_ungated_server_unchanged(self, secret):
        server = QueryServer(secret, "laplace", {"epsilon_per_query": _EPSILON})
        assert server.session("alice") is not None
        assert len(server.audit_log.denials) == 0

    def test_answers_identical_with_and_without_gate(self, secret, gate, policy):
        _approve_spec(gate, secret, policy)
        gated = QueryServer(
            secret, "laplace", {"epsilon_per_query": _EPSILON},
            seed=9, compliance=gate,
        )
        plain = QueryServer(
            secret, "laplace", {"epsilon_per_query": _EPSILON}, seed=9
        )
        workload = Workload.random(secret.size, 5, rng=derive_rng(0, "w"))
        np.testing.assert_array_equal(
            gated.session("alice").ask_workload(workload),
            plain.session("alice").ask_workload(workload),
        )


class TestGatedFallback:
    def _server(self, secret, gate, fallback):
        return QueryServer(
            secret,
            "laplace",
            {"epsilon_per_query": _EPSILON},
            accountant=BasicAccountant(per_analyst_epsilon=_EPSILON),
            seed=4,
            synthetic_fallback=fallback,
            compliance=gate,
        )

    def _exhaust(self, server, secret):
        session = server.session("alice")
        workload = Workload.random(secret.size, 2, rng=derive_rng(1, "probe"))
        session.ask(workload.query(0))  # spends the whole per-analyst budget
        return session, workload.query(1)

    def test_uncertified_fallback_denied_and_refunded(
        self, secret, gate, policy
    ):
        _approve_spec(gate, secret, policy)
        fallback = SyntheticFallback(epsilon=_EPSILON, rounds=3)
        server = self._server(secret, gate, fallback)
        session, overflow = self._exhaust(server, secret)
        spend_before = server.accountant.global_spent()
        with pytest.raises(ComplianceDenied) as excinfo:
            session.ask(overflow)
        assert excinfo.value.subject == "synthetic-fallback"
        assert server.accountant.global_spent() == spend_before  # rolled back
        assert server.fallback_release is None  # nothing activated
        assert any(
            record.subject == "synthetic-fallback"
            for record in server.audit_log.denials
        )

    def test_certified_fallback_activates_with_exact_bits(
        self, secret, gate, policy
    ):
        _approve_spec(gate, secret, policy)
        fallback = SyntheticFallback(epsilon=_EPSILON, rounds=3)
        server = self._server(secret, gate, fallback)
        # Synthesis is seed-deterministic: certify the exact bits the
        # server will produce, out of band.
        expected = synthesize_binary(
            secret,
            fallback.epsilon,
            fallback.rounds,
            density=fallback.density,
            rng=derive_rng(4, "service", fallback.account),
        )
        pipeline = CompliancePipeline(
            [DpClaimVerifier(), ReconstructionResistanceVerifier()],
            policy,
            seed=2,
        )
        gate.approve(
            pipeline.certify(expected, data=secret, subject="synthetic-fallback"),
            expected,
        )
        session, overflow = self._exhaust(server, secret)
        answer = session.ask(overflow)
        assert server.fallback_release is not None
        assert answer == float(expected.answer(overflow.mask))
        assert any(
            record.subject == "synthetic-fallback"
            for record in server.audit_log.certificates
        )


class TestGatedShardedServer:
    def test_one_approval_admits_every_shard(self, secret, gate, policy):
        _approve_spec(gate, secret, policy)
        server = ShardedQueryServer(
            secret,
            "laplace",
            {"epsilon_per_query": _EPSILON},
            accountant=ShardedAccountant(shards=4),
            compliance=gate,
            shards=4,
        )
        workload = Workload.random(secret.size, 2, rng=derive_rng(2, "w"))
        for analyst in ("alice", "bob", "carol"):
            assert server.session(analyst).ask_workload(workload).shape == (2,)

    def test_uncertified_denied_on_every_shard(self, secret, gate):
        server = ShardedQueryServer(
            secret,
            "laplace",
            {"epsilon_per_query": _EPSILON},
            accountant=ShardedAccountant(shards=4),
            compliance=gate,
            shards=4,
        )
        for analyst in ("alice", "bob"):
            with pytest.raises(ComplianceDenied):
                server.session(analyst)
        assert server.accountant.global_spent() == 0.0
