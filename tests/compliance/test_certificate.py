"""Tests for release fingerprints and the content-addressed certificate."""

import dataclasses

import numpy as np
import pytest

from repro.anonymity import MondrianAnonymizer
from repro.compliance import (
    CompliancePipeline,
    DpClaimVerifier,
    Policy,
    ReconstructionResistanceVerifier,
    release_fingerprint,
    spec_fingerprint,
)
from repro.data.dataset import Dataset
from repro.data.population import PopulationConfig, generate_population, gic_release
from repro.synth import BinaryRelease, synthesize_binary
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module")
def microdata():
    population = generate_population(PopulationConfig(size=60, zip_count=5), rng=0)
    return gic_release(population)


class TestReleaseFingerprint:
    def test_spec_fingerprint_separates_dp_flag(self, laplace_spec):
        forged = dataclasses.replace(laplace_spec, dp=False)
        assert spec_fingerprint(laplace_spec) != spec_fingerprint(forged)

    def test_spec_fingerprint_stable(self, laplace_spec):
        assert spec_fingerprint(laplace_spec) == spec_fingerprint(laplace_spec)

    def test_binary_release_binds_vector_and_spec(self, dp_release):
        mutated = np.array(dp_release.vector)
        mutated[0] = 1 - mutated[0]
        other = BinaryRelease(vector=mutated, spec=dp_release.spec)
        assert release_fingerprint(other) != release_fingerprint(dp_release)

    def test_ndarray_dtype_and_shape_separate(self):
        flat = np.zeros(4, dtype=np.int64)
        assert release_fingerprint(flat) != release_fingerprint(
            flat.astype(np.float64)
        )
        assert release_fingerprint(flat) != release_fingerprint(
            flat.reshape(2, 2)
        )

    def test_dataset_and_generalized_dataset_supported(self, microdata):
        raw = release_fingerprint(microdata)
        anonymized = MondrianAnonymizer(k=5).anonymize(microdata)
        assert raw != release_fingerprint(anonymized)
        assert release_fingerprint(microdata) == raw

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="cannot fingerprint"):
            release_fingerprint(object())

    def test_mechanism_spec_dispatch_matches_spec_fingerprint(self, laplace_spec):
        assert release_fingerprint(laplace_spec) == spec_fingerprint(laplace_spec)


class TestComplianceCertificate:
    @pytest.fixture(scope="class")
    def certificate(self, secret, policy, dp_release):
        pipeline = CompliancePipeline(
            [DpClaimVerifier(), ReconstructionResistanceVerifier()],
            policy,
            seed=3,
        )
        return pipeline.certify(dp_release, data=secret, subject="unit-release")

    def test_fingerprint_is_content_address(self, certificate):
        assert certificate.fingerprint == certificate.content_fingerprint()
        assert len(certificate.fingerprint) == 32  # blake2b-128 hex

    def test_validate_accepts_certified_bits(self, certificate, dp_release):
        assert certificate.approved
        assert certificate.validate(dp_release)
        assert certificate.failing == ()

    def test_validate_rejects_mutated_release(self, certificate, dp_release):
        mutated = np.array(dp_release.vector)
        mutated[3] = 1 - mutated[3]
        forged = BinaryRelease(vector=mutated, spec=dp_release.spec)
        assert not certificate.binds(forged)
        assert not certificate.validate(forged)

    def test_field_tamper_detected(self, certificate, dp_release):
        tampered = dataclasses.replace(
            certificate, subject="renamed", fingerprint=certificate.fingerprint
        )
        assert tampered.tampered()
        assert not tampered.validate(dp_release)
        # An honest re-mint under the new subject is internally consistent
        # again (and gets a different address).
        honest = dataclasses.replace(certificate, subject="renamed", fingerprint="")
        assert not honest.tampered()
        assert honest.fingerprint != certificate.fingerprint

    def test_render_names_status_and_checks(self, certificate):
        transcript = certificate.render()
        assert "APPROVED" in transcript
        assert "DP-CLAIM" in transcript
        assert certificate.fingerprint in transcript

    def test_denial_certificate_never_validates(self, secret, policy, exact_spec):
        pipeline = CompliancePipeline([DpClaimVerifier()], policy, seed=3)
        denial = pipeline.certify(exact_spec, data=secret, subject="exact")
        assert not denial.approved
        assert denial.failing == ("DP-CLAIM",)
        assert not denial.tampered()  # the denial itself is well-formed
        assert not denial.validate(exact_spec)  # but approves nothing
        assert "DENIED" in denial.render()
