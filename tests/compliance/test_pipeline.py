"""Pipeline tests: deterministic checks, falsifiable verdicts."""

import numpy as np
import pytest

from repro.compliance import (
    CompliancePipeline,
    CompositionPolicyVerifier,
    DpClaimVerifier,
    ReconstructionResistanceVerifier,
)
from repro.legal.claims import LegalVerdict
from repro.privacy.accounting import PrivacyAccountant
from repro.synth import BinaryRelease


def _pipeline(policy, seed=0):
    return CompliancePipeline(
        [
            ReconstructionResistanceVerifier(),
            DpClaimVerifier(),
            CompositionPolicyVerifier(),
        ],
        policy,
        seed=seed,
    )


class TestConstruction:
    def test_verifiers_sorted_by_identifier(self, policy):
        pipeline = _pipeline(policy)
        assert [v.identifier for v in pipeline.verifiers] == [
            "COMPOSE",
            "DP-CLAIM",
            "RECON",
        ]

    def test_duplicate_identifiers_rejected(self, policy):
        with pytest.raises(ValueError, match="duplicate"):
            CompliancePipeline(
                [DpClaimVerifier(), DpClaimVerifier()], policy
            )

    def test_empty_pipeline_rejected(self, policy):
        with pytest.raises(ValueError, match="at least one"):
            CompliancePipeline([], policy)


class TestApproval:
    @pytest.fixture(scope="class")
    def approval(self, secret, policy, dp_release):
        accountant = PrivacyAccountant()
        accountant.reserve(1, 1.0)
        return _pipeline(policy).certify(
            dp_release, data=secret, accountant=accountant, subject="good"
        )

    def test_every_check_passed(self, approval):
        assert approval.approved
        assert all(check.passed for check in approval.checks)
        assert len(approval.checks) == 3

    def test_verdict_is_derived_and_qualified(self, approval):
        verdict = approval.verdict
        assert isinstance(verdict, LegalVerdict)
        assert verdict.claim.identifier == "Release-Approval"
        assert "necessary condition only" in verdict.qualification
        # The Section 2.4 falsifiability discipline: every premise carries
        # evidence, and the stated modeling assumptions travel with it.
        assert all(premise.established for premise in verdict.premises)
        assert len(verdict.assumptions) == 2

    def test_checks_in_canonical_order(self, approval):
        assert [check.identifier for check in approval.checks] == [
            "COMPOSE",
            "DP-CLAIM",
            "RECON",
        ]


class TestDenial:
    @pytest.fixture(scope="class")
    def denial(self, secret, policy, dp_release):
        leak = BinaryRelease(
            vector=np.array(secret, dtype=np.int64), spec=dp_release.spec
        )
        # No accountant either: COMPOSE must fail alongside RECON.
        return _pipeline(policy).certify(leak, data=secret, subject="leak")

    def test_denied_with_named_failures(self, denial):
        assert not denial.approved
        assert denial.failing == ("COMPOSE", "RECON")

    def test_verdict_names_failing_checks(self, denial):
        verdict = denial.verdict
        assert verdict.claim.identifier == "Release-Denial"
        assert "COMPOSE, RECON" in verdict.claim.conclusion
        # Refutation premises: the measured violation is the established
        # fact, so the denial also clears the falsifiability gate.
        assert {premise.identifier for premise in verdict.premises} == {
            "COMPOSE",
            "RECON",
        }
        assert all(premise.established for premise in verdict.premises)
        assert all(
            "violated" in premise.statement for premise in verdict.premises
        )


class TestDeterminism:
    def test_same_seed_same_certificate(self, secret, policy, dp_release):
        first = _pipeline(policy, seed=5).certify(dp_release, data=secret)
        second = _pipeline(policy, seed=5).certify(dp_release, data=secret)
        assert first.fingerprint == second.fingerprint

    def test_different_seed_may_differ_but_stays_valid(
        self, secret, policy, dp_release
    ):
        accountant = PrivacyAccountant()
        accountant.reserve(1, 1.0)
        other = _pipeline(policy, seed=6).certify(
            dp_release, data=secret, accountant=accountant
        )
        assert other.validate(dp_release)
