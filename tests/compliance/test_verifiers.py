"""Each verifier re-derives its requirement; pass and fail paths both."""

import dataclasses

import numpy as np
import pytest

from repro.anonymity import MondrianAnonymizer
from repro.compliance import (
    CompositionPolicyVerifier,
    DeletionVerifier,
    DpClaimVerifier,
    KAnonymityClaimVerifier,
    Policy,
    ReconstructionResistanceVerifier,
    ReleaseContext,
    SafeHarborVerifier,
)
from repro.data.population import PopulationConfig, generate_population, gic_release
from repro.lm.ngram import synthetic_corpus
from repro.privacy.accounting import PrivacyAccountant
from repro.privacy.kernels import PrivacySpend
from repro.synth import BinaryRelease
from repro.utils.rng import derive_rng


def _rng():
    return derive_rng(11, "verifier-tests")


class TestDpClaimVerifier:
    def test_consistent_spec_passes(self, secret, laplace_spec, policy):
        result = DpClaimVerifier().check(
            ReleaseContext(release=laplace_spec, data=secret), policy, _rng()
        )
        assert result.passed
        assert result.measurements["epsilon"] == 0.5
        assert result.measurements["trials"] == policy.dp_trials

    def test_non_dp_spec_fails_citing_theorem(self, secret, exact_spec, policy):
        result = DpClaimVerifier().check(
            ReleaseContext(release=exact_spec, data=secret), policy, _rng()
        )
        assert not result.passed
        assert "Legal Theorem 2.1" in result.detail

    def test_speccless_release_fails(self, secret, policy):
        result = DpClaimVerifier().check(
            ReleaseContext(release=np.zeros(4), data=secret), policy, _rng()
        )
        assert not result.passed

    def test_forged_epsilon_caught_empirically(self, secret, laplace_spec, policy):
        # Same Laplace kernel, but the spec now *claims* a 100x smaller
        # epsilon than the noise it actually adds.
        forged = dataclasses.replace(
            laplace_spec, spend=PrivacySpend(laplace_spec.spend.epsilon / 100)
        )
        result = DpClaimVerifier().check(
            ReleaseContext(release=forged, data=secret),
            Policy(dp_trials=800),
            _rng(),
        )
        assert not result.passed
        assert "exceeds" in result.detail

    def test_missing_data_fails(self, laplace_spec, policy):
        result = DpClaimVerifier().check(
            ReleaseContext(release=laplace_spec), policy, _rng()
        )
        assert not result.passed


class TestCompositionPolicyVerifier:
    def test_within_cap_passes(self, laplace_spec):
        accountant = PrivacyAccountant()
        accountant.reserve(2, 0.5)
        result = CompositionPolicyVerifier().check(
            ReleaseContext(release=laplace_spec, accountant=accountant),
            Policy(epsilon_cap=2.0),
            _rng(),
        )
        assert result.passed
        assert result.measurements["epsilon_total"] == pytest.approx(1.0)

    def test_over_cap_fails(self, laplace_spec):
        accountant = PrivacyAccountant()
        accountant.reserve(10, 0.5)
        result = CompositionPolicyVerifier().check(
            ReleaseContext(release=laplace_spec, accountant=accountant),
            Policy(epsilon_cap=2.0),
            _rng(),
        )
        assert not result.passed
        assert "exceeds" in result.detail

    def test_missing_ledger_fails(self, laplace_spec, policy):
        result = CompositionPolicyVerifier().check(
            ReleaseContext(release=laplace_spec), policy, _rng()
        )
        assert not result.passed


class TestMicrodataVerifiers:
    @pytest.fixture(scope="class")
    def microdata(self):
        population = generate_population(
            PopulationConfig(size=80, zip_count=5), rng=0
        )
        return gic_release(population)

    def test_safe_harbor_passes_when_identifiers_absent(self, microdata):
        policy = Policy(safe_harbor_classification={"name": "names"})
        result = SafeHarborVerifier().check(
            ReleaseContext(release=microdata), policy, _rng()
        )
        assert result.passed

    def test_safe_harbor_fails_on_surviving_identifier(self, microdata):
        # The GIC release keeps full zips; classified as fine-grained
        # geography they must be coarsened, so the raw release fails.
        policy = Policy(
            safe_harbor_classification={
                "zip": "geographic-subdivisions-smaller-than-state"
            }
        )
        result = SafeHarborVerifier().check(
            ReleaseContext(release=microdata), policy, _rng()
        )
        assert not result.passed

    def test_safe_harbor_needs_microdata(self, policy):
        result = SafeHarborVerifier().check(
            ReleaseContext(release=np.zeros(4)), policy, _rng()
        )
        assert not result.passed

    def test_kanonymity_rederives_k(self, microdata):
        release = MondrianAnonymizer(k=5).anonymize(microdata)
        verifier = KAnonymityClaimVerifier()
        passing = verifier.check(
            ReleaseContext(release=release), Policy(k_min=5), _rng()
        )
        assert passing.passed
        assert passing.measurements["achieved_k"] >= 5
        failing = verifier.check(
            ReleaseContext(release=release),
            Policy(k_min=passing.measurements["achieved_k"] + 1),
            _rng(),
        )
        assert not failing.passed
        assert "smallest equivalence class" in failing.detail

    def test_kanonymity_needs_generalized_release(self, microdata, policy):
        result = KAnonymityClaimVerifier().check(
            ReleaseContext(release=microdata), policy, _rng()
        )
        assert not result.passed


class TestReconstructionResistanceVerifier:
    def test_noisy_release_passes(self, secret, dp_release, policy):
        result = ReconstructionResistanceVerifier().check(
            ReleaseContext(release=dp_release, data=secret), policy, _rng()
        )
        assert result.passed
        assert result.measurements["agreement"] < 0.95

    def test_exact_copy_is_blatant_non_privacy(self, secret, dp_release, policy):
        leak = BinaryRelease(
            vector=np.array(secret, dtype=np.int64), spec=dp_release.spec
        )
        result = ReconstructionResistanceVerifier().check(
            ReleaseContext(release=leak, data=secret), policy, _rng()
        )
        assert not result.passed
        assert result.measurements["agreement"] == 1.0

    def test_lp_solver_variant(self, secret, policy):
        leak = np.array(secret, dtype=np.float64)
        result = ReconstructionResistanceVerifier(solver="lp").check(
            ReleaseContext(release=leak, data=secret), policy, _rng()
        )
        assert not result.passed
        assert result.measurements["solver"] == "lp"

    def test_solver_validated(self):
        with pytest.raises(ValueError):
            ReconstructionResistanceVerifier(solver="sat")

    def test_size_mismatch_fails(self, secret, policy):
        result = ReconstructionResistanceVerifier().check(
            ReleaseContext(release=np.zeros(secret.size + 1), data=secret),
            policy,
            _rng(),
        )
        assert not result.passed


class TestDeletionVerifier:
    def test_exact_unlearning_passes(self, dp_release, policy):
        corpus = synthetic_corpus(12, rng=0)
        result = DeletionVerifier(delete_index=3, order=4).check(
            ReleaseContext(release=dp_release, data=corpus), policy, _rng()
        )
        assert result.passed
        assert result.measurements["corpus_documents"] == 12

    def test_invalid_index_fails_not_raises(self, dp_release, policy):
        corpus = synthetic_corpus(5, rng=0)
        result = DeletionVerifier(delete_index=99).check(
            ReleaseContext(release=dp_release, data=corpus), policy, _rng()
        )
        assert not result.passed

    def test_non_corpus_data_fails(self, secret, dp_release, policy):
        result = DeletionVerifier().check(
            ReleaseContext(release=dp_release, data=secret), policy, _rng()
        )
        assert not result.passed
