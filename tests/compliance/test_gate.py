"""Gate tests: O(1) approvals, typed refusals for every failure mode."""

import dataclasses

import numpy as np
import pytest

from repro.compliance import (
    ComplianceDenied,
    ComplianceGate,
    CompliancePipeline,
    DpClaimVerifier,
    Policy,
)
from repro.synth import BinaryRelease


@pytest.fixture()
def approval(secret, policy, laplace_spec):
    pipeline = CompliancePipeline([DpClaimVerifier()], policy, seed=1)
    return pipeline.certify(laplace_spec, data=secret, subject="mechanism-spec")


@pytest.fixture()
def denial(secret, policy, exact_spec):
    pipeline = CompliancePipeline([DpClaimVerifier()], policy, seed=1)
    return pipeline.certify(exact_spec, data=secret, subject="mechanism-spec")


class TestApproveAndRequire:
    def test_roundtrip(self, approval, laplace_spec):
        gate = ComplianceGate()
        fingerprint = gate.approve(approval, laplace_spec)
        assert fingerprint == approval.release_fingerprint
        assert gate.is_approved(laplace_spec)
        assert gate.require(laplace_spec) is approval
        assert gate.certificate_for(laplace_spec) is approval
        assert gate.approved_count == 1

    def test_unapproved_release_refused(self, laplace_spec):
        gate = ComplianceGate()
        with pytest.raises(ComplianceDenied) as excinfo:
            gate.require(laplace_spec, subject="mechanism-spec", analyst="eve")
        assert excinfo.value.reason == "no-certificate"
        assert excinfo.value.subject == "mechanism-spec"
        assert excinfo.value.analyst == "eve"

    def test_none_release_refused(self):
        gate = ComplianceGate()
        with pytest.raises(ComplianceDenied) as excinfo:
            gate.require(None, subject="mechanism-spec")
        assert excinfo.value.reason == "unspecified-release"

    def test_revoke_withdraws_approval(self, approval, laplace_spec):
        gate = ComplianceGate()
        gate.approve(approval, laplace_spec)
        assert gate.revoke(laplace_spec)
        assert not gate.revoke(laplace_spec)  # already gone
        with pytest.raises(ComplianceDenied):
            gate.require(laplace_spec)

    def test_unfingerprintable_queries_are_just_false(self):
        gate = ComplianceGate()
        assert not gate.is_approved(object())
        assert gate.certificate_for(object()) is None


class TestApproveRefusals:
    def test_denial_certificate_refused(self, denial, exact_spec):
        gate = ComplianceGate()
        with pytest.raises(ComplianceDenied) as excinfo:
            gate.approve(denial, exact_spec)
        assert excinfo.value.reason == "denied-certificate"
        assert excinfo.value.failing == ("DP-CLAIM",)
        assert gate.approved_count == 0

    def test_policy_mismatch_refused(self, approval, laplace_spec):
        gate = ComplianceGate(Policy(name="stricter", epsilon_cap=0.1))
        with pytest.raises(ComplianceDenied) as excinfo:
            gate.approve(approval, laplace_spec)
        assert excinfo.value.reason == "policy-mismatch"

    def test_matching_policy_accepted(self, approval, laplace_spec, policy):
        gate = ComplianceGate(policy)
        assert gate.approve(approval, laplace_spec)

    def test_tampered_certificate_refused(self, approval, laplace_spec):
        tampered = dataclasses.replace(
            approval, approved=True, seed=approval.seed + 1,
            fingerprint=approval.fingerprint,
        )
        gate = ComplianceGate()
        with pytest.raises(ComplianceDenied) as excinfo:
            gate.approve(tampered, laplace_spec)
        assert excinfo.value.reason == "fingerprint-mismatch"

    def test_wrong_release_bits_refused(self, secret, policy, dp_release):
        pipeline = CompliancePipeline([DpClaimVerifier()], policy, seed=1)
        certificate = pipeline.certify(dp_release, data=secret)
        mutated = np.array(dp_release.vector)
        mutated[0] = 1 - mutated[0]
        forged = BinaryRelease(vector=mutated, spec=dp_release.spec)
        gate = ComplianceGate()
        with pytest.raises(ComplianceDenied) as excinfo:
            gate.approve(certificate, forged)
        assert excinfo.value.reason == "fingerprint-mismatch"

    def test_repr_names_policy(self, policy):
        assert "test-policy" in repr(ComplianceGate(policy))
