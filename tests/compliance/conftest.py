"""Shared fixtures for the release-approval subsystem tests."""

import numpy as np
import pytest

from repro.compliance import Policy
from repro.queries.mechanism import ExactAnswerer, LaplaceAnswerer
from repro.synth import synthesize_binary
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module")
def secret():
    return derive_rng(7, "compliance-tests").integers(0, 2, size=48)


@pytest.fixture(scope="module")
def laplace_spec(secret):
    return LaplaceAnswerer(secret, 0.5).spec


@pytest.fixture(scope="module")
def exact_spec(secret):
    return ExactAnswerer(secret).spec


@pytest.fixture(scope="module")
def policy():
    # Few DP trials: the verifier tests exercise wiring, not power.
    return Policy(name="test-policy", dp_trials=200)


@pytest.fixture(scope="module")
def dp_release(secret):
    return synthesize_binary(
        secret, 1.0, 5, rng=derive_rng(7, "compliance-tests", "release")
    )
