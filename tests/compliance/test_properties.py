"""Property tests: determinism, order invariance, tamper evidence."""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compliance import (
    ComplianceCertificate,
    CompliancePipeline,
    CompositionPolicyVerifier,
    DpClaimVerifier,
    Policy,
    ReconstructionResistanceVerifier,
    release_fingerprint,
)
from repro.privacy.accounting import PrivacyAccountant
from repro.queries.mechanism import LaplaceAnswerer
from repro.synth import BinaryRelease, synthesize_binary
from repro.utils.rng import derive_rng

#: Small instances: the properties are about wiring, not statistical power.
_POLICY = Policy(name="prop-policy", dp_trials=60)
_N = 16


def _release(data_seed: int) -> BinaryRelease:
    secret = derive_rng(data_seed, "prop-secret").integers(0, 2, size=_N)
    return synthesize_binary(
        secret, 1.0, 3, rng=derive_rng(data_seed, "prop-release")
    )


def _verifiers():
    return [
        DpClaimVerifier(),
        CompositionPolicyVerifier(),
        ReconstructionResistanceVerifier(),
    ]


def _certify(seed: int, data_seed: int, verifiers=None) -> ComplianceCertificate:
    secret = derive_rng(data_seed, "prop-secret").integers(0, 2, size=_N)
    accountant = PrivacyAccountant()
    accountant.reserve(1, 1.0)
    pipeline = CompliancePipeline(
        verifiers if verifiers is not None else _verifiers(), _POLICY, seed=seed
    )
    return pipeline.certify(_release(data_seed), data=secret, accountant=accountant)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), data_seed=st.integers(0, 2**31 - 1))
def test_fixed_seed_certificate_is_bit_deterministic(seed, data_seed):
    first = _certify(seed, data_seed)
    second = _certify(seed, data_seed)
    assert first.fingerprint == second.fingerprint
    assert first.checks == second.checks


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    order=st.permutations([0, 1, 2]),
)
def test_verifier_registration_order_is_irrelevant(seed, order):
    verifiers = _verifiers()
    shuffled = [verifiers[index] for index in order]
    assert (
        _certify(seed, 0, verifiers).fingerprint
        == _certify(seed, 0, shuffled).fingerprint
    )


@settings(max_examples=16, deadline=None)
@given(position=st.integers(0, _N - 1))
def test_single_bit_release_tamper_fails_validation(position):
    certificate = _certify(0, 0)
    release = _release(0)
    assert certificate.validate(release)
    mutated = np.array(release.vector)
    mutated[position] = 1 - mutated[position]
    forged = BinaryRelease(vector=mutated, spec=release.spec)
    assert release_fingerprint(forged) != certificate.release_fingerprint
    assert not certificate.validate(forged)


@settings(max_examples=10, deadline=None)
@given(
    field=st.sampled_from(["subject", "approved", "seed", "release_fingerprint"]),
)
def test_any_field_tamper_is_self_evident(field):
    certificate = _certify(0, 0)
    tampered_value = {
        "subject": certificate.subject + "x",
        "approved": not certificate.approved,
        "seed": certificate.seed + 1,
        "release_fingerprint": certificate.release_fingerprint[::-1],
    }[field]
    tampered = dataclasses.replace(
        certificate, **{field: tampered_value}, fingerprint=certificate.fingerprint
    )
    assert tampered.tampered()
    assert not tampered.validate(_release(0))


@settings(max_examples=8, deadline=None)
@given(epsilon=st.floats(0.1, 4.0, allow_nan=False))
def test_spec_fingerprint_separates_epsilons(epsilon):
    secret = np.zeros(_N, dtype=np.int64)
    base = LaplaceAnswerer(secret, 0.05).spec
    other = LaplaceAnswerer(secret, epsilon).spec
    assert release_fingerprint(base) != release_fingerprint(other)
